#include "core/mp_trainer.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "core/shared_blocks.h"
#include "core/sigmoid_cv.h"
#include "device/fork_join.h"
#include "fault/fault_injector.h"
#include "prob/pairwise_coupling.h"

namespace gmpsvm {
namespace {

// Emits a named device-origin phase span for [start, end) on `stream` if the
// executor has a span recorder attached. Phase spans envelop the leaf task
// spans the executor records itself; they are excluded from busy-time math.
void RecordPhaseSpan(SimExecutor* executor, StreamId stream, std::string name,
                     double start, double end) {
  obs::SpanRecorder* recorder = executor->span_recorder();
  if (recorder == nullptr || end <= start) return;
  obs::SpanEvent span;
  span.name = std::move(name);
  span.origin = obs::SpanEvent::Origin::kDevice;
  span.lane = executor->lane_base() + stream;
  span.start_seconds = start;
  span.end_seconds = end;
  span.is_phase = true;
  recorder->RecordSpan(span);
}

// Accumulates trained binary SVMs into a model with (optionally deduplicated)
// support-vector pool.
class ModelBuilder {
 public:
  ModelBuilder(const Dataset* dataset, const MpTrainOptions& options)
      : dataset_(dataset), options_(options) {
    model_.num_classes = dataset->num_classes();
    model_.c = options.c;
    model_.kernel = options.kernel;
  }

  // Support-vector pool indices depend on insertion order, so callers must
  // feed pairs in ClassPairs() order — this is what keeps resumed runs
  // byte-identical to uninterrupted ones.
  void AddEntry(const PairCheckpoint& pair) {
    BinarySvmEntry entry;
    entry.class_s = pair.class_s;
    entry.class_t = pair.class_t;
    entry.bias = pair.bias;
    entry.sigmoid = pair.sigmoid;
    for (size_t m = 0; m < pair.sv_rows.size(); ++m) {
      entry.sv_pool_index.push_back(PoolIndex(pair.sv_rows[m]));
      entry.sv_coef.push_back(pair.sv_coef[m]);
    }
    model_.svms.push_back(std::move(entry));
  }

  MpSvmModel Finish() {
    model_.support_vectors = dataset_->features().SelectRows(pool_rows_);
    model_.pool_source_rows = std::move(pool_rows_);
    // Cascade statistics (docs/cascade.md): a pure function of the dataset's
    // class priors and each pair's Platt slope, so sequential, pair-parallel,
    // cluster, and resumed runs all stamp identical stats. |sigmoid.a| is the
    // calibrated sharpness of the pair's decision boundary (degraded pairs
    // have a zero slope and sort last); weighting by the priors puts pairs
    // that can eliminate the most probability mass first.
    const double total = static_cast<double>(dataset_->size());
    model_.cascade.clear();
    model_.cascade.reserve(model_.svms.size());
    for (const BinarySvmEntry& svm : model_.svms) {
      PairCascadeStats stats;
      if (total > 0.0) {
        stats.prior_s =
            static_cast<double>(dataset_->ClassRows(svm.class_s).size()) / total;
        stats.prior_t =
            static_cast<double>(dataset_->ClassRows(svm.class_t).size()) / total;
      }
      stats.score = std::abs(svm.sigmoid.a) * (stats.prior_s + stats.prior_t);
      model_.cascade.push_back(stats);
    }
    return std::move(model_);
  }

 private:
  int32_t PoolIndex(int32_t global_row) {
    if (options_.share_support_vectors) {
      auto [it, inserted] =
          pool_map_.try_emplace(global_row, static_cast<int32_t>(pool_rows_.size()));
      if (inserted) pool_rows_.push_back(global_row);
      return it->second;
    }
    pool_rows_.push_back(global_row);
    return static_cast<int32_t>(pool_rows_.size() - 1);
  }

  const Dataset* dataset_;
  const MpTrainOptions& options_;
  MpSvmModel model_;
  std::vector<int32_t> pool_rows_;
  std::unordered_map<int32_t, int32_t> pool_map_;
};

// Decision values on the training instances come for free from the final
// optimality indicators: v_i = f_i + y_i + b (Equation 3 vs Equation 11).
std::vector<double> TrainingDecisionValues(const BinaryProblem& problem,
                                           const BinarySolution& solution) {
  std::vector<double> v(solution.f.size());
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = solution.f[i] + static_cast<double>(problem.y[i]) + solution.bias;
  }
  return v;
}

// Distills a solved pair into its checkpoint-shaped result: the positive
// alphas as (global row, alpha * y) plus bias and sigmoid. Model entries are
// rebuilt from this whether the pair was just trained or loaded from disk, so
// the two paths cannot diverge.
PairCheckpoint DistillPair(int s, int t, const BinaryProblem& problem,
                           const BinarySolution& solution,
                           const SigmoidParams& sigmoid) {
  PairCheckpoint pair;
  pair.class_s = s;
  pair.class_t = t;
  pair.bias = solution.bias;
  pair.sigmoid = sigmoid;
  for (int64_t i = 0; i < problem.n(); ++i) {
    const double a = solution.alpha[static_cast<size_t>(i)];
    if (a <= 0.0) continue;
    pair.sv_rows.push_back(problem.rows[static_cast<size_t>(i)]);
    pair.sv_coef.push_back(a * static_cast<double>(problem.y[static_cast<size_t>(i)]));
  }
  return pair;
}

// The neutral entry a pair degrades to: no SVs, decision value 0, sigmoid
// {0, 0} so the pairwise probability is exactly 0.5.
PairCheckpoint DegradedPair(int s, int t) {
  PairCheckpoint pair;
  pair.class_s = s;
  pair.class_t = t;
  pair.degraded = true;
  return pair;
}

uint64_t Fnv1a64(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Fnv1a64Bytes(const void* data, size_t bytes, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Fingerprint of (dataset shape + content + the options that affect the
// numeric result). Content means the actual labels and CSR feature arrays —
// two same-shaped datasets must not collide, or a resume would silently mix
// pairs trained on different data.
uint64_t TrainFingerprint(const Dataset& dataset, const MpTrainOptions& options) {
  std::ostringstream key;
  key.precision(17);
  key << dataset.size() << " " << dataset.dim() << " " << dataset.num_classes();
  for (int k = 0; k < dataset.num_classes(); ++k) {
    key << " " << dataset.ClassRows(k).size();
  }
  uint64_t content = 1469598103934665603ull;
  const auto& labels = dataset.labels();
  content = Fnv1a64Bytes(labels.data(), labels.size() * sizeof(labels[0]),
                         content);
  const CsrMatrix& features = dataset.features();
  content = Fnv1a64Bytes(features.col_idx().data(),
                         features.col_idx().size() * sizeof(int32_t), content);
  content = Fnv1a64Bytes(features.values().data(),
                         features.values().size() * sizeof(double), content);
  key << " content=" << content;
  key << " c=" << options.c
      << " kernel=" << KernelTypeToString(options.kernel.type)
      << " gamma=" << options.kernel.gamma
      << " coef0=" << options.kernel.coef0
      << " degree=" << options.kernel.degree
      << " eps=" << options.batch.eps
      << " ws=" << options.batch.working_set.ws_size
      << " cv=" << options.sigmoid_cv_folds
      << " shared_sv=" << (options.share_support_vectors ? 1 : 0);
  for (double w : options.class_weights) key << " w=" << w;
  return Fnv1a64(key.str());
}

// Manages the checkpoint directory for one training run: loads completed
// pairs on resume, persists each newly completed pair, and flushes the
// manifest per the every_n_pairs cadence.
class CheckpointSession {
 public:
  Status Init(const TrainCheckpointOptions& options, uint64_t fingerprint,
              int num_classes, MpTrainReport* report) {
    options_ = options;
    if (!enabled()) return Status::OK();
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " + options_.dir +
                             ": " + ec.message());
    }
    manifest_.fingerprint = fingerprint;
    manifest_.num_classes = num_classes;
    const std::string manifest_path = ManifestPath();
    if (options_.resume && std::filesystem::exists(manifest_path)) {
      GMP_ASSIGN_OR_RETURN(CheckpointManifest on_disk,
                           LoadCheckpointManifest(manifest_path));
      if (on_disk.fingerprint != fingerprint) {
        return Status::InvalidArgument(StrPrintf(
            "checkpoint manifest fingerprint %llu does not match this "
            "dataset/configuration (%llu); refusing to resume",
            static_cast<unsigned long long>(on_disk.fingerprint),
            static_cast<unsigned long long>(fingerprint)));
      }
      if (on_disk.num_classes != num_classes) {
        return Status::InvalidArgument(
            StrPrintf("checkpoint manifest has %d classes, dataset has %d",
                      on_disk.num_classes, num_classes));
      }
      for (const auto& [s, t] : on_disk.completed) {
        GMP_ASSIGN_OR_RETURN(
            PairCheckpoint pair,
            LoadPairCheckpoint(options_.dir + "/" + PairCheckpointFileName(s, t)));
        if (pair.class_s != s || pair.class_t != t) {
          return Status::InvalidArgument(
              StrPrintf("pair checkpoint %d-%d names pair %d-%d", s, t,
                        pair.class_s, pair.class_t));
        }
        // Degraded pairs are retrained on resume rather than carried over.
        if (pair.degraded) continue;
        manifest_.completed.emplace_back(s, t);
        loaded_.emplace(std::make_pair(s, t), std::move(pair));
        if (report != nullptr) ++report->pairs_resumed;
      }
    }
    return Status::OK();
  }

  bool enabled() const { return !options_.dir.empty(); }

  const PairCheckpoint* Loaded(int s, int t) const {
    auto it = loaded_.find(std::make_pair(s, t));
    return it == loaded_.end() ? nullptr : &it->second;
  }

  Status OnPairComplete(const PairCheckpoint& pair) {
    if (!enabled()) return Status::OK();
    GMP_RETURN_NOT_OK(SavePairCheckpoint(
        pair, options_.dir + "/" +
                  PairCheckpointFileName(pair.class_s, pair.class_t)));
    manifest_.completed.emplace_back(pair.class_s, pair.class_t);
    if (++unflushed_ >= std::max(1, options_.every_n_pairs)) {
      return Flush();
    }
    return Status::OK();
  }

  Status Flush() {
    if (!enabled()) return Status::OK();
    unflushed_ = 0;
    return SaveCheckpointManifest(manifest_, ManifestPath());
  }

 private:
  std::string ManifestPath() const {
    return options_.dir + "/" + kCheckpointManifestFileName;
  }

  TrainCheckpointOptions options_;
  CheckpointManifest manifest_;
  std::map<std::pair<int, int>, PairCheckpoint> loaded_;
  int unflushed_ = 0;
};

// Runs `attempt` for pair (s, t) under the options' retry policy. Transient
// (kUnavailable) failures are retried with exponential backoff charged as
// simulated time to `stream`; exhaustion either propagates (kFailFast) or
// yields a degraded neutral pair (kSkipDegraded). Any other error propagates
// immediately.
Result<PairCheckpoint> RunPairWithRetry(
    const MpTrainOptions& options, SimExecutor* executor, StreamId stream,
    int s, int t, const std::function<Result<PairCheckpoint>()>& attempt,
    MpTrainReport* report) {
  const fault::RetryPolicy& policy = options.pair_retry;
  for (int att = 1;; ++att) {
    Result<PairCheckpoint> result = attempt();
    if (result.ok()) return result;
    if (!fault::IsTransientFault(result.status())) return result.status();
    if (att >= policy.max_attempts) {
      if (options.pair_failure_policy == PairFailurePolicy::kFailFast) {
        return Status::Unavailable(StrPrintf(
            "pair %dv%d failed after %d attempts: %s", s, t, att,
            result.status().message().c_str()));
      }
      if (report != nullptr) ++report->pairs_degraded;
      GMP_LOG(Warning) << "pair " << s << "v" << t << " degraded after " << att
                       << " attempts: " << result.status().message();
      return DegradedPair(s, t);
    }
    if (report != nullptr) ++report->pair_retries;
    const uint64_t seed =
        (static_cast<uint64_t>(s) << 32) | static_cast<uint64_t>(t);
    executor->AdvanceStream(stream, fault::BackoffSeconds(policy, att, seed),
                            "retry_backoff");
  }
}

// Consults the fault plan's simulated-kill knob after `completed_this_run`
// newly trained pairs; on interrupt, flushes the checkpoint manifest so a
// resume can pick up from here.
Status MaybeInterrupt(SimExecutor* executor, CheckpointSession* ckpt,
                      int64_t completed_this_run) {
  fault::FaultInjector* injector = executor->fault_injector();
  if (injector == nullptr ||
      !injector->ShouldInterruptTraining(completed_this_run)) {
    return Status::OK();
  }
  GMP_RETURN_NOT_OK(ckpt->Flush());
  return Status::Unavailable(
      StrPrintf("training interrupted by fault plan after %lld pairs",
                static_cast<long long>(completed_this_run)));
}

// Worker-thread count for pair-level training: the trainer option wins,
// otherwise the executor model's host_threads applies.
int ResolvePairThreads(const MpTrainOptions& options, const SimExecutor* executor) {
  return options.host_threads > 0 ? options.host_threads
                                  : executor->model().host_threads;
}

// Pool to run pair workers on: the executor's own host pool when its size
// already matches, otherwise a trainer-owned pool parked in `owned`.
ThreadPool* ResolvePairPool(SimExecutor* executor, int threads,
                            std::unique_ptr<ThreadPool>* owned) {
  ThreadPool* pool = executor->host_pool();
  if (pool != nullptr && pool->num_threads() == threads) return pool;
  *owned = std::make_unique<ThreadPool>(threads);
  return owned->get();
}

// One pair's workload and results when pairs train on worker threads. The
// satellite executor records every charge into `log`; replaying the logs in
// pair order afterwards reproduces the serial run's timeline, counters and
// span stream exactly.
struct PairTask {
  size_t pair_index = 0;
  int s = 0;
  int t = 0;
  StreamId stream = kDefaultStream;
  BinaryProblem problem;
  ExecEventLog log;
  std::optional<SimExecutor> satellite;
  double base = 0.0;
  std::optional<Result<PairCheckpoint>> outcome;
  SolverStats stats;
  double sigmoid_seconds = 0.0;
  bool sigmoid_done = false;
};

void FillReport(SimExecutor* executor, double sim_base,
                const ExecutorCounters& counters_base, const Stopwatch& wall,
                MpTrainReport* report) {
  if (report == nullptr) return;
  report->sim_seconds = executor->NowSeconds() - sim_base;
  report->wall_seconds = wall.ElapsedSeconds();
  report->kernel_values_computed =
      executor->counters().kernel_values_computed - counters_base.kernel_values_computed;
  report->kernel_values_reused =
      executor->counters().kernel_values_reused - counters_base.kernel_values_reused;
  report->peak_device_bytes = executor->counters().peak_bytes_in_use;
}

// The GMP path for one pair against an arbitrary executor/stream: batched
// solver (through the shared block cache when one is given), then concurrent
// sigmoid fitting on the pair's own stream (Section 3.3.2). Shared by
// GmpSvmTrainer::Train and TrainGmpPairSubset so the single-device and
// cluster paths run identical numeric code.
Result<PairCheckpoint> SolveGmpPairImpl(
    const MpTrainOptions& options, BatchSmoSolver& solver,
    KernelComputer& computer, SharedBlockCache* cache, SimExecutor* exec,
    StreamId stream, int s, int t, const BinaryProblem& problem,
    SolverStats* stats, double* sigmoid_seconds, bool* sigmoid_done,
    std::span<const double> initial_alpha = {}) {
  BinarySolution solution;
  const double smo_t0 = exec->StreamTime(stream);
  if (cache != nullptr) {
    SharedRowSource source(&problem, s, t, cache, &computer);
    GMP_ASSIGN_OR_RETURN(
        solution,
        initial_alpha.empty()
            ? solver.Solve(problem, computer, &source, exec, stream, stats)
            : solver.SolveWarm(problem, computer, &source, initial_alpha, exec,
                               stream, stats));
  } else {
    GMP_ASSIGN_OR_RETURN(
        solution,
        initial_alpha.empty()
            ? solver.Solve(problem, computer, exec, stream, stats)
            : solver.SolveWarm(problem, computer, initial_alpha, exec, stream,
                               stats));
  }
  RecordPhaseSpan(exec, stream, StrPrintf("smo %dv%d", s, t), smo_t0,
                  exec->StreamTime(stream));

  // Concurrent sigmoid fitting on the pair's own stream, with parallel
  // candidate evaluation (Section 3.3.2).
  std::vector<double> v;
  if (options.sigmoid_cv_folds >= 2) {
    GMP_ASSIGN_OR_RETURN(
        v, CrossValidatedDecisionValues(
               problem, computer,
               [&](const BinaryProblem& sub, SimExecutor* e, StreamId str) {
                 return solver.Solve(sub, computer, e, str, nullptr);
               },
               options.sigmoid_cv_folds, /*seed=*/1u, exec, stream));
  } else {
    v = TrainingDecisionValues(problem, solution);
  }
  const double sigmoid_t0 = exec->StreamTime(stream);
  GMP_ASSIGN_OR_RETURN(
      SigmoidParams sigmoid,
      FitSigmoid(v, problem.y, options.platt, exec, stream,
                 options.platt_parallel_candidates));
  RecordPhaseSpan(exec, stream, StrPrintf("sigmoid %dv%d", s, t), sigmoid_t0,
                  exec->StreamTime(stream));
  *sigmoid_seconds = exec->StreamTime(stream) - sigmoid_t0;
  *sigmoid_done = true;
  return DistillPair(s, t, problem, solution, sigmoid);
}

// Greedily packs `todo` (indices into `pairs`) into concurrent groups under
// the executor's memory budget: each pair needs its kernel buffer
// (min(ws, n_pair) * n_pair doubles) on the device, and a group never exceeds
// max_concurrent_svms.
std::vector<std::vector<size_t>> PackPairGroups(
    const Dataset& dataset, const MpTrainOptions& options,
    const SimExecutor& executor, const std::vector<size_t>& todo,
    const std::vector<std::pair<int, int>>& pairs) {
  const int64_t ws_rows = std::max(2, options.batch.working_set.ws_size);
  const size_t budget = executor.memory_budget();
  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> current;
  size_t current_bytes = 0;
  const size_t usable = budget > executor.bytes_in_use()
                            ? (budget - executor.bytes_in_use()) * 6 / 10
                            : 0;
  for (size_t p : todo) {
    const auto& [s, t] = pairs[p];
    const int64_t n_pair =
        static_cast<int64_t>(dataset.ClassRows(s).size() +
                             dataset.ClassRows(t).size());
    const size_t need = static_cast<size_t>(std::min<int64_t>(ws_rows, n_pair) *
                                            n_pair) *
                        sizeof(double);
    const bool full = !current.empty() &&
                      (static_cast<int>(current.size()) >=
                           std::max(1, options.max_concurrent_svms) ||
                       current_bytes + need > usable);
    if (full) {
      groups.push_back(std::move(current));
      current.clear();
      current_bytes = 0;
    }
    current.push_back(p);
    current_bytes += need;
  }
  if (!current.empty()) groups.push_back(std::move(current));
  return groups;
}

}  // namespace

Status MpTrainOptions::Validate(int num_classes) const {
  if (!(c > 0.0)) {
    return Status::InvalidArgument(StrPrintf("c must be positive, got %g", c));
  }
  GMP_RETURN_NOT_OK(batch.Validate());
  if (!class_weights.empty()) {
    if (num_classes > 0 &&
        class_weights.size() != static_cast<size_t>(num_classes)) {
      return Status::InvalidArgument(
          StrPrintf("class_weights size (%zu) must equal num_classes (%d)",
                    class_weights.size(), num_classes));
    }
    for (size_t k = 0; k < class_weights.size(); ++k) {
      if (!(class_weights[k] > 0.0)) {
        return Status::InvalidArgument(
            StrPrintf("class_weights[%zu] must be positive, got %g", k,
                      class_weights[k]));
      }
    }
  }
  if (max_concurrent_svms < 1) {
    return Status::InvalidArgument(StrPrintf(
        "max_concurrent_svms must be >= 1, got %d", max_concurrent_svms));
  }
  if (platt_parallel_candidates < 1) {
    return Status::InvalidArgument(
        StrPrintf("platt_parallel_candidates must be >= 1, got %d",
                  platt_parallel_candidates));
  }
  if (sigmoid_cv_folds < 0 || sigmoid_cv_folds == 1) {
    return Status::InvalidArgument(StrPrintf(
        "sigmoid_cv_folds must be 0 or >= 2, got %d", sigmoid_cv_folds));
  }
  GMP_RETURN_NOT_OK(pair_retry.Validate());
  if (host_threads < 0) {
    return Status::InvalidArgument(
        StrPrintf("host_threads must be >= 0, got %d", host_threads));
  }
  if (checkpoint.every_n_pairs < 1) {
    return Status::InvalidArgument(
        StrPrintf("checkpoint.every_n_pairs must be >= 1, got %d",
                  checkpoint.every_n_pairs));
  }
  if (checkpoint.resume && checkpoint.dir.empty()) {
    return Status::InvalidArgument(
        "checkpoint.resume requires checkpoint.dir to be set");
  }
  return Status::OK();
}

void MpTrainReport::PublishTo(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("gmpsvm_train_sim_seconds",
                     "Simulated seconds from training start to model completion.")
      ->Set(sim_seconds);
  registry->GetGauge("gmpsvm_train_wall_seconds",
                     "Host wall-clock seconds spent training.")
      ->Set(wall_seconds);
  registry->GetCounter("gmpsvm_train_solver_iterations_total",
                       "SMO subproblems solved across all binary SVMs.")
      ->Add(static_cast<double>(solver.iterations));
  registry->GetCounter("gmpsvm_train_solver_outer_rounds_total",
                       "Working-set refreshes across all binary SVMs.")
      ->Add(static_cast<double>(solver.outer_rounds));
  registry->GetCounter("gmpsvm_train_kernel_rows_computed_total",
                       "Kernel rows computed by the solvers.")
      ->Add(static_cast<double>(solver.kernel_rows_computed));
  registry->GetCounter("gmpsvm_train_kernel_rows_reused_total",
                       "Kernel rows served from the buffer by the solvers.")
      ->Add(static_cast<double>(solver.kernel_rows_reused));
  registry->GetCounter("gmpsvm_train_kernel_values_computed_total",
                       "Kernel values computed during training.")
      ->Add(static_cast<double>(kernel_values_computed));
  registry->GetCounter("gmpsvm_train_kernel_values_reused_total",
                       "Kernel values reused during training.")
      ->Add(static_cast<double>(kernel_values_reused));
  registry->GetGauge("gmpsvm_train_peak_device_bytes",
                     "Peak simulated device memory during training.")
      ->SetMax(static_cast<double>(peak_device_bytes));
  registry->GetCounter("gmpsvm_train_pair_retries_total",
                       "Whole-pair retries after transient faults.")
      ->Add(static_cast<double>(pair_retries));
  registry->GetCounter("gmpsvm_train_pairs_degraded_total",
                       "Pairs that exhausted retries and emitted a neutral entry.")
      ->Add(static_cast<double>(pairs_degraded));
  registry->GetCounter("gmpsvm_train_pairs_resumed_total",
                       "Pairs loaded from a checkpoint instead of trained.")
      ->Add(static_cast<double>(pairs_resumed));
  registry->GetCounter("gmpsvm_train_kernel_row_retries_total",
                       "Retried batched kernel-row computations inside the solver.")
      ->Add(static_cast<double>(solver.kernel_row_retries));
  registry->GetCounter("gmpsvm_train_alloc_retries_total",
                       "Retried device allocations inside the solver.")
      ->Add(static_cast<double>(solver.alloc_retries));
  registry->GetCounter("gmpsvm_train_rows_poisoned_total",
                       "Kernel buffer rows poisoned by injected eviction faults.")
      ->Add(static_cast<double>(solver.rows_poisoned));
  for (const auto& [phase, seconds] : phases.phases()) {
    registry
        ->GetCounter("gmpsvm_train_phase_sim_seconds_total",
                     "Simulated seconds attributed to a training phase.",
                     {{"phase", phase}})
        ->Add(seconds);
  }
}

Result<MpSvmModel> SequentialMpTrainer::Train(const Dataset& dataset,
                                              SimExecutor* executor,
                                              MpTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  // Ship the training data to the device once.
  const double load_t0 = executor->StreamTime(kDefaultStream);
  executor->Transfer(kDefaultStream, static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  RecordPhaseSpan(executor, kDefaultStream, "data_load", load_t0,
                  executor->StreamTime(kDefaultStream));

  KernelComputer computer(&dataset.features(), options_.kernel);
  SmoSolver solver(options_.smo);
  ModelBuilder builder(&dataset, options_);

  CheckpointSession ckpt;
  GMP_RETURN_NOT_OK(ckpt.Init(options_.checkpoint,
                              TrainFingerprint(dataset, options_),
                              dataset.num_classes(), report));

  const auto pairs = dataset.ClassPairs();
  std::vector<std::optional<PairCheckpoint>> results(pairs.size());
  int64_t completed_this_run = 0;

  // Everything one pair needs, against an arbitrary executor/stream so the
  // serial path (main executor) and the pair-parallel path (per-pair
  // satellite executors) run identical numeric code.
  auto solve_pair = [&](SimExecutor* exec, StreamId stream, int s, int t,
                        const BinaryProblem& problem, SolverStats* stats,
                        double* sigmoid_seconds,
                        bool* sigmoid_done) -> Result<PairCheckpoint> {
    const double smo_t0 = exec->StreamTime(stream);
    GMP_ASSIGN_OR_RETURN(
        BinarySolution solution,
        solver.Solve(problem, computer, exec, stream, stats));
    RecordPhaseSpan(exec, stream, StrPrintf("smo %dv%d", s, t), smo_t0,
                    exec->StreamTime(stream));

    std::vector<double> v;
    if (options_.sigmoid_cv_folds >= 2) {
      SmoSolver cv_solver(options_.smo);
      GMP_ASSIGN_OR_RETURN(
          v, CrossValidatedDecisionValues(
                 problem, computer,
                 [&](const BinaryProblem& sub, SimExecutor* e, StreamId str) {
                   return cv_solver.Solve(sub, computer, e, str, nullptr);
                 },
                 options_.sigmoid_cv_folds, /*seed=*/1u, exec, stream));
    } else {
      v = TrainingDecisionValues(problem, solution);
    }
    const double sigmoid_t0 = exec->StreamTime(stream);
    GMP_ASSIGN_OR_RETURN(
        SigmoidParams sigmoid,
        FitSigmoid(v, problem.y, options_.platt, exec, stream,
                   /*parallel_candidates=*/1));
    RecordPhaseSpan(exec, stream, StrPrintf("sigmoid %dv%d", s, t), sigmoid_t0,
                    exec->StreamTime(stream));
    *sigmoid_seconds = exec->StreamTime(stream) - sigmoid_t0;
    *sigmoid_done = true;
    return DistillPair(s, t, problem, solution, sigmoid);
  };

  // Per-pair report contributions, in the exact order the serial loop applies
  // them: the sigmoid phase (only when that stage ran), then the solver
  // stats, then the solver's own phase attribution.
  auto merge_pair_report = [&](const SolverStats& stats, double sigmoid_seconds,
                               bool sigmoid_done) {
    if (report == nullptr) return;
    if (sigmoid_done) report->phases.Add("sigmoid", sigmoid_seconds);
    report->solver.Merge(stats);
    report->phases.Merge(stats.phases);
  };

  const int pair_threads = ResolvePairThreads(options_, executor);
  // Chaos runs stay serial: fault and backoff decisions are consumed in pair
  // order, so only the injector-free path is trivially thread-count
  // invariant.
  const bool pair_parallel =
      pair_threads > 1 && executor->fault_injector() == nullptr;

  if (pair_parallel) {
    std::unique_ptr<ThreadPool> owned_pool;
    ThreadPool* pool = ResolvePairPool(executor, pair_threads, &owned_pool);

    std::vector<PairTask> tasks;
    tasks.reserve(pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      const int s = pairs[p].first;
      const int t = pairs[p].second;
      if (const PairCheckpoint* loaded = ckpt.Loaded(s, t)) {
        results[p] = *loaded;
        continue;
      }
      PairTask task;
      task.pair_index = p;
      task.s = s;
      task.t = t;
      task.problem = dataset.MakePairProblem(s, t, options_.c, options_.kernel);
      if (!options_.class_weights.empty()) {
        task.problem.weight_pos = options_.class_weights[static_cast<size_t>(s)];
        task.problem.weight_neg = options_.class_weights[static_cast<size_t>(t)];
      }
      tasks.push_back(std::move(task));
    }
    // Fork only once the vector is final: satellites hold &task.log.
    for (PairTask& task : tasks) {
      task.satellite.emplace(
          ForkSatellite(executor, kDefaultStream, &task.log, pool));
      task.base = task.satellite->StreamTime(kDefaultStream);
    }
    pool->ParallelFor(
        static_cast<int64_t>(tasks.size()),
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            PairTask& task = tasks[static_cast<size_t>(i)];
            task.outcome = solve_pair(&*task.satellite, kDefaultStream, task.s,
                                      task.t, task.problem, &task.stats,
                                      &task.sigmoid_seconds,
                                      &task.sigmoid_done);
          }
        },
        /*min_chunk=*/1);
    // Replay in pair order. A failing pair returns after its own replay and
    // report merge, exactly where the serial loop would have stopped; later
    // pairs' events are discarded with their satellites.
    for (PairTask& task : tasks) {
      JoinSatellite(task.log, *task.satellite, task.base, executor,
                    kDefaultStream);
      merge_pair_report(task.stats, task.sigmoid_seconds, task.sigmoid_done);
      if (!task.outcome->ok()) return task.outcome->status();
      results[task.pair_index] = std::move(*task.outcome).value();
      GMP_RETURN_NOT_OK(ckpt.OnPairComplete(*results[task.pair_index]));
      ++completed_this_run;
    }
  } else {
    for (size_t p = 0; p < pairs.size(); ++p) {
      const int s = pairs[p].first;
      const int t = pairs[p].second;
      if (const PairCheckpoint* loaded = ckpt.Loaded(s, t)) {
        results[p] = *loaded;
        continue;
      }
      BinaryProblem problem =
          dataset.MakePairProblem(s, t, options_.c, options_.kernel);
      if (!options_.class_weights.empty()) {
        problem.weight_pos = options_.class_weights[static_cast<size_t>(s)];
        problem.weight_neg = options_.class_weights[static_cast<size_t>(t)];
      }

      auto attempt = [&]() -> Result<PairCheckpoint> {
        SolverStats stats;
        double sigmoid_seconds = 0.0;
        bool sigmoid_done = false;
        Result<PairCheckpoint> result =
            solve_pair(executor, kDefaultStream, s, t, problem, &stats,
                       &sigmoid_seconds, &sigmoid_done);
        // Work done by failed attempts still counts.
        merge_pair_report(stats, sigmoid_seconds, sigmoid_done);
        return result;
      };

      GMP_ASSIGN_OR_RETURN(
          PairCheckpoint pair,
          RunPairWithRetry(options_, executor, kDefaultStream, s, t, attempt,
                           report));
      results[p] = std::move(pair);
      GMP_RETURN_NOT_OK(ckpt.OnPairComplete(*results[p]));
      ++completed_this_run;
      GMP_RETURN_NOT_OK(MaybeInterrupt(executor, &ckpt, completed_this_run));
    }
  }

  GMP_RETURN_NOT_OK(ckpt.Flush());
  // Feed the builder in ClassPairs() order regardless of which pairs were
  // resumed: pool indices depend on insertion order.
  for (auto& result : results) builder.AddEntry(*result);

  executor->SynchronizeAll();
  FillReport(executor, sim_base, counters_base, wall, report);
  return builder.Finish();
}

Result<MpSvmModel> GmpSvmTrainer::Train(const Dataset& dataset,
                                        SimExecutor* executor,
                                        MpTrainReport* report) const {
  GMP_RETURN_NOT_OK(options_.Validate(dataset.num_classes()));
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  const double load_t0 = executor->StreamTime(kDefaultStream);
  executor->Transfer(kDefaultStream, static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  RecordPhaseSpan(executor, kDefaultStream, "data_load", load_t0,
                  executor->StreamTime(kDefaultStream));

  KernelComputer computer(&dataset.features(), options_.kernel);
  BatchSmoSolver solver(options_.batch);
  ModelBuilder builder(&dataset, options_);

  // Shared block cache lives across the whole run so later pairs reuse
  // earlier pairs' class segments.
  std::unique_ptr<SharedBlockCache> cache;
  if (options_.share_kernel_blocks) {
    cache = std::make_unique<SharedBlockCache>(&dataset, &computer,
                                               options_.shared_cache_bytes, executor);
  }

  CheckpointSession ckpt;
  GMP_RETURN_NOT_OK(ckpt.Init(options_.checkpoint,
                              TrainFingerprint(dataset, options_),
                              dataset.num_classes(), report));

  const auto pairs = dataset.ClassPairs();
  std::vector<std::optional<PairCheckpoint>> results(pairs.size());
  std::vector<size_t> todo;  // indices into `pairs` that still need training
  todo.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (const PairCheckpoint* loaded = ckpt.Loaded(pairs[p].first, pairs[p].second)) {
      results[p] = *loaded;
    } else {
      todo.push_back(p);
    }
  }

  // Greedily pack the remaining pairs into concurrent groups under the
  // memory budget (each pair needs its kernel buffer on the device).
  const std::vector<std::vector<size_t>> groups =
      PackPairGroups(dataset, options_, *executor, todo, pairs);
  int64_t completed_this_run = 0;

  // Everything one pair needs, against an arbitrary executor/stream so the
  // serial path (main executor) and the pair-parallel path (per-pair
  // satellite executors) run identical numeric code. The cache branch only
  // runs serially: pair parallelism requires share_kernel_blocks off.
  auto solve_pair = [&](SimExecutor* exec, StreamId stream, int s, int t,
                        const BinaryProblem& problem, SolverStats* stats,
                        double* sigmoid_seconds,
                        bool* sigmoid_done) -> Result<PairCheckpoint> {
    return SolveGmpPairImpl(options_, solver, computer, cache.get(), exec,
                            stream, s, t, problem, stats, sigmoid_seconds,
                            sigmoid_done);
  };

  auto merge_pair_report = [&](const SolverStats& stats, double sigmoid_seconds,
                               bool sigmoid_done) {
    if (report == nullptr) return;
    if (sigmoid_done) report->phases.Add("sigmoid", sigmoid_seconds);
    report->solver.Merge(stats);
    report->phases.Merge(stats.phases);
  };

  const int pair_threads = ResolvePairThreads(options_, executor);
  // Serial fallbacks: chaos runs consume fault/backoff decisions in pair
  // order, and the shared block cache's hit/miss accounting depends on the
  // order pairs touch it — both stay on the serial path so every output is
  // thread-count invariant.
  const bool pair_parallel = pair_threads > 1 &&
                             executor->fault_injector() == nullptr &&
                             cache == nullptr;
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool =
      pair_parallel ? ResolvePairPool(executor, pair_threads, &owned_pool)
                    : nullptr;

  for (const auto& group : groups) {
    // One stream per pair in the group, each owning an equal share of SMs
    // (the paper caps SMs per binary SVM to enable concurrency).
    const double share = 1.0 / static_cast<double>(group.size());
    std::vector<StreamId> streams;
    streams.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      streams.push_back(executor->CreateStream(share));
    }

    if (pair_parallel) {
      std::vector<PairTask> tasks(group.size());
      for (size_t gi = 0; gi < group.size(); ++gi) {
        PairTask& task = tasks[gi];
        task.pair_index = group[gi];
        task.s = pairs[task.pair_index].first;
        task.t = pairs[task.pair_index].second;
        task.stream = streams[gi];
        task.problem = dataset.MakePairProblem(task.s, task.t, options_.c,
                                               options_.kernel);
        if (!options_.class_weights.empty()) {
          task.problem.weight_pos =
              options_.class_weights[static_cast<size_t>(task.s)];
          task.problem.weight_neg =
              options_.class_weights[static_cast<size_t>(task.t)];
        }
      }
      // Each satellite mirrors its pair's own stream; nothing else touches
      // that stream before the join, so replayed spans land exactly.
      for (PairTask& task : tasks) {
        task.satellite.emplace(
            ForkSatellite(executor, task.stream, &task.log, pool));
        task.base = task.satellite->StreamTime(kDefaultStream);
      }
      pool->ParallelFor(
          static_cast<int64_t>(tasks.size()),
          [&](int64_t begin, int64_t end) {
            for (int64_t i = begin; i < end; ++i) {
              PairTask& task = tasks[static_cast<size_t>(i)];
              task.outcome = solve_pair(&*task.satellite, kDefaultStream,
                                        task.s, task.t, task.problem,
                                        &task.stats, &task.sigmoid_seconds,
                                        &task.sigmoid_done);
            }
          },
          /*min_chunk=*/1);
      for (PairTask& task : tasks) {
        JoinSatellite(task.log, *task.satellite, task.base, executor,
                      task.stream);
        merge_pair_report(task.stats, task.sigmoid_seconds, task.sigmoid_done);
        if (!task.outcome->ok()) return task.outcome->status();
        results[task.pair_index] = std::move(*task.outcome).value();
        GMP_RETURN_NOT_OK(ckpt.OnPairComplete(*results[task.pair_index]));
        ++completed_this_run;
      }
    } else {
      for (size_t gi = 0; gi < group.size(); ++gi) {
        const size_t pair_index = group[gi];
        const int s = pairs[pair_index].first;
        const int t = pairs[pair_index].second;
        const StreamId stream = streams[gi];
        BinaryProblem problem =
            dataset.MakePairProblem(s, t, options_.c, options_.kernel);
        if (!options_.class_weights.empty()) {
          problem.weight_pos = options_.class_weights[static_cast<size_t>(s)];
          problem.weight_neg = options_.class_weights[static_cast<size_t>(t)];
        }

        auto attempt = [&]() -> Result<PairCheckpoint> {
          SolverStats stats;
          double sigmoid_seconds = 0.0;
          bool sigmoid_done = false;
          Result<PairCheckpoint> result =
              solve_pair(executor, stream, s, t, problem, &stats,
                         &sigmoid_seconds, &sigmoid_done);
          // Work done by failed attempts still counts.
          merge_pair_report(stats, sigmoid_seconds, sigmoid_done);
          return result;
        };

        GMP_ASSIGN_OR_RETURN(
            PairCheckpoint pair,
            RunPairWithRetry(options_, executor, stream, s, t, attempt, report));
        results[pair_index] = std::move(pair);
        GMP_RETURN_NOT_OK(ckpt.OnPairComplete(*results[pair_index]));
        ++completed_this_run;
        GMP_RETURN_NOT_OK(MaybeInterrupt(executor, &ckpt, completed_this_run));
      }
    }
    // Barrier between groups: buffers are reclaimed before the next group.
    executor->SynchronizeAll();
  }

  GMP_RETURN_NOT_OK(ckpt.Flush());
  // Pool indices depend on insertion order: feed the builder in ClassPairs()
  // order regardless of which pairs were resumed from the checkpoint.
  for (auto& result : results) builder.AddEntry(*result);

  executor->SynchronizeAll();
  FillReport(executor, sim_base, counters_base, wall, report);
  return builder.Finish();
}

Result<std::vector<PairTrainOutcome>> TrainGmpPairSubset(
    const Dataset& dataset, const MpTrainOptions& options,
    SimExecutor* executor, const std::vector<size_t>& pair_indices,
    const PairFaultInjectorFactory& injector_factory,
    const PairWarmStartProvider& warm_start) {
  GMP_RETURN_NOT_OK(options.Validate(dataset.num_classes()));
  const auto pairs = dataset.ClassPairs();
  for (size_t p : pair_indices) {
    if (p >= pairs.size()) {
      return Status::InvalidArgument(
          StrPrintf("pair index %zu out of range (dataset has %zu pairs)", p,
                    pairs.size()));
    }
  }
  executor->SynchronizeAll();

  // Each device pays for its own copy of the training data — there is no
  // modeled device-to-device interconnect (docs/cost_model.md).
  const double load_t0 = executor->StreamTime(kDefaultStream);
  executor->Transfer(kDefaultStream,
                     static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  RecordPhaseSpan(executor, kDefaultStream, "data_load", load_t0,
                  executor->StreamTime(kDefaultStream));

  KernelComputer computer(&dataset.features(), options.kernel);
  BatchSmoSolver solver(options.batch);
  // Per-device shared block cache: pairs co-located on this device reuse each
  // other's class segments; there is no cross-device sharing.
  std::unique_ptr<SharedBlockCache> cache;
  if (options.share_kernel_blocks) {
    cache = std::make_unique<SharedBlockCache>(
        &dataset, &computer, options.shared_cache_bytes, executor);
  }

  const std::vector<std::vector<size_t>> groups =
      PackPairGroups(dataset, options, *executor, pair_indices, pairs);

  std::vector<PairTrainOutcome> outcomes;
  outcomes.reserve(pair_indices.size());
  fault::FaultInjector* const base_injector = executor->fault_injector();

  for (const auto& group : groups) {
    const double share = 1.0 / static_cast<double>(group.size());
    std::vector<StreamId> streams;
    streams.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      streams.push_back(executor->CreateStream(share));
    }
    for (size_t gi = 0; gi < group.size(); ++gi) {
      const size_t pair_index = group[gi];
      const int s = pairs[pair_index].first;
      const int t = pairs[pair_index].second;
      const StreamId stream = streams[gi];
      BinaryProblem problem =
          dataset.MakePairProblem(s, t, options.c, options.kernel);
      if (!options.class_weights.empty()) {
        problem.weight_pos = options.class_weights[static_cast<size_t>(s)];
        problem.weight_neg = options.class_weights[static_cast<size_t>(t)];
      }

      std::unique_ptr<fault::FaultInjector> pair_injector;
      if (injector_factory != nullptr) {
        pair_injector = injector_factory(pair_index);
        executor->SetFaultInjector(pair_injector.get());
      }

      PairTrainOutcome outcome;
      outcome.pair_index = pair_index;
      MpTrainReport pair_report;
      const std::vector<double> warm_alpha =
          warm_start != nullptr ? warm_start(pair_index, problem)
                                : std::vector<double>{};
      auto attempt = [&]() -> Result<PairCheckpoint> {
        SolverStats stats;
        double sigmoid_seconds = 0.0;
        bool sigmoid_done = false;
        Result<PairCheckpoint> result = SolveGmpPairImpl(
            options, solver, computer, cache.get(), executor, stream, s, t,
            problem, &stats, &sigmoid_seconds, &sigmoid_done, warm_alpha);
        // Work done by failed attempts still counts toward the pair.
        outcome.stats.Merge(stats);
        outcome.sigmoid_seconds += sigmoid_seconds;
        outcome.sigmoid_done = outcome.sigmoid_done || sigmoid_done;
        return result;
      };
      Result<PairCheckpoint> pair = RunPairWithRetry(
          options, executor, stream, s, t, attempt, &pair_report);
      if (injector_factory != nullptr) {
        executor->SetFaultInjector(base_injector);
      }
      if (!pair.ok()) return pair.status();
      outcome.checkpoint = std::move(pair).value();
      outcome.retries = pair_report.pair_retries;
      outcome.degraded = outcome.checkpoint.degraded;
      outcomes.push_back(std::move(outcome));
    }
    // Barrier between groups: buffers are reclaimed before the next group.
    executor->SynchronizeAll();
  }

  executor->SynchronizeAll();
  return outcomes;
}

Result<MpSvmModel> AssembleModelFromPairs(
    const Dataset& dataset, const MpTrainOptions& options,
    const std::vector<PairCheckpoint>& pairs_in_order) {
  GMP_RETURN_NOT_OK(options.Validate(dataset.num_classes()));
  const auto pairs = dataset.ClassPairs();
  if (pairs_in_order.size() != pairs.size()) {
    return Status::InvalidArgument(
        StrPrintf("got %zu pair checkpoints, dataset has %zu pairs",
                  pairs_in_order.size(), pairs.size()));
  }
  ModelBuilder builder(&dataset, options);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const PairCheckpoint& pair = pairs_in_order[p];
    if (pair.class_s != pairs[p].first || pair.class_t != pairs[p].second) {
      return Status::InvalidArgument(StrPrintf(
          "pair checkpoint %zu is %dv%d, expected %dv%d", p, pair.class_s,
          pair.class_t, pairs[p].first, pairs[p].second));
    }
    builder.AddEntry(pair);
  }
  return builder.Finish();
}

}  // namespace gmpsvm
