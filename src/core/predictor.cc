#include "core/predictor.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "kernel/kernel_computer.h"

namespace gmpsvm {
namespace {

// r-matrix layout helper: one k*k block per instance in the tile.
inline double& RAt(std::vector<double>& r, int k, int64_t i, int s, int t) {
  return r[(static_cast<size_t>(i) * k + s) * k + t];
}

}  // namespace

Result<PredictResult> MpSvmPredictor::Predict(const CsrMatrix& test,
                                              SimExecutor* executor,
                                              const PredictOptions& options) const {
  const MpSvmModel& model = *model_;
  const int k = model.num_classes;
  const int64_t n = test.rows();
  const int64_t pool = model.pool_size();
  if (k < 2 || model.svms.empty()) {
    return Status::FailedPrecondition("model is empty");
  }
  if (test.cols() != model.support_vectors.cols()) {
    return Status::InvalidArgument("test dimensionality mismatch with model");
  }

  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  PredictResult result;
  result.num_instances = n;
  result.num_classes = k;
  result.probabilities.assign(static_cast<size_t>(n) * k, 0.0);
  result.labels.assign(static_cast<size_t>(n), 0);
  if (n == 0) return result;

  // Ship test data and model to the device.
  executor->Transfer(kDefaultStream,
                     static_cast<double>(test.ByteSize() + model.ByteSize()),
                     TransferDirection::kHostToDevice);

  KernelComputer computer(&test, &model.support_vectors, model.kernel);

  // Tile size: the shared kernel block (tile x pool doubles) should use at
  // most ~1/4 of the remaining device memory.
  int64_t tile_rows = options.tile_rows;
  if (tile_rows <= 0) {
    const size_t free_bytes = executor->memory_budget() > executor->bytes_in_use()
                                  ? executor->memory_budget() - executor->bytes_in_use()
                                  : 0;
    tile_rows = static_cast<int64_t>(
        free_bytes / 4 / (sizeof(double) * std::max<int64_t>(1, pool)));
    tile_rows = std::clamp<int64_t>(tile_rows, 1, n);
  }

  std::vector<int32_t> pool_rows(static_cast<size_t>(pool));
  std::iota(pool_rows.begin(), pool_rows.end(), 0);

  const bool voting = options.decision == PredictOptions::Decision::kVoting;

  // Streams for concurrent binary-SVM evaluation, created once and reused
  // across tiles (SynchronizeAll at each tile boundary keeps them ordered).
  const int group = options.concurrent_svms
                        ? std::clamp(options.max_concurrent_svms, 1, model.num_pairs())
                        : 1;
  std::vector<StreamId> streams;
  streams.reserve(static_cast<size_t>(group));
  for (int gi = 0; gi < group; ++gi) {
    streams.push_back(executor->CreateStream(1.0 / group));
  }

  std::vector<double> kblock;    // tile x pool (shared path)
  std::vector<double> kpair;     // tile x max_svs (per-SVM path)
  std::vector<double> r;         // tile x k x k local probabilities
  std::vector<double> p;         // tile x k coupled probabilities
  std::vector<double> votes;     // tile x k (voting mode)
  std::vector<int32_t> tile_ids;
  std::vector<uint8_t> hit;          // kernel-cache mask (one per pool row)
  std::vector<int32_t> miss_cols;    // pool columns the cache did not hold
  std::vector<double> miss_values;   // their freshly computed kernel values

  for (int64_t tile_begin = 0; tile_begin < n; tile_begin += tile_rows) {
    const int64_t tile_end = std::min(tile_begin + tile_rows, n);
    const int64_t tile = tile_end - tile_begin;
    tile_ids.resize(static_cast<size_t>(tile));
    std::iota(tile_ids.begin(), tile_ids.end(), static_cast<int32_t>(tile_begin));

    r.assign(static_cast<size_t>(tile) * k * k, 0.0);
    if (voting) votes.assign(static_cast<size_t>(tile) * k, 0.0);
    // Diagonal-free r: set r_st + r_ts = 1 with r_ss unused.

    DeviceAllocation block_reservation;
    if (options.share_kernel_values) {
      // One batched product for the whole tile against the shared SV pool.
      GMP_ASSIGN_OR_RETURN(
          block_reservation,
          executor->Allocate(static_cast<size_t>(tile * pool) * sizeof(double)));
      kblock.resize(static_cast<size_t>(tile * pool));
      const double t0 = executor->StreamTime(kDefaultStream);
      if (options.kernel_cache != nullptr && pool > 0) {
        // Cross-model cache (fleet SV store): gather the kernel values the
        // store already holds for each test row and batch-compute only the
        // misses. Each K(row, sv) is a pure per-pair function — a 1 x m miss
        // block produces bit-identical values to the full tile x pool block —
        // so this path preserves the byte-identity contract at any hit rate.
        int64_t gathered = 0;
        for (int64_t i = 0; i < tile; ++i) {
          const int32_t row_id = tile_ids[static_cast<size_t>(i)];
          const SparseRowView row{test.RowIndices(row_id),
                                  test.RowValues(row_id)};
          double* out_row = kblock.data() + i * pool;
          hit.assign(static_cast<size_t>(pool), 0);
          const int64_t hits = options.kernel_cache->Gather(
              row, {out_row, static_cast<size_t>(pool)}, hit);
          gathered += hits;
          if (hits == pool) continue;
          miss_cols.clear();
          for (int64_t j = 0; j < pool; ++j) {
            if (hit[static_cast<size_t>(j)] == 0) {
              miss_cols.push_back(static_cast<int32_t>(j));
            }
          }
          miss_values.resize(miss_cols.size());
          computer.ComputeBlock({&row_id, 1}, miss_cols, executor,
                                kDefaultStream, miss_values.data());
          for (size_t m = 0; m < miss_cols.size(); ++m) {
            out_row[miss_cols[m]] = miss_values[m];
          }
          options.kernel_cache->Commit(
              row, {out_row, static_cast<size_t>(pool)}, hit);
        }
        if (gathered > 0) {
          // Gathered values are host-side reads, not kernel evaluations.
          TaskCost gather_cost;
          gather_cost.bytes_read =
              static_cast<double>(gathered) * sizeof(double);
          gather_cost.parallel_items = gathered;
          executor->Charge(kDefaultStream, gather_cost);
          executor->counters().kernel_values_reused += gathered;
        }
      } else {
        computer.ComputeBlock(tile_ids, pool_rows, executor, kDefaultStream,
                              kblock.data());
      }
      result.phases.Add("decision_values",
                        executor->StreamTime(kDefaultStream) - t0);
      // Every further SV reference reuses these values.
      executor->counters().kernel_values_reused +=
          model.total_sv_references() * tile - static_cast<int64_t>(pool) * tile;
    }

    // Decision values + sigmoid per binary SVM, optionally concurrent; each
    // stream waits for this tile's shared kernel block.
    for (StreamId stream : streams) {
      executor->StreamWait(stream, kDefaultStream);
    }

    for (size_t pi = 0; pi < model.svms.size(); ++pi) {
      const BinarySvmEntry& svm = model.svms[pi];
      const StreamId stream = streams[pi % static_cast<size_t>(group)];
      const int64_t nsv = svm.num_svs();

      const double t0 = executor->StreamTime(stream);
      std::vector<double> v(static_cast<size_t>(tile), svm.bias);
      if (options.share_kernel_values) {
        // Gather from the shared block; tile rows write disjoint v entries.
        executor->HostParallelFor(
            tile, /*min_chunk=*/64, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const double* krow = kblock.data() + i * pool;
                double acc = 0.0;
                for (int64_t m = 0; m < nsv; ++m) {
                  acc += svm.sv_coef[static_cast<size_t>(m)] *
                         krow[svm.sv_pool_index[static_cast<size_t>(m)]];
                }
                v[static_cast<size_t>(i)] += acc;
              }
            });
        TaskCost cost;
        cost.parallel_items = tile;
        cost.flops = 2.0 * static_cast<double>(tile * nsv);
        cost.bytes_read = static_cast<double>(tile * nsv) *
                          (sizeof(double) + sizeof(int32_t));
        executor->Charge(stream, cost);
      } else {
        // Per-SVM kernel computation: recompute K(test_tile, its SVs).
        kpair.resize(static_cast<size_t>(tile * std::max<int64_t>(1, nsv)));
        if (nsv > 0) {
          computer.ComputeBlock(tile_ids, svm.sv_pool_index, executor, stream,
                                kpair.data());
          executor->HostParallelFor(
              tile, /*min_chunk=*/64, [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const double* krow = kpair.data() + i * nsv;
                  double acc = 0.0;
                  for (int64_t m = 0; m < nsv; ++m) {
                    acc += svm.sv_coef[static_cast<size_t>(m)] * krow[m];
                  }
                  v[static_cast<size_t>(i)] += acc;
                }
              });
          TaskCost cost;
          cost.parallel_items = tile;
          cost.flops = 2.0 * static_cast<double>(tile * nsv);
          cost.bytes_read = static_cast<double>(tile * nsv) * sizeof(double);
          executor->Charge(stream, cost);
        }
      }
      result.phases.Add("decision_values", executor->StreamTime(stream) - t0);

      if (voting) {
        // LibSVM's plain multi-class rule: sign of the decision value votes.
        // Each instance owns its votes row, so rows partition cleanly.
        executor->HostParallelFor(
            tile, /*min_chunk=*/256, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const int winner =
                    v[static_cast<size_t>(i)] >= 0 ? svm.class_s : svm.class_t;
                votes[static_cast<size_t>(i) * k + winner] += 1.0;
              }
            });
        TaskCost vote_cost;
        vote_cost.parallel_items = tile;
        vote_cost.flops = 2.0 * static_cast<double>(tile);
        executor->Charge(stream, vote_cost);
      } else {
        // Local probabilities (Equation 12).
        const double t1 = executor->StreamTime(stream);
        executor->HostParallelFor(
            tile, /*min_chunk=*/256, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const double prob_s =
                    svm.sigmoid.Probability(v[static_cast<size_t>(i)]);
                RAt(r, k, i, svm.class_s, svm.class_t) = prob_s;
                RAt(r, k, i, svm.class_t, svm.class_s) = 1.0 - prob_s;
              }
            });
        TaskCost sigmoid_cost;
        sigmoid_cost.parallel_items = tile;
        sigmoid_cost.flops = 10.0 * static_cast<double>(tile);
        sigmoid_cost.bytes_read = static_cast<double>(tile) * sizeof(double);
        executor->Charge(stream, sigmoid_cost);
        result.phases.Add("sigmoid", executor->StreamTime(stream) - t1);
      }
    }

    // Coupling (or vote counting) waits for all SVM streams.
    for (StreamId s : streams) executor->StreamWait(kDefaultStream, s);
    if (voting) {
      const int num_pairs = model.num_pairs();
      for (int64_t i = 0; i < tile; ++i) {
        const double* vi = votes.data() + i * k;
        double* out_row = result.probabilities.data() + (tile_begin + i) * k;
        for (int c2 = 0; c2 < k; ++c2) out_row[c2] = vi[c2] / num_pairs;
        result.labels[static_cast<size_t>(tile_begin + i)] =
            static_cast<int32_t>(std::max_element(vi, vi + k) - vi);
      }
    } else {
      const double t2 = executor->StreamTime(kDefaultStream);
      p.resize(static_cast<size_t>(tile) * k);
      GMP_RETURN_NOT_OK(CoupleBatch(r, k, tile, options.coupling, executor,
                                    kDefaultStream, p.data()));
      result.phases.Add("coupling", executor->StreamTime(kDefaultStream) - t2);

      for (int64_t i = 0; i < tile; ++i) {
        const double* pi_row = p.data() + i * k;
        double* out_row = result.probabilities.data() + (tile_begin + i) * k;
        std::copy(pi_row, pi_row + k, out_row);
        result.labels[static_cast<size_t>(tile_begin + i)] = static_cast<int32_t>(
            std::max_element(pi_row, pi_row + k) - pi_row);
      }
    }
    executor->SynchronizeAll();
  }

  result.sim_seconds = executor->NowSeconds() - sim_base;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}


Result<PredictResult> MpSvmPredictor::PredictRows(
    std::span<const SparseRowView> rows, SimExecutor* executor,
    const PredictOptions& options) const {
  CsrBuilder builder(model_->support_vectors.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].indices.size() != rows[i].values.size()) {
      return Status::InvalidArgument(
          StrPrintf("row %zu: indices/values size mismatch", i));
    }
    builder.AddRow(rows[i].indices, rows[i].values);
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix tile, builder.Finish());
  return Predict(tile, executor, options);
}

Result<std::vector<double>> MpSvmPredictor::PredictOne(
    std::span<const int32_t> indices, std::span<const double> values,
    SimExecutor* executor) const {
  PredictOptions options;
  options.concurrent_svms = false;  // one instance cannot feed many streams
  const SparseRowView row{indices, values};
  GMP_ASSIGN_OR_RETURN(PredictResult result,
                       PredictRows({&row, 1}, executor, options));
  std::vector<double> p(result.probabilities.begin(),
                        result.probabilities.begin() + model_->num_classes);
  return p;
}

}  // namespace gmpsvm
