#include "core/predictor.h"

#include <algorithm>
#include <cinttypes>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "kernel/kernel_computer.h"

namespace gmpsvm {
namespace {

// r-matrix layout helper: one k*k block per instance in the tile.
inline double& RAt(std::vector<double>& r, int k, int64_t i, int s, int t) {
  return r[(static_cast<size_t>(i) * k + s) * k + t];
}

// The coupling stage inherits the predict-level SIMD tier unless it was
// overridden explicitly.
CouplingOptions ResolveCoupling(const PredictOptions& options) {
  CouplingOptions coupling = options.coupling;
  if (coupling.simd == simd::SimdTier::kAuto) coupling.simd = options.simd;
  return coupling;
}

}  // namespace

Status CascadeOptions::Validate() const {
  if (budget < 0) {
    return Status::InvalidArgument(
        StrPrintf("cascade.budget must be >= 0, got %d", budget));
  }
  if (!(elimination_threshold > 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("cascade.elimination_threshold must be positive, got %g",
                  elimination_threshold));
  }
  if (!(ambiguity_band >= 0.0 && ambiguity_band <= 1.0)) {
    return Status::InvalidArgument(StrPrintf(
        "cascade.ambiguity_band must be in [0, 1], got %g", ambiguity_band));
  }
  return Status::OK();
}

Status PredictOptions::Validate() const {
  if (max_concurrent_svms < 1) {
    return Status::InvalidArgument(StrPrintf(
        "max_concurrent_svms must be >= 1, got %d", max_concurrent_svms));
  }
  if (tile_rows < 0) {
    return Status::InvalidArgument(
        StrPrintf("tile_rows must be >= 0, got %" PRId64, tile_rows));
  }
  if (coupling.max_iterations < 1) {
    return Status::InvalidArgument(StrPrintf(
        "coupling.max_iterations must be >= 1, got %d", coupling.max_iterations));
  }
  if (!(coupling.eps > 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("coupling.eps must be positive, got %g", coupling.eps));
  }
  if (!simd::TierSupported(simd)) {
    return Status::InvalidArgument(
        StrPrintf("simd tier '%s' is not supported on this CPU",
                  simd::TierName(simd)));
  }
  if (!simd::TierSupported(coupling.simd)) {
    return Status::InvalidArgument(
        StrPrintf("coupling.simd tier '%s' is not supported on this CPU",
                  simd::TierName(coupling.simd)));
  }
  GMP_RETURN_NOT_OK(cascade.Validate());
  if (cascade.mode == CascadeOptions::Mode::kEliminate &&
      decision == Decision::kVoting) {
    return Status::InvalidArgument(
        "cascade.mode=eliminate requires decision=probability (voting has no "
        "coupling stage for the cascade to shrink)");
  }
  return Status::OK();
}

Result<PredictResult> MpSvmPredictor::Predict(const CsrMatrix& test,
                                              SimExecutor* executor,
                                              const PredictOptions& options) const {
  GMP_RETURN_NOT_OK(options.Validate());
  if (options.cascade.mode == CascadeOptions::Mode::kEliminate) {
    return PredictCascade(test, executor, options);
  }
  const MpSvmModel& model = *model_;
  const int k = model.num_classes;
  const int64_t n = test.rows();
  const int64_t pool = model.pool_size();
  if (k < 2 || model.svms.empty()) {
    return Status::FailedPrecondition("model is empty");
  }
  if (test.cols() != model.support_vectors.cols()) {
    return Status::InvalidArgument("test dimensionality mismatch with model");
  }

  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  PredictResult result;
  result.num_instances = n;
  result.num_classes = k;
  result.probabilities.assign(static_cast<size_t>(n) * k, 0.0);
  result.labels.assign(static_cast<size_t>(n), 0);
  if (n == 0) return result;

  // Ship test data and model to the device.
  executor->Transfer(kDefaultStream,
                     static_cast<double>(test.ByteSize() + model.ByteSize()),
                     TransferDirection::kHostToDevice);

  KernelComputer computer(&test, &model.support_vectors, model.kernel,
                          options.simd);
  const simd::SimdOps& ops = simd::OpsFor(options.simd);
  const CouplingOptions coupling = ResolveCoupling(options);

  // Tile size: the shared kernel block (tile x pool doubles) should use at
  // most ~1/4 of the remaining device memory.
  int64_t tile_rows = options.tile_rows;
  if (tile_rows <= 0) {
    const size_t free_bytes = executor->memory_budget() > executor->bytes_in_use()
                                  ? executor->memory_budget() - executor->bytes_in_use()
                                  : 0;
    tile_rows = static_cast<int64_t>(
        free_bytes / 4 / (sizeof(double) * std::max<int64_t>(1, pool)));
    tile_rows = std::clamp<int64_t>(tile_rows, 1, n);
  }

  std::vector<int32_t> pool_rows(static_cast<size_t>(pool));
  std::iota(pool_rows.begin(), pool_rows.end(), 0);

  const bool voting = options.decision == PredictOptions::Decision::kVoting;

  // Streams for concurrent binary-SVM evaluation, created once and reused
  // across tiles (SynchronizeAll at each tile boundary keeps them ordered).
  const int group = options.concurrent_svms
                        ? std::clamp(options.max_concurrent_svms, 1, model.num_pairs())
                        : 1;
  std::vector<StreamId> streams;
  streams.reserve(static_cast<size_t>(group));
  for (int gi = 0; gi < group; ++gi) {
    streams.push_back(executor->CreateStream(1.0 / group));
  }

  std::vector<double> kblock;    // tile x pool (shared path)
  std::vector<double> kpair;     // tile x max_svs (per-SVM path)
  std::vector<double> r;         // tile x k x k local probabilities
  std::vector<double> p;         // tile x k coupled probabilities
  std::vector<double> votes;     // tile x k (voting mode)
  std::vector<int32_t> tile_ids;
  std::vector<uint8_t> hit;          // kernel-cache mask (one per pool row)
  std::vector<int32_t> miss_cols;    // pool columns the cache did not hold
  std::vector<double> miss_values;   // their freshly computed kernel values

  for (int64_t tile_begin = 0; tile_begin < n; tile_begin += tile_rows) {
    const int64_t tile_end = std::min(tile_begin + tile_rows, n);
    const int64_t tile = tile_end - tile_begin;
    tile_ids.resize(static_cast<size_t>(tile));
    std::iota(tile_ids.begin(), tile_ids.end(), static_cast<int32_t>(tile_begin));

    r.assign(static_cast<size_t>(tile) * k * k, 0.0);
    if (voting) votes.assign(static_cast<size_t>(tile) * k, 0.0);
    // Diagonal-free r: set r_st + r_ts = 1 with r_ss unused.

    DeviceAllocation block_reservation;
    if (options.share_kernel_values) {
      // One batched product for the whole tile against the shared SV pool.
      GMP_ASSIGN_OR_RETURN(
          block_reservation,
          executor->Allocate(static_cast<size_t>(tile * pool) * sizeof(double)));
      kblock.resize(static_cast<size_t>(tile * pool));
      const double t0 = executor->StreamTime(kDefaultStream);
      if (options.kernel_cache != nullptr && pool > 0) {
        // Cross-model cache (fleet SV store): gather the kernel values the
        // store already holds for each test row and batch-compute only the
        // misses. Each K(row, sv) is a pure per-pair function — a 1 x m miss
        // block produces bit-identical values to the full tile x pool block —
        // so this path preserves the byte-identity contract at any hit rate.
        int64_t gathered = 0;
        for (int64_t i = 0; i < tile; ++i) {
          const int32_t row_id = tile_ids[static_cast<size_t>(i)];
          const SparseRowView row{test.RowIndices(row_id),
                                  test.RowValues(row_id)};
          double* out_row = kblock.data() + i * pool;
          hit.assign(static_cast<size_t>(pool), 0);
          const int64_t hits = options.kernel_cache->Gather(
              row, {out_row, static_cast<size_t>(pool)}, hit);
          gathered += hits;
          if (hits == pool) continue;
          miss_cols.clear();
          for (int64_t j = 0; j < pool; ++j) {
            if (hit[static_cast<size_t>(j)] == 0) {
              miss_cols.push_back(static_cast<int32_t>(j));
            }
          }
          miss_values.resize(miss_cols.size());
          computer.ComputeBlock({&row_id, 1}, miss_cols, executor,
                                kDefaultStream, miss_values.data());
          for (size_t m = 0; m < miss_cols.size(); ++m) {
            out_row[miss_cols[m]] = miss_values[m];
          }
          options.kernel_cache->Commit(
              row, {out_row, static_cast<size_t>(pool)}, hit);
        }
        if (gathered > 0) {
          // Gathered values are host-side reads, not kernel evaluations.
          TaskCost gather_cost;
          gather_cost.bytes_read =
              static_cast<double>(gathered) * sizeof(double);
          gather_cost.parallel_items = gathered;
          executor->Charge(kDefaultStream, gather_cost);
          executor->counters().kernel_values_reused += gathered;
        }
      } else {
        computer.ComputeBlock(tile_ids, pool_rows, executor, kDefaultStream,
                              kblock.data());
      }
      result.phases.Add("decision_values",
                        executor->StreamTime(kDefaultStream) - t0);
      // Every further SV reference reuses these values.
      executor->counters().kernel_values_reused +=
          model.total_sv_references() * tile - static_cast<int64_t>(pool) * tile;
    }

    // Decision values + sigmoid per binary SVM, optionally concurrent; each
    // stream waits for this tile's shared kernel block.
    for (StreamId stream : streams) {
      executor->StreamWait(stream, kDefaultStream);
    }

    for (size_t pi = 0; pi < model.svms.size(); ++pi) {
      const BinarySvmEntry& svm = model.svms[pi];
      const StreamId stream = streams[pi % static_cast<size_t>(group)];
      const int64_t nsv = svm.num_svs();

      const double t0 = executor->StreamTime(stream);
      std::vector<double> v(static_cast<size_t>(tile), svm.bias);
      if (options.share_kernel_values) {
        // Gather from the shared block; tile rows write disjoint v entries.
        // The coefficient-times-kernel-value sum runs through the tier's
        // canonical gather-dot (the same tree the cascade's lazy path uses).
        executor->HostParallelFor(
            tile, /*min_chunk=*/64, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const double* krow = kblock.data() + i * pool;
                v[static_cast<size_t>(i)] +=
                    ops.gather_dot(svm.sv_coef.data(), svm.sv_pool_index.data(),
                                   nsv, krow);
              }
            });
        TaskCost cost;
        cost.parallel_items = tile;
        cost.flops = 2.0 * static_cast<double>(tile * nsv);
        cost.bytes_read = static_cast<double>(tile * nsv) *
                          (sizeof(double) + sizeof(int32_t));
        executor->Charge(stream, cost);
      } else {
        // Per-SVM kernel computation: recompute K(test_tile, its SVs).
        kpair.resize(static_cast<size_t>(tile * std::max<int64_t>(1, nsv)));
        if (nsv > 0) {
          computer.ComputeBlock(tile_ids, svm.sv_pool_index, executor, stream,
                                kpair.data());
          executor->HostParallelFor(
              tile, /*min_chunk=*/64, [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const double* krow = kpair.data() + i * nsv;
                  v[static_cast<size_t>(i)] +=
                      ops.dot(svm.sv_coef.data(), krow, nsv);
                }
              });
          TaskCost cost;
          cost.parallel_items = tile;
          cost.flops = 2.0 * static_cast<double>(tile * nsv);
          cost.bytes_read = static_cast<double>(tile * nsv) * sizeof(double);
          executor->Charge(stream, cost);
        }
      }
      result.phases.Add("decision_values", executor->StreamTime(stream) - t0);

      if (voting) {
        // LibSVM's plain multi-class rule: sign of the decision value votes.
        // Each instance owns its votes row, so rows partition cleanly.
        executor->HostParallelFor(
            tile, /*min_chunk=*/256, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const int winner =
                    v[static_cast<size_t>(i)] >= 0 ? svm.class_s : svm.class_t;
                votes[static_cast<size_t>(i) * k + winner] += 1.0;
              }
            });
        TaskCost vote_cost;
        vote_cost.parallel_items = tile;
        vote_cost.flops = 2.0 * static_cast<double>(tile);
        executor->Charge(stream, vote_cost);
      } else {
        // Local probabilities (Equation 12).
        const double t1 = executor->StreamTime(stream);
        executor->HostParallelFor(
            tile, /*min_chunk=*/256, [&](int64_t begin, int64_t end) {
              for (int64_t i = begin; i < end; ++i) {
                const double prob_s =
                    svm.sigmoid.Probability(v[static_cast<size_t>(i)]);
                RAt(r, k, i, svm.class_s, svm.class_t) = prob_s;
                RAt(r, k, i, svm.class_t, svm.class_s) = 1.0 - prob_s;
              }
            });
        TaskCost sigmoid_cost;
        sigmoid_cost.parallel_items = tile;
        sigmoid_cost.flops = 10.0 * static_cast<double>(tile);
        sigmoid_cost.bytes_read = static_cast<double>(tile) * sizeof(double);
        executor->Charge(stream, sigmoid_cost);
        result.phases.Add("sigmoid", executor->StreamTime(stream) - t1);
      }
    }

    // Coupling (or vote counting) waits for all SVM streams.
    for (StreamId s : streams) executor->StreamWait(kDefaultStream, s);
    if (voting) {
      const int num_pairs = model.num_pairs();
      for (int64_t i = 0; i < tile; ++i) {
        const double* vi = votes.data() + i * k;
        double* out_row = result.probabilities.data() + (tile_begin + i) * k;
        for (int c2 = 0; c2 < k; ++c2) out_row[c2] = vi[c2] / num_pairs;
        result.labels[static_cast<size_t>(tile_begin + i)] =
            static_cast<int32_t>(std::max_element(vi, vi + k) - vi);
      }
    } else {
      const double t2 = executor->StreamTime(kDefaultStream);
      p.resize(static_cast<size_t>(tile) * k);
      GMP_RETURN_NOT_OK(
          CoupleBatch(r, k, tile, coupling, executor, kDefaultStream, p.data()));
      result.phases.Add("coupling", executor->StreamTime(kDefaultStream) - t2);

      for (int64_t i = 0; i < tile; ++i) {
        const double* pi_row = p.data() + i * k;
        double* out_row = result.probabilities.data() + (tile_begin + i) * k;
        std::copy(pi_row, pi_row + k, out_row);
        result.labels[static_cast<size_t>(tile_begin + i)] = static_cast<int32_t>(
            std::max_element(pi_row, pi_row + k) - pi_row);
      }
    }
    executor->SynchronizeAll();
  }

  result.sim_seconds = executor->NowSeconds() - sim_base;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}


Result<PredictResult> MpSvmPredictor::PredictRows(
    std::span<const SparseRowView> rows, SimExecutor* executor,
    const PredictOptions& options) const {
  CsrBuilder builder(model_->support_vectors.cols());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].indices.size() != rows[i].values.size()) {
      return Status::InvalidArgument(
          StrPrintf("row %zu: indices/values size mismatch", i));
    }
    builder.AddRow(rows[i].indices, rows[i].values);
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix tile, builder.Finish());
  return Predict(tile, executor, options);
}

// DCSVM-style class-elimination cascade (docs/cascade.md). Per row: scan
// pairs most-discriminative-first, evaluating at most `budget` binary SVMs
// with lazily computed kernel values; eliminate classes whose accumulated
// pairwise loss crosses the threshold; complete the surviving clique and
// couple it exactly; rerun ambiguous rows through the full exact pipeline.
// Every per-row computation is a pure function of that row, kernel values are
// computed through the same scatter-gather arithmetic as the exact block, and
// all charges/counters are aggregated from per-row integer counts in row
// order — so results AND accounting are byte-identical at any host-thread or
// device count, and fallback rows are byte-identical to kExact output.
Result<PredictResult> MpSvmPredictor::PredictCascade(
    const CsrMatrix& test, SimExecutor* executor,
    const PredictOptions& options) const {
  const MpSvmModel& model = *model_;
  const int k = model.num_classes;
  const int64_t n = test.rows();
  const int64_t pool = model.pool_size();
  const int num_pairs = model.num_pairs();
  if (k < 2 || model.svms.empty()) {
    return Status::FailedPrecondition("model is empty");
  }
  if (test.cols() != model.support_vectors.cols()) {
    return Status::InvalidArgument("test dimensionality mismatch with model");
  }

  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();

  PredictResult result;
  result.num_instances = n;
  result.num_classes = k;
  result.probabilities.assign(static_cast<size_t>(n) * k, 0.0);
  result.labels.assign(static_cast<size_t>(n), 0);
  if (n == 0) return result;

  executor->Transfer(kDefaultStream,
                     static_cast<double>(test.ByteSize() + model.ByteSize()),
                     TransferDirection::kHostToDevice);

  KernelComputer computer(&test, &model.support_vectors, model.kernel,
                          options.simd);
  const simd::SimdOps& ops = simd::OpsFor(options.simd);
  const CouplingOptions coupling = ResolveCoupling(options);

  // Elimination scan order: most discriminative pairs first; models without
  // cascade stats (v1 files) degrade to pair-index order. Stable sort breaks
  // score ties by pair index.
  std::vector<int32_t> order(static_cast<size_t>(num_pairs));
  std::iota(order.begin(), order.end(), 0);
  if (model.has_cascade_stats()) {
    std::stable_sort(order.begin(), order.end(),
                     [&model](int32_t a, int32_t b) {
                       return model.cascade[static_cast<size_t>(a)].score >
                              model.cascade[static_cast<size_t>(b)].score;
                     });
  }

  const int budget = options.cascade.budget > 0
                         ? std::min(options.cascade.budget, num_pairs)
                         : std::min(num_pairs, 4 * k);
  const double threshold = options.cascade.elimination_threshold;
  const double band = options.cascade.ambiguity_band;
  const bool force_exact_rows = band >= 1.0;

  // Tile size: same policy as the exact path (the kernel-row buffer is
  // tile x pool whether values arrive lazily or as one block).
  int64_t tile_rows = options.tile_rows;
  if (tile_rows <= 0) {
    const size_t free_bytes = executor->memory_budget() > executor->bytes_in_use()
                                  ? executor->memory_budget() - executor->bytes_in_use()
                                  : 0;
    tile_rows = static_cast<int64_t>(
        free_bytes / 4 / (sizeof(double) * std::max<int64_t>(1, pool)));
    tile_rows = std::clamp<int64_t>(tile_rows, 1, n);
  }

  const bool share = options.share_kernel_values;
  const bool use_cache = share && options.kernel_cache != nullptr && pool > 0;

  // Per-row accounting, aggregated serially after the parallel loop so that
  // charges and executor counters never depend on the thread partition.
  // Kernel-row work is carried as OpStats straight from
  // ComputeRowTargetsHost, so lazy rows charge flops/bytes exactly like the
  // batched paths do (satellite of the SIMD-tier change).
  struct RowCounters {
    OpStats elim_stats;      // elimination-stage kernel-row work
    int64_t elim_fresh = 0;  // kernel values computed in the elimination stage
    int64_t elim_refs = 0;   // SV references gathered in the elimination stage
    int64_t elim_evals = 0;  // binary evals (incl. survivor-clique completion)
    OpStats fb_stats;        // fallback: kernel-row completion work
    int64_t fb_fresh = 0;    // fallback: kernel values computed
    int64_t fb_refs = 0;     // fallback: SV references gathered
    int64_t coup_cube = 0;   // coupled subset size cubed (coupling flops)
    int64_t eliminated = 0;  // classes eliminated (non-fallback rows)
    uint8_t fallback = 0;
  };

  std::vector<double> kblock;     // tile x pool lazy kernel-row buffer
  std::vector<uint8_t> computed;  // which entries of kblock hold valid values
  std::vector<uint8_t> gmask;     // cache Gather hit mask (Commit contract)
  std::vector<int32_t> tile_ids;
  std::vector<RowCounters> rc;
  std::vector<Status> row_status;

  for (int64_t tile_begin = 0; tile_begin < n; tile_begin += tile_rows) {
    const int64_t tile_end = std::min(tile_begin + tile_rows, n);
    const int64_t tile = tile_end - tile_begin;
    tile_ids.resize(static_cast<size_t>(tile));
    std::iota(tile_ids.begin(), tile_ids.end(), static_cast<int32_t>(tile_begin));
    rc.assign(static_cast<size_t>(tile), RowCounters{});
    row_status.assign(static_cast<size_t>(tile), Status::OK());

    const double elim_t0 = executor->StreamTime(kDefaultStream);
    DeviceAllocation block_reservation;
    int64_t gathered = 0;
    if (share) {
      GMP_ASSIGN_OR_RETURN(
          block_reservation,
          executor->Allocate(static_cast<size_t>(tile * pool) * sizeof(double)));
      kblock.assign(static_cast<size_t>(tile * pool), 0.0);
      computed.assign(static_cast<size_t>(tile * pool), 0);
      if (use_cache) {
        // Serial Gather in row order, commits deferred to after the parallel
        // loop — cache traffic stays deterministic at any thread count.
        gmask.assign(static_cast<size_t>(tile * pool), 0);
        for (int64_t i = 0; i < tile; ++i) {
          const int32_t row_id = tile_ids[static_cast<size_t>(i)];
          const SparseRowView row{test.RowIndices(row_id),
                                  test.RowValues(row_id)};
          gathered += options.kernel_cache->Gather(
              row, {kblock.data() + i * pool, static_cast<size_t>(pool)},
              {gmask.data() + i * pool, static_cast<size_t>(pool)});
        }
        std::copy(gmask.begin(), gmask.end(), computed.begin());
      }
    }

    // Elimination + survivor coupling + per-row exact fallback. Rows write
    // disjoint slices of kblock/computed/result and their own counters slot.
    executor->HostParallelFor(
        tile, /*min_chunk=*/1, [&](int64_t begin, int64_t end) {
          std::vector<int32_t> pending;
          std::vector<double> fresh_vals;
          std::vector<double> ktmp;
          std::vector<double> rpair(static_cast<size_t>(num_pairs), 0.0);
          std::vector<uint8_t> rdone(static_cast<size_t>(num_pairs), 0);
          std::vector<double> loss(static_cast<size_t>(k), 0.0);
          std::vector<int32_t> cevals(static_cast<size_t>(k), 0);
          std::vector<uint8_t> alive(static_cast<size_t>(k), 1);
          std::vector<int32_t> survivors;
          std::vector<double> rsub, psub, rfull;

          for (int64_t i = begin; i < end; ++i) {
            const int32_t row_id = tile_ids[static_cast<size_t>(i)];
            RowCounters& c = rc[static_cast<size_t>(i)];
            double* krow = share ? kblock.data() + i * pool : nullptr;
            uint8_t* cmask = share ? computed.data() + i * pool : nullptr;

            // One binary SVM's decision value, computing missing kernel
            // values lazily (shared) or per evaluation (ablation). The
            // coefficient gather runs through the tier's canonical
            // gather-dot — the same tree as the exact path — and kernel-row
            // work is accumulated as OpStats from ComputeRowTargetsHost.
            const auto eval = [&](const BinarySvmEntry& svm, OpStats* stats,
                                  int64_t* fresh, int64_t* refs) -> double {
              const int64_t nsv = svm.num_svs();
              double acc = 0.0;
              if (share) {
                pending.clear();
                for (int64_t m = 0; m < nsv; ++m) {
                  const int32_t col = svm.sv_pool_index[static_cast<size_t>(m)];
                  if (cmask[col] == 0) {
                    pending.push_back(col);
                    cmask[col] = 1;
                  }
                }
                if (!pending.empty()) {
                  fresh_vals.resize(pending.size());
                  *stats += computer.ComputeRowTargetsHost(row_id, pending,
                                                           fresh_vals.data());
                  for (size_t j = 0; j < pending.size(); ++j) {
                    krow[pending[j]] = fresh_vals[j];
                  }
                  *fresh += static_cast<int64_t>(pending.size());
                }
                acc = ops.gather_dot(svm.sv_coef.data(),
                                     svm.sv_pool_index.data(), nsv, krow);
              } else {
                if (nsv > 0) {
                  ktmp.resize(static_cast<size_t>(nsv));
                  *stats += computer.ComputeRowTargetsHost(
                      row_id, svm.sv_pool_index, ktmp.data());
                  *fresh += nsv;
                }
                acc = ops.dot(svm.sv_coef.data(), ktmp.data(), nsv);
              }
              *refs += nsv;
              return svm.bias + acc;
            };

            // --- Elimination scan ---------------------------------------
            std::fill(loss.begin(), loss.end(), 0.0);
            std::fill(cevals.begin(), cevals.end(), 0);
            std::fill(alive.begin(), alive.end(), 1);
            std::fill(rdone.begin(), rdone.end(), 0);
            int alive_count = k;
            // A class dies only once its accumulated loss crosses the
            // threshold AND it is losing its evaluated pairs on average
            // (mean r against it above 0.5). The absolute threshold alone
            // would eliminate a class that wins every pair at modest
            // sigmoid confidence — e.g. r = 0.7 seven times accumulates
            // 2.1 loss while never losing a single comparison.
            const auto eliminated = [&](int cls) {
              return loss[static_cast<size_t>(cls)] >= threshold &&
                     2.0 * loss[static_cast<size_t>(cls)] >
                         static_cast<double>(cevals[static_cast<size_t>(cls)]);
            };
            for (int oi = 0;
                 oi < num_pairs && c.elim_evals < budget && alive_count > 1;
                 ++oi) {
              const int32_t pi = order[static_cast<size_t>(oi)];
              const BinarySvmEntry& svm = model.svms[static_cast<size_t>(pi)];
              if (alive[static_cast<size_t>(svm.class_s)] == 0 ||
                  alive[static_cast<size_t>(svm.class_t)] == 0) {
                continue;
              }
              const double v =
                  eval(svm, &c.elim_stats, &c.elim_fresh, &c.elim_refs);
              const double r = svm.sigmoid.Probability(v);
              rpair[static_cast<size_t>(pi)] = r;
              rdone[static_cast<size_t>(pi)] = 1;
              ++c.elim_evals;
              loss[static_cast<size_t>(svm.class_s)] += 1.0 - r;
              loss[static_cast<size_t>(svm.class_t)] += r;
              ++cevals[static_cast<size_t>(svm.class_s)];
              ++cevals[static_cast<size_t>(svm.class_t)];
              if (alive_count > 1 && eliminated(svm.class_s)) {
                alive[static_cast<size_t>(svm.class_s)] = 0;
                --alive_count;
              }
              if (alive_count > 1 &&
                  alive[static_cast<size_t>(svm.class_t)] != 0 &&
                  eliminated(svm.class_t)) {
                alive[static_cast<size_t>(svm.class_t)] = 0;
                --alive_count;
              }
            }

            // --- Survivor-clique coupling -------------------------------
            survivors.clear();
            for (int cls = 0; cls < k; ++cls) {
              if (alive[static_cast<size_t>(cls)] != 0) survivors.push_back(cls);
            }
            const int ks = static_cast<int>(survivors.size());
            double margin = 1.0;
            if (ks == 1) {
              psub.assign(1, 1.0);
              c.coup_cube += 1;
            } else {
              for (int a = 0; a < ks; ++a) {
                for (int b = a + 1; b < ks; ++b) {
                  const int pi = model.PairIndex(survivors[static_cast<size_t>(a)],
                                                 survivors[static_cast<size_t>(b)]);
                  if (rdone[static_cast<size_t>(pi)] != 0) continue;
                  const BinarySvmEntry& svm = model.svms[static_cast<size_t>(pi)];
                  const double v =
                      eval(svm, &c.elim_stats, &c.elim_fresh, &c.elim_refs);
                  rpair[static_cast<size_t>(pi)] = svm.sigmoid.Probability(v);
                  rdone[static_cast<size_t>(pi)] = 1;
                  ++c.elim_evals;
                }
              }
              rsub.assign(static_cast<size_t>(ks) * ks, 0.0);
              for (int a = 0; a < ks; ++a) {
                for (int b = a + 1; b < ks; ++b) {
                  const int pi = model.PairIndex(survivors[static_cast<size_t>(a)],
                                                 survivors[static_cast<size_t>(b)]);
                  const double r = rpair[static_cast<size_t>(pi)];
                  rsub[static_cast<size_t>(a) * ks + b] = r;
                  rsub[static_cast<size_t>(b) * ks + a] = 1.0 - r;
                }
              }
              Result<std::vector<double>> sub =
                  CoupleProbabilities(rsub, ks, coupling);
              if (!sub.ok()) {
                row_status[static_cast<size_t>(i)] = sub.status();
                continue;
              }
              psub = std::move(sub.value());
              c.coup_cube += static_cast<int64_t>(ks) * ks * ks;
              double top1 = -1.0, top2 = -1.0;
              for (double p : psub) {
                if (p > top1) {
                  top2 = top1;
                  top1 = p;
                } else if (p > top2) {
                  top2 = p;
                }
              }
              margin = top1 - top2;
            }

            double* out_row =
                result.probabilities.data() + (tile_begin + i) * k;
            if (margin < band || force_exact_rows) {
              // --- Exact fallback ---------------------------------------
              // Complete the kernel row, evaluate every pair, couple the
              // full k x k matrix — identical arithmetic to the exact path,
              // so these rows are byte-for-byte what kExact returns.
              c.fallback = 1;
              if (share) {
                pending.clear();
                for (int64_t col = 0; col < pool; ++col) {
                  if (cmask[col] == 0) {
                    pending.push_back(static_cast<int32_t>(col));
                    cmask[col] = 1;
                  }
                }
                if (!pending.empty()) {
                  fresh_vals.resize(pending.size());
                  c.fb_stats += computer.ComputeRowTargetsHost(
                      row_id, pending, fresh_vals.data());
                  for (size_t j = 0; j < pending.size(); ++j) {
                    krow[pending[j]] = fresh_vals[j];
                  }
                  c.fb_fresh += static_cast<int64_t>(pending.size());
                }
              }
              rfull.assign(static_cast<size_t>(k) * k, 0.0);
              for (const BinarySvmEntry& svm : model.svms) {
                const int64_t nsv = svm.num_svs();
                double v;
                if (share) {
                  v = svm.bias + ops.gather_dot(svm.sv_coef.data(),
                                                svm.sv_pool_index.data(), nsv,
                                                krow);
                  c.fb_refs += nsv;
                } else {
                  v = eval(svm, &c.fb_stats, &c.fb_fresh, &c.fb_refs);
                }
                const double prob_s = svm.sigmoid.Probability(v);
                rfull[static_cast<size_t>(svm.class_s) * k + svm.class_t] =
                    prob_s;
                rfull[static_cast<size_t>(svm.class_t) * k + svm.class_s] =
                    1.0 - prob_s;
              }
              Result<std::vector<double>> full =
                  CoupleProbabilities(rfull, k, coupling);
              if (!full.ok()) {
                row_status[static_cast<size_t>(i)] = full.status();
                continue;
              }
              c.coup_cube += static_cast<int64_t>(k) * k * k;
              std::copy(full.value().begin(), full.value().end(), out_row);
            } else {
              for (int a = 0; a < ks; ++a) {
                out_row[survivors[static_cast<size_t>(a)]] =
                    psub[static_cast<size_t>(a)];
              }
              c.eliminated = k - ks;
            }
            result.labels[static_cast<size_t>(tile_begin + i)] =
                static_cast<int32_t>(std::max_element(out_row, out_row + k) -
                                     out_row);
          }
        });

    for (const Status& status : row_status) {
      GMP_RETURN_NOT_OK(status);
    }

    // Aggregate counters in row order and charge the stages. The OpStats
    // sums replay the serial row order, so charges are invariant to the
    // thread partition.
    OpStats elim_stats, fb_stats;
    int64_t elim_fresh = 0, elim_refs = 0, elim_evals = 0;
    int64_t fb_fresh = 0, fb_refs = 0, fb_rows = 0;
    int64_t coup = 0, eliminated = 0;
    for (const RowCounters& c : rc) {
      elim_stats += c.elim_stats;
      elim_fresh += c.elim_fresh;
      elim_refs += c.elim_refs;
      elim_evals += c.elim_evals;
      fb_stats += c.fb_stats;
      fb_fresh += c.fb_fresh;
      fb_refs += c.fb_refs;
      fb_rows += c.fallback;
      coup += c.coup_cube;
      eliminated += c.eliminated;
    }
    result.cascade_rows += tile;
    result.cascade_pairs_evaluated += elim_evals;
    result.cascade_fallback_rows += fb_rows;
    result.cascade_classes_eliminated += eliminated;

    executor->counters().kernel_values_computed += elim_fresh + fb_fresh;
    // References served without a kernel evaluation — from this row's earlier
    // pairs or from the cross-model cache (cache hits reduce `fresh`, so
    // their references land here automatically).
    executor->counters().kernel_values_reused +=
        (elim_refs + fb_refs) - (elim_fresh + fb_fresh);

    {
      // Kernel-row work (dots + transforms) comes straight from the OpStats
      // the lazy rows accumulated — the same accounting the batched paths
      // use; the gather/sigmoid terms are charged on top.
      TaskCost cost;
      cost.parallel_items = tile;
      cost.flops = elim_stats.flops + 2.0 * static_cast<double>(elim_refs) +
                   10.0 * static_cast<double>(elim_evals);
      cost.bytes_read = elim_stats.bytes_read +
                        static_cast<double>(elim_refs) *
                            (sizeof(double) + sizeof(int32_t)) +
                        static_cast<double>(gathered) * sizeof(double);
      cost.bytes_written = elim_stats.bytes_written;
      executor->Charge(kDefaultStream, cost);
      result.phases.Add("elimination",
                        executor->StreamTime(kDefaultStream) - elim_t0);
    }
    if (fb_rows > 0) {
      const double t1 = executor->StreamTime(kDefaultStream);
      TaskCost dv;
      dv.parallel_items = fb_rows;
      dv.flops = fb_stats.flops + 2.0 * static_cast<double>(fb_refs);
      dv.bytes_read = fb_stats.bytes_read +
                      static_cast<double>(fb_refs) *
                          (sizeof(double) + sizeof(int32_t));
      dv.bytes_written = fb_stats.bytes_written;
      executor->Charge(kDefaultStream, dv);
      result.phases.Add("decision_values",
                        executor->StreamTime(kDefaultStream) - t1);

      const double t2 = executor->StreamTime(kDefaultStream);
      TaskCost sg;
      sg.parallel_items = fb_rows;
      sg.flops = 10.0 * static_cast<double>(fb_rows * num_pairs);
      sg.bytes_read = static_cast<double>(fb_rows * num_pairs) * sizeof(double);
      executor->Charge(kDefaultStream, sg);
      result.phases.Add("sigmoid", executor->StreamTime(kDefaultStream) - t2);
    }
    {
      const double t3 = executor->StreamTime(kDefaultStream);
      TaskCost cc;
      cc.parallel_items = tile;
      cc.flops = (2.0 / 3.0) * static_cast<double>(coup);
      cc.bytes_written = static_cast<double>(tile * k) * sizeof(double);
      executor->Charge(kDefaultStream, cc);
      result.phases.Add("coupling", executor->StreamTime(kDefaultStream) - t3);
    }

    if (use_cache) {
      // Only rows whose kernel row ended complete (fallback rows) may be
      // offered back — Commit's contract requires the full row. Serial, in
      // row order, for deterministic cache contents.
      for (int64_t i = 0; i < tile; ++i) {
        if (rc[static_cast<size_t>(i)].fallback == 0) continue;
        const int32_t row_id = tile_ids[static_cast<size_t>(i)];
        const SparseRowView row{test.RowIndices(row_id), test.RowValues(row_id)};
        options.kernel_cache->Commit(
            row, {kblock.data() + i * pool, static_cast<size_t>(pool)},
            {gmask.data() + i * pool, static_cast<size_t>(pool)});
      }
    }
    executor->SynchronizeAll();
  }

  result.sim_seconds = executor->NowSeconds() - sim_base;
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

Result<std::vector<double>> MpSvmPredictor::PredictOne(
    std::span<const int32_t> indices, std::span<const double> values,
    SimExecutor* executor, const PredictOptions& options) const {
  const SparseRowView row{indices, values};
  GMP_ASSIGN_OR_RETURN(PredictResult result,
                       PredictRows({&row, 1}, executor, options));
  std::vector<double> p(result.probabilities.begin(),
                        result.probabilities.begin() + model_->num_classes);
  return p;
}

}  // namespace gmpsvm
