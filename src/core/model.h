// The trained MP-SVM model: k(k-1)/2 binary SVMs with Platt sigmoids over a
// shared support-vector pool.
//
// Support-vector sharing (Section 3.3.3): a training instance can be a
// support vector in up to k-1 binary SVMs; the pool stores its features once
// and each binary SVM references it by pool index. This cuts model memory by
// up to a factor of (k-1) and — because prediction computes kernel values
// between test instances and *pool entries* — lets those kernel values be
// computed once and shared by every SVM that references the entry.

#ifndef GMPSVM_CORE_MODEL_H_
#define GMPSVM_CORE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "kernel/kernel_function.h"
#include "prob/platt.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {

// One trained binary SVM (pair (class_s, class_t), s < t; class s plays the
// +1 role as in LibSVM).
struct BinarySvmEntry {
  int class_s = 0;
  int class_t = 0;

  // Indices into the model's support-vector pool.
  std::vector<int32_t> sv_pool_index;

  // Dual coefficient y_i * alpha_i for each support vector.
  std::vector<double> sv_coef;

  // Bias b of the decision function (Equation 11).
  double bias = 0.0;

  // Platt sigmoid mapping decision values to P(class_s | {s,t}).
  SigmoidParams sigmoid;

  int64_t num_svs() const { return static_cast<int64_t>(sv_pool_index.size()); }
};

// Per-pair statistics driving the prediction-time class-elimination cascade
// (docs/cascade.md). `score` orders pairs most-discriminative-first for the
// elimination scan; the class priors are kept for introspection and tooling.
// Stamped at training time as a pure function of the dataset's class priors
// and the pair's Platt slope, so every trainer produces identical stats for
// the same data. Models serialized before v2 load with no stats; the cascade
// then scans pairs in index order.
struct PairCascadeStats {
  double score = 0.0;
  double prior_s = 0.0;
  double prior_t = 0.0;
};

struct MpSvmModel {
  int num_classes = 0;
  double c = 1.0;
  KernelParams kernel;

  // Shared support-vector pool. When sharing is disabled (ablation), each
  // SVM's vectors are appended without deduplication.
  CsrMatrix support_vectors;

  // Global dataset row id each pool entry came from (bookkeeping/tests).
  std::vector<int32_t> pool_source_rows;

  // Binary SVMs in pair order (0,1), (0,2), ..., (1,2), ...
  std::vector<BinarySvmEntry> svms;

  // Cascade statistics, parallel to `svms` when present (see
  // PairCascadeStats); empty for models loaded from v1 files.
  std::vector<PairCascadeStats> cascade;

  int num_pairs() const { return static_cast<int>(svms.size()); }
  int64_t pool_size() const { return support_vectors.rows(); }

  bool has_cascade_stats() const {
    return !svms.empty() && cascade.size() == svms.size();
  }

  // Total support-vector references across SVMs (>= pool_size when shared).
  int64_t total_sv_references() const {
    int64_t total = 0;
    for (const auto& svm : svms) total += svm.num_svs();
    return total;
  }

  // Model memory footprint (pool features + coefficients + indices).
  size_t ByteSize() const {
    size_t bytes = support_vectors.ByteSize();
    for (const auto& svm : svms) {
      bytes += svm.sv_pool_index.size() * sizeof(int32_t) +
               svm.sv_coef.size() * sizeof(double);
    }
    return bytes;
  }

  // Index of the pair (s, t), s < t, in `svms`.
  int PairIndex(int s, int t) const {
    // Pairs are enumerated (0,1)...(0,k-1),(1,2)...: offset(s) = s*k - s(s+3)/2 - 1.
    return s * num_classes - s * (s + 3) / 2 + t - 1;
  }
};

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_MODEL_H_
