// Text serialization for MpSvmModel, in the spirit of LibSVM model files
// but with the shared support-vector pool stored once and referenced by
// index from each binary SVM.

#ifndef GMPSVM_CORE_MODEL_IO_H_
#define GMPSVM_CORE_MODEL_IO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/model.h"

namespace gmpsvm {

// Serializes the model to its text format.
std::string SerializeModel(const MpSvmModel& model);

// Parses a model from text; validates structure and index ranges.
Result<MpSvmModel> DeserializeModel(const std::string& text);

// File wrappers.
Status SaveModel(const MpSvmModel& model, const std::string& path);
Result<MpSvmModel> LoadModel(const std::string& path);

// --- Training checkpoints ---------------------------------------------------
//
// A checkpoint directory holds one file per completed binary SVM pair plus a
// manifest listing the completed pairs and a fingerprint of (dataset,
// options). On resume the trainer verifies the fingerprint, loads the
// completed pairs, and trains only the remainder; because every numeric value
// round-trips through "%.17g"-precision text exactly, a resumed run produces
// a byte-identical model to an uninterrupted one.
//
// All parse failures return kInvalidArgument (corrupt checkpoints are caller
// data errors, not I/O errors) and never crash on truncated or hostile input.

// The distilled result of one trained binary SVM, independent of solver
// internals: enough to rebuild the model entry without retraining.
struct PairCheckpoint {
  int class_s = 0;
  int class_t = 0;
  double bias = 0.0;
  SigmoidParams sigmoid;
  // Pair trained but exhausted its retries under the skip-degraded policy:
  // a neutral entry (no SVs, p = 0.5). Degraded pairs are re-trained on
  // resume rather than loaded.
  bool degraded = false;
  std::vector<int32_t> sv_rows;  // global dataset rows of the SVs
  std::vector<double> sv_coef;   // alpha_i * y_i, parallel to sv_rows
};

std::string SerializePairCheckpoint(const PairCheckpoint& pair);
Result<PairCheckpoint> ParsePairCheckpoint(const std::string& text);

struct CheckpointManifest {
  // FNV-1a over the training configuration + dataset shape/labels; a resume
  // against different data or options is rejected.
  uint64_t fingerprint = 0;
  int num_classes = 0;
  // Completed (s, t) pairs, in completion order.
  std::vector<std::pair<int, int>> completed;
};

std::string SerializeCheckpointManifest(const CheckpointManifest& manifest);
Result<CheckpointManifest> ParseCheckpointManifest(const std::string& text);

// File name for pair (s, t) inside a checkpoint directory, and the manifest's
// file name.
std::string PairCheckpointFileName(int class_s, int class_t);
inline const char* kCheckpointManifestFileName = "manifest.ckpt";

// File wrappers (parse failures stay kInvalidArgument; open/write failures
// are kIoError).
Status SavePairCheckpoint(const PairCheckpoint& pair, const std::string& path);
Result<PairCheckpoint> LoadPairCheckpoint(const std::string& path);
Status SaveCheckpointManifest(const CheckpointManifest& manifest,
                              const std::string& path);
Result<CheckpointManifest> LoadCheckpointManifest(const std::string& path);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_MODEL_IO_H_
