// Text serialization for MpSvmModel, in the spirit of LibSVM model files
// but with the shared support-vector pool stored once and referenced by
// index from each binary SVM.

#ifndef GMPSVM_CORE_MODEL_IO_H_
#define GMPSVM_CORE_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "core/model.h"

namespace gmpsvm {

// Serializes the model to its text format.
std::string SerializeModel(const MpSvmModel& model);

// Parses a model from text; validates structure and index ranges.
Result<MpSvmModel> DeserializeModel(const std::string& text);

// File wrappers.
Status SaveModel(const MpSvmModel& model, const std::string& path);
Result<MpSvmModel> LoadModel(const std::string& path);

}  // namespace gmpsvm

#endif  // GMPSVM_CORE_MODEL_IO_H_
