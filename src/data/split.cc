#include "data/split.h"

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"

namespace gmpsvm {

Result<Dataset> SubsetDataset(const Dataset& dataset,
                              const std::vector<int32_t>& rows) {
  if (rows.empty()) return Status::InvalidArgument("empty row subset");
  std::vector<int32_t> labels;
  labels.reserve(rows.size());
  for (int32_t r : rows) {
    if (r < 0 || r >= dataset.size()) {
      return Status::InvalidArgument(StrPrintf("row %d out of range", r));
    }
    labels.push_back(dataset.labels()[static_cast<size_t>(r)]);
  }
  return Dataset::Create(dataset.features().SelectRows(rows), std::move(labels),
                         dataset.num_classes(), dataset.name());
}

Result<TrainTestSplit> StratifiedSplit(const Dataset& dataset, double test_fraction,
                                       uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  Rng rng(seed);
  std::vector<int32_t> train_rows, test_rows;
  for (int c = 0; c < dataset.num_classes(); ++c) {
    std::vector<int32_t> rows = dataset.ClassRows(c);
    rng.Shuffle(&rows);
    // At least one row of each class on each side when possible.
    int64_t test_count = static_cast<int64_t>(
        static_cast<double>(rows.size()) * test_fraction + 0.5);
    test_count = std::clamp<int64_t>(test_count, rows.size() > 1 ? 1 : 0,
                                     static_cast<int64_t>(rows.size()) - 1);
    for (size_t i = 0; i < rows.size(); ++i) {
      (static_cast<int64_t>(i) < test_count ? test_rows : train_rows)
          .push_back(rows[i]);
    }
  }
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(test_rows.begin(), test_rows.end());

  TrainTestSplit split;
  GMP_ASSIGN_OR_RETURN(split.train, SubsetDataset(dataset, train_rows));
  GMP_ASSIGN_OR_RETURN(split.test, SubsetDataset(dataset, test_rows));
  split.train_rows = std::move(train_rows);
  split.test_rows = std::move(test_rows);
  return split;
}

Result<std::vector<std::vector<int32_t>>> StratifiedFolds(const Dataset& dataset,
                                                          int folds, uint64_t seed) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (folds > dataset.size()) {
    return Status::InvalidArgument("more folds than instances");
  }
  Rng rng(seed);
  std::vector<std::vector<int32_t>> out(static_cast<size_t>(folds));
  for (int c = 0; c < dataset.num_classes(); ++c) {
    std::vector<int32_t> rows = dataset.ClassRows(c);
    rng.Shuffle(&rows);
    for (size_t i = 0; i < rows.size(); ++i) {
      out[i % static_cast<size_t>(folds)].push_back(rows[i]);
    }
  }
  for (auto& fold : out) std::sort(fold.begin(), fold.end());
  return out;
}

}  // namespace gmpsvm
