// Feature scaling, equivalent to LibSVM's svm-scale: fit a per-feature
// linear map on the training set, apply the same map to test data. RBF-kernel
// SVMs are sensitive to feature ranges, so this is part of any real SVM
// workflow.

#ifndef GMPSVM_DATA_SCALE_H_
#define GMPSVM_DATA_SCALE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {

// Per-feature linear transform x' = (x - offset) * factor. Features never
// seen during Fit pass through unchanged. Zero entries stay zero (sparse
// semantics, matching svm-scale's treatment of missing features).
class FeatureScaler {
 public:
  enum class Mode {
    kMinMax,   // map observed [min, max] to [lo, hi] (svm-scale default)
    kStdDev,   // zero-mean-of-nonzeros, unit variance
  };

  // Fits scaling parameters on `data`'s nonzero entries.
  static Result<FeatureScaler> Fit(const CsrMatrix& data, Mode mode,
                                   double lo = -1.0, double hi = 1.0);

  // Applies the fitted transform (nonzero entries only).
  CsrMatrix Apply(const CsrMatrix& data) const;

  Mode mode() const { return mode_; }
  int64_t dim() const { return static_cast<int64_t>(offset_.size()); }

 private:
  Mode mode_ = Mode::kMinMax;
  std::vector<double> offset_;
  std::vector<double> factor_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_DATA_SCALE_H_
