// Reader/writer for the LibSVM sparse text format:
//   <label> <index>:<value> <index>:<value> ...
// with 1-based, strictly increasing feature indices. The reader remaps
// arbitrary integer labels onto [0, k) and records the mapping so models can
// report the original labels.

#ifndef GMPSVM_DATA_LIBSVM_IO_H_
#define GMPSVM_DATA_LIBSVM_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace gmpsvm {

struct LibsvmFile {
  Dataset dataset;
  // Original label value for each class id (class id = position).
  std::vector<int32_t> label_values;
};

// Parses a LibSVM-format file. `min_dim` pads the feature space (useful when
// train/test files disagree on the max index).
Result<LibsvmFile> ReadLibsvmFile(const std::string& path, int64_t min_dim = 0);

// Parses LibSVM-format text from a string (testing and embedding).
Result<LibsvmFile> ParseLibsvm(const std::string& content, int64_t min_dim = 0,
                               const std::string& name = "");

// Writes a dataset in LibSVM format; labels are written as the dataset's
// class ids unless `label_values` supplies originals.
Status WriteLibsvmFile(const std::string& path, const Dataset& dataset,
                       const std::vector<int32_t>& label_values = {});

}  // namespace gmpsvm

#endif  // GMPSVM_DATA_LIBSVM_IO_H_
