#include "data/libsvm_io.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace gmpsvm {
namespace {

Result<LibsvmFile> ParseLines(std::istream& in, int64_t min_dim,
                              const std::string& name) {
  CsrBuilder builder(0);  // columns fixed after the scan; rebuild at the end
  std::vector<std::vector<int32_t>> row_indices;
  std::vector<std::vector<double>> row_values;
  std::vector<int32_t> raw_labels;
  int64_t max_index = 0;

  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text = StripWhitespace(line);
    if (text.empty() || text.front() == '#') continue;
    const auto tokens = SplitTokens(text, " \t");
    // First token: label.
    int32_t label = 0;
    {
      const auto tok = tokens[0];
      double label_value = 0;
      // Labels may be written as floats ("1.0"); parse as double and round.
      char* end = nullptr;
      std::string buf(tok);
      errno = 0;
      label_value = std::strtod(buf.c_str(), &end);
      if (end != buf.c_str() + buf.size() || errno != 0) {
        return Status::IoError(
            StrPrintf("line %lld: bad label '%s'", static_cast<long long>(line_no),
                      buf.c_str()));
      }
      label = static_cast<int32_t>(label_value >= 0 ? label_value + 0.5
                                                    : label_value - 0.5);
    }
    std::vector<int32_t> indices;
    std::vector<double> values;
    int32_t prev_index = 0;
    for (size_t t = 1; t < tokens.size(); ++t) {
      const auto kv = SplitTokens(tokens[t], ":");
      if (kv.size() != 2) {
        return Status::IoError(StrPrintf("line %lld: bad feature token",
                                         static_cast<long long>(line_no)));
      }
      int32_t index = 0;
      auto [iptr, iec] = std::from_chars(kv[0].data(), kv[0].data() + kv[0].size(),
                                         index);
      if (iec != std::errc() || iptr != kv[0].data() + kv[0].size() || index <= 0 ||
          index <= prev_index) {
        return Status::IoError(
            StrPrintf("line %lld: bad or unsorted feature index",
                      static_cast<long long>(line_no)));
      }
      prev_index = index;
      std::string vbuf(kv[1]);
      char* vend = nullptr;
      errno = 0;
      const double value = std::strtod(vbuf.c_str(), &vend);
      if (vend != vbuf.c_str() + vbuf.size() || errno != 0) {
        return Status::IoError(StrPrintf("line %lld: bad feature value",
                                         static_cast<long long>(line_no)));
      }
      indices.push_back(index - 1);  // to 0-based
      values.push_back(value);
      max_index = std::max<int64_t>(max_index, index);
    }
    raw_labels.push_back(label);
    row_indices.push_back(std::move(indices));
    row_values.push_back(std::move(values));
  }

  const int64_t dim = std::max(max_index, min_dim);
  CsrBuilder final_builder(dim);
  for (size_t r = 0; r < row_indices.size(); ++r) {
    final_builder.AddRow(row_indices[r], row_values[r]);
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix features, final_builder.Finish());

  // Remap labels to [0, k) in order of first appearance — LibSVM's rule.
  std::vector<int32_t> label_values;
  std::map<int32_t, int32_t> label_map;
  std::vector<int32_t> labels;
  labels.reserve(raw_labels.size());
  for (int32_t raw : raw_labels) {
    auto it = label_map.find(raw);
    if (it == label_map.end()) {
      it = label_map.emplace(raw, static_cast<int32_t>(label_values.size())).first;
      label_values.push_back(raw);
    }
    labels.push_back(it->second);
  }

  GMP_ASSIGN_OR_RETURN(Dataset dataset,
                       Dataset::Create(std::move(features), std::move(labels),
                                       static_cast<int>(label_values.size()), name));
  return LibsvmFile{std::move(dataset), std::move(label_values)};
}

}  // namespace

Result<LibsvmFile> ReadLibsvmFile(const std::string& path, int64_t min_dim) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ParseLines(in, min_dim, path);
}

Result<LibsvmFile> ParseLibsvm(const std::string& content, int64_t min_dim,
                               const std::string& name) {
  std::istringstream in(content);
  return ParseLines(in, min_dim, name);
}

Status WriteLibsvmFile(const std::string& path, const Dataset& dataset,
                       const std::vector<int32_t>& label_values) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const CsrMatrix& x = dataset.features();
  for (int64_t r = 0; r < x.rows(); ++r) {
    const int32_t cls = dataset.labels()[static_cast<size_t>(r)];
    const int32_t label =
        label_values.empty() ? cls : label_values[static_cast<size_t>(cls)];
    out << label;
    const auto idx = x.RowIndices(r);
    const auto val = x.RowValues(r);
    for (size_t p = 0; p < idx.size(); ++p) {
      out << ' ' << (idx[p] + 1) << ':' << val[p];
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace gmpsvm
