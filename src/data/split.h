// Dataset splitting utilities: stratified train/test splits and k-fold
// partitions. Used by the cross-validation driver and by downstream users
// who bring a single LibSVM file.

#ifndef GMPSVM_DATA_SPLIT_H_
#define GMPSVM_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace gmpsvm {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
  // Original row ids of each part (for tracing predictions back).
  std::vector<int32_t> train_rows;
  std::vector<int32_t> test_rows;
};

// Stratified split: each class contributes ~test_fraction of its rows to the
// test part, preserving class balance. Deterministic given `seed`.
Result<TrainTestSplit> StratifiedSplit(const Dataset& dataset, double test_fraction,
                                       uint64_t seed);

// Stratified k-fold partition: returns `folds` row-id lists whose union is
// all rows, each with ~1/folds of every class.
Result<std::vector<std::vector<int32_t>>> StratifiedFolds(const Dataset& dataset,
                                                          int folds, uint64_t seed);

// Builds a Dataset from a row subset (preserving the parent's class count).
Result<Dataset> SubsetDataset(const Dataset& dataset,
                              const std::vector<int32_t>& rows);

}  // namespace gmpsvm

#endif  // GMPSVM_DATA_SPLIT_H_
