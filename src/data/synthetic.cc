#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/string_util.h"

namespace gmpsvm {
namespace {

// Draws `count` distinct feature ids from [0, dim).
std::vector<int32_t> SampleSupport(Rng* rng, int64_t dim, int64_t count) {
  count = std::min(count, dim);
  std::vector<int32_t> all(static_cast<size_t>(dim));
  std::iota(all.begin(), all.end(), 0);
  rng->Shuffle(&all);
  all.resize(static_cast<size_t>(count));
  std::sort(all.begin(), all.end());
  return all;
}

Result<Dataset> GenerateImpl(const SyntheticSpec& spec, int64_t rows,
                             uint64_t seed_stream) {
  if (spec.num_classes < 2 || rows < spec.num_classes || spec.dim < 1) {
    return Status::InvalidArgument("bad synthetic spec: " + spec.name);
  }
  if (spec.density <= 0.0 || spec.density > 1.0) {
    return Status::InvalidArgument("density must be in (0, 1]: " + spec.name);
  }
  Rng root(spec.seed);
  // Class structure comes from the spec seed only, so train and test sets
  // share centers; instance noise comes from the per-set stream.
  Rng structure = root.Fork(0);
  Rng noise = root.Fork(seed_stream);

  const int k = spec.num_classes;
  const int64_t dim = spec.dim;
  // A single support set SHARED by all classes: the nonzero pattern then
  // carries no class signal, so separability is controlled purely by the
  // center distance (the `separation` knob maps onto Bayes error). A
  // superset of the expected per-instance support so instances vary.
  const int64_t support_size =
      std::min(dim, std::max<int64_t>(2, static_cast<int64_t>(
                                             std::ceil(dim * spec.density * 1.5))));
  const double keep_prob =
      std::min(1.0, spec.density * static_cast<double>(dim) /
                        static_cast<double>(support_size));
  const std::vector<int32_t> support = SampleSupport(&structure, dim, support_size);

  std::vector<std::vector<double>> centers(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    centers[static_cast<size_t>(c)].resize(support.size());
    for (double& v : centers[static_cast<size_t>(c)]) {
      v = structure.Normal() * spec.separation;
    }
  }

  // Generate raw rows (balanced classes, shuffled order).
  std::vector<int32_t> labels(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int32_t>(i % k);
  }
  noise.Shuffle(&labels);

  std::vector<std::vector<int32_t>> row_idx(static_cast<size_t>(rows));
  std::vector<std::vector<double>> row_val(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    // Features are drawn from the TRUE class; label noise flips only the
    // recorded label, as real annotation errors do.
    const int c = labels[static_cast<size_t>(i)];
    if (spec.label_noise > 0.0 && noise.Bernoulli(spec.label_noise)) {
      const int flipped =
          static_cast<int>(noise.UniformInt(static_cast<uint64_t>(k - 1)));
      labels[static_cast<size_t>(i)] =
          static_cast<int32_t>(flipped >= c ? flipped + 1 : flipped);
    }
    const auto& center = centers[static_cast<size_t>(c)];
    auto& idx = row_idx[static_cast<size_t>(i)];
    auto& val = row_val[static_cast<size_t>(i)];
    for (size_t p = 0; p < support.size(); ++p) {
      if (!noise.Bernoulli(keep_prob)) continue;
      idx.push_back(support[p]);
      val.push_back(center[p] + noise.Normal());
    }
    if (idx.empty()) {  // guarantee at least one feature
      const size_t p = static_cast<size_t>(noise.UniformInt(support.size()));
      idx.push_back(support[p]);
      val.push_back(center[p] + noise.Normal());
    }
  }

  // Rescale so gamma * E||x_i - x_j||^2 ~= 1 under the paper's gamma, using
  // the structural (not per-set) RNG so train/test share the factor exactly.
  double msd = 0.0;
  const int kPairsSampled = 256;
  {
    // Mean squared distance from sampled pairs via dense scatter.
    std::vector<double> buf(static_cast<size_t>(dim), 0.0);
    Rng pair_rng = root.Fork(999);
    for (int s = 0; s < kPairsSampled; ++s) {
      const size_t a = static_cast<size_t>(pair_rng.UniformInt(
          static_cast<uint64_t>(rows)));
      const size_t b = static_cast<size_t>(pair_rng.UniformInt(
          static_cast<uint64_t>(rows)));
      for (size_t p = 0; p < row_idx[a].size(); ++p) {
        buf[static_cast<size_t>(row_idx[a][p])] += row_val[a][p];
      }
      for (size_t p = 0; p < row_idx[b].size(); ++p) {
        buf[static_cast<size_t>(row_idx[b][p])] -= row_val[b][p];
      }
      double d2 = 0.0;
      for (size_t p = 0; p < row_idx[a].size(); ++p) {
        const double v = buf[static_cast<size_t>(row_idx[a][p])];
        d2 += v * v;
        buf[static_cast<size_t>(row_idx[a][p])] = 0.0;
      }
      for (size_t p = 0; p < row_idx[b].size(); ++p) {
        const double v = buf[static_cast<size_t>(row_idx[b][p])];
        d2 += v * v;
        buf[static_cast<size_t>(row_idx[b][p])] = 0.0;
      }
      msd += d2;
    }
    msd /= kPairsSampled;
  }
  const double target = 1.0 / std::max(spec.gamma, 1e-12);
  const double rescale = msd > 0 ? std::sqrt(target / msd) : 1.0;

  CsrBuilder builder(dim);
  for (int64_t i = 0; i < rows; ++i) {
    for (double& v : row_val[static_cast<size_t>(i)]) v *= rescale;
    builder.AddRow(row_idx[static_cast<size_t>(i)], row_val[static_cast<size_t>(i)]);
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix features, builder.Finish());
  return Dataset::Create(std::move(features), std::move(labels), k, spec.name);
}

SyntheticSpec MakeSpec(const std::string& name, int k, int64_t card,
                       int64_t paper_card, int64_t dim, int64_t paper_dim,
                       double density, double separation, double c, double gamma,
                       uint64_t seed, double label_noise = 0.0) {
  SyntheticSpec s;
  s.name = name;
  s.num_classes = k;
  s.cardinality = card;
  s.paper_cardinality = paper_card;
  s.dim = dim;
  s.paper_dim = paper_dim;
  s.density = density;
  s.separation = separation;
  s.c = c;
  s.gamma = gamma;
  s.seed = seed;
  s.label_noise = label_noise;
  return s;
}

}  // namespace

std::vector<SyntheticSpec> PaperDatasetSpecs(double scale) {
  const auto sc = [scale](int64_t card) {
    return std::max<int64_t>(60, static_cast<int64_t>(card * scale));
  };
  std::vector<SyntheticSpec> specs;
  // Separation and label-noise are calibrated so each proxy's error rates
  // land near the paper's Table 4 regime (Adult hard at ~17-19% test error,
  // the web/text binaries clean, MNIST ~10%, News20 ~16%); calibration notes
  // in EXPERIMENTS.md.
  // Binary datasets (Table 2, first four).
  specs.push_back(MakeSpec("Adult", 2, sc(3000), 32561, 123, 123, 0.12, 0.58,
                           100.0, 0.5, 101, 0.03));
  specs.push_back(MakeSpec("RCV1", 2, sc(2000), 20242, 4000, 47236, 0.019, 0.30,
                           100.0, 0.125, 102, 0.001));
  specs.push_back(MakeSpec("Real-sim", 2, sc(3000), 72309, 2000, 20958, 0.025,
                           0.52, 4.0, 0.5, 103, 0.003));
  specs.push_back(MakeSpec("Webdata", 2, sc(3000), 49749, 300, 300, 0.04, 1.6,
                           10.0, 0.5, 104, 0.005));
  // Multi-class datasets.
  specs.push_back(MakeSpec("CIFAR-10", 10, sc(2500), 50000, 512, 3072, 1.0, 0.22,
                           10.0, 0.002, 105, 0.003));
  specs.push_back(MakeSpec("Connect-4", 3, sc(3000), 67557, 126, 126, 0.33, 0.8,
                           1.0, 0.3, 106, 0.04));
  specs.push_back(MakeSpec("MNIST", 10, sc(3000), 60000, 256, 780, 0.25, 0.42,
                           10.0, 0.125, 107));
  specs.push_back(MakeSpec("MNIST8M", 10, sc(8000), 8100000, 256, 784, 0.25,
                           2.3, 1000.0, 0.006, 108));
  specs.push_back(MakeSpec("News20", 20, sc(2000), 15935, 5000, 62061, 0.016,
                           0.42, 4.0, 0.5, 109, 0.02));
  return specs;
}

Result<SyntheticSpec> FindPaperSpec(const std::string& name, double scale) {
  for (auto& spec : PaperDatasetSpecs(scale)) {
    if (spec.name == name) return spec;
  }
  return Status::InvalidArgument("unknown paper dataset: " + name);
}

Result<Dataset> GenerateSynthetic(const SyntheticSpec& spec) {
  return GenerateImpl(spec, spec.cardinality, /*seed_stream=*/1);
}

Result<Dataset> GenerateSyntheticTest(const SyntheticSpec& spec) {
  const int64_t rows = spec.test_cardinality > 0
                           ? spec.test_cardinality
                           : std::max<int64_t>(spec.num_classes, spec.cardinality / 5);
  return GenerateImpl(spec, rows, /*seed_stream=*/2);
}

}  // namespace gmpsvm
