#include "data/scale.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gmpsvm {

Result<FeatureScaler> FeatureScaler::Fit(const CsrMatrix& data, Mode mode,
                                         double lo, double hi) {
  if (data.rows() == 0) return Status::InvalidArgument("empty matrix");
  if (mode == Mode::kMinMax && lo >= hi) {
    return Status::InvalidArgument("lo must be < hi");
  }
  const size_t dim = static_cast<size_t>(data.cols());

  FeatureScaler scaler;
  scaler.mode_ = mode;
  scaler.offset_.assign(dim, 0.0);
  scaler.factor_.assign(dim, 1.0);

  if (mode == Mode::kMinMax) {
    std::vector<double> fmin(dim, std::numeric_limits<double>::infinity());
    std::vector<double> fmax(dim, -std::numeric_limits<double>::infinity());
    for (int64_t r = 0; r < data.rows(); ++r) {
      const auto idx = data.RowIndices(r);
      const auto val = data.RowValues(r);
      for (size_t p = 0; p < idx.size(); ++p) {
        fmin[static_cast<size_t>(idx[p])] =
            std::min(fmin[static_cast<size_t>(idx[p])], val[p]);
        fmax[static_cast<size_t>(idx[p])] =
            std::max(fmax[static_cast<size_t>(idx[p])], val[p]);
      }
    }
    for (size_t f = 0; f < dim; ++f) {
      if (!std::isfinite(fmin[f]) || fmax[f] == fmin[f]) continue;  // unseen/const
      scaler.offset_[f] = fmin[f] - lo * (fmax[f] - fmin[f]) / (hi - lo);
      scaler.factor_[f] = (hi - lo) / (fmax[f] - fmin[f]);
    }
  } else {
    std::vector<double> sum(dim, 0.0), sumsq(dim, 0.0);
    std::vector<int64_t> count(dim, 0);
    for (int64_t r = 0; r < data.rows(); ++r) {
      const auto idx = data.RowIndices(r);
      const auto val = data.RowValues(r);
      for (size_t p = 0; p < idx.size(); ++p) {
        const size_t f = static_cast<size_t>(idx[p]);
        sum[f] += val[p];
        sumsq[f] += val[p] * val[p];
        ++count[f];
      }
    }
    for (size_t f = 0; f < dim; ++f) {
      if (count[f] < 2) continue;
      const double mean = sum[f] / static_cast<double>(count[f]);
      const double var =
          std::max(0.0, sumsq[f] / static_cast<double>(count[f]) - mean * mean);
      if (var <= 0) continue;
      scaler.offset_[f] = mean;
      scaler.factor_[f] = 1.0 / std::sqrt(var);
    }
  }
  return scaler;
}

CsrMatrix FeatureScaler::Apply(const CsrMatrix& data) const {
  CsrBuilder builder(data.cols());
  std::vector<int32_t> idx;
  std::vector<double> val;
  for (int64_t r = 0; r < data.rows(); ++r) {
    const auto row_idx = data.RowIndices(r);
    const auto row_val = data.RowValues(r);
    idx.clear();
    val.clear();
    for (size_t p = 0; p < row_idx.size(); ++p) {
      const size_t f = static_cast<size_t>(row_idx[p]);
      double v = row_val[p];
      if (f < offset_.size()) v = (v - offset_[f]) * factor_[f];
      if (v == 0.0) continue;  // preserve sparsity after mapping
      idx.push_back(row_idx[p]);
      val.push_back(v);
    }
    builder.AddRow(idx, val);
  }
  return ValueOrDie(builder.Finish());
}

}  // namespace gmpsvm
