// Synthetic proxies for the paper's nine evaluation datasets (Table 2).
//
// The originals (Adult ... MNIST8M, News20) are multi-gigabyte downloads not
// available offline, so — per the substitution policy in DESIGN.md — each is
// replaced by a generator matching the properties the algorithms are
// sensitive to: number of classes (=> number of pairwise SVMs and sharing
// opportunity), dimensionality and sparsity (=> kernel-row cost), class
// balance, and separability (=> iteration counts and support-vector counts).
// Cardinality and, for the high-dimensional sets, dimensionality are scaled
// down by the documented per-dataset factors so the full benchmark suite
// runs on one host; the paper's C and gamma hyper-parameters are kept, and
// the generator rescales feature magnitudes so gamma * E||x_i - x_j||^2 is
// O(1) — the regime the paper's settings put the real data in.

#ifndef GMPSVM_DATA_SYNTHETIC_H_
#define GMPSVM_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace gmpsvm {

struct SyntheticSpec {
  std::string name;
  int num_classes = 2;

  // Rows to generate and the original's cardinality (documentation).
  int64_t cardinality = 1000;
  int64_t paper_cardinality = 0;

  // Feature-space size here and in the original.
  int64_t dim = 100;
  int64_t paper_dim = 0;

  // Expected fraction of nonzero features per instance.
  double density = 1.0;

  // Class separability: ~0.5 heavily overlapped, >2 nearly separable.
  double separation = 1.2;

  // Fraction of instances whose label is flipped to a random other class
  // (models intrinsic label noise; lifts training error at high C).
  double label_noise = 0.0;

  // Paper hyper-parameters (Table 2).
  double c = 1.0;
  double gamma = 0.5;

  uint64_t seed = 1;

  // Test set size used for prediction benchmarks.
  int64_t test_cardinality = 0;  // 0 = cardinality / 5

  bool IsBinary() const { return num_classes == 2; }
};

// The nine Table-2 proxies. `scale` multiplies every cardinality (1.0 =
// default bench scale, documented per dataset in the spec comments).
std::vector<SyntheticSpec> PaperDatasetSpecs(double scale = 1.0);

// Looks up a spec by (case-sensitive) dataset name.
Result<SyntheticSpec> FindPaperSpec(const std::string& name, double scale = 1.0);

// Generates the training dataset for a spec.
Result<Dataset> GenerateSynthetic(const SyntheticSpec& spec);

// Generates a held-out test set drawn from the same distribution
// (independent seed stream).
Result<Dataset> GenerateSyntheticTest(const SyntheticSpec& spec);

}  // namespace gmpsvm

#endif  // GMPSVM_DATA_SYNTHETIC_H_
