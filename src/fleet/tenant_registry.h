// TenantRegistry: per-tenant model namespaces over the serving
// ModelRegistry.
//
// Each tenant owns a versioned model chain: AddTenant registers version 1
// and SwapModel pushes version n+1 through the registry's validator gate
// (and, under fault injection, the kModelSwap site). A rejected swap leaves
// the previous version serving — the single-model hot-swap/rollback
// contract, applied per tenant. Tenant models live under namespaced keys
// ("tenant:<name>"), so they can never collide with models registered
// directly on the underlying registry.

#ifndef GMPSVM_FLEET_TENANT_REGISTRY_H_
#define GMPSVM_FLEET_TENANT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/predictor.h"
#include "fleet/quota.h"
#include "serve/model_registry.h"

namespace gmpsvm::fleet {

struct TenantSpec {
  std::string name;

  // Load-shedding priority: under fleet overload, lower priorities are shed
  // first (0 sheds earliest). Negative values are invalid.
  int priority = 0;

  // Admission quota; rate <= 0 means unlimited.
  QuotaSpec quota;

  // Expected traffic share, informational (workload generators and config
  // files use it to weight tenants).
  double weight = 1.0;

  // Per-tenant PredictOptions override: every batch of this tenant's
  // requests runs with these options instead of the fleet-wide defaults
  // (decision rule, cascade mode/knobs, coupling — the whole struct).
  // Validated at registration, so a tenant can never be created with options
  // its batches would reject at predict time.
  std::optional<PredictOptions> predict;
};

class TenantRegistry {
 public:
  TenantRegistry() = default;

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // The registry key tenant `name`'s models live under.
  static std::string ModelKey(const std::string& name);

  // Creates the tenant and registers `model` as its version 1. Fails with
  // kInvalidArgument on a malformed spec (empty name, whitespace or ':' in
  // the name, negative priority) or a model the validator rejects, and
  // kFailedPrecondition when the tenant already exists. The tenant is not
  // created if the model is rejected.
  Result<int64_t> AddTenant(const TenantSpec& spec, MpSvmModel model);

  // Hot-swaps the tenant's model through the validator/rollback gate (and
  // the kModelSwap fault site when an injector is attached). Returns the new
  // version; on rejection the previous version keeps serving.
  Result<int64_t> SwapModel(const std::string& name, MpSvmModel model);

  Result<TenantSpec> GetSpec(const std::string& name) const;

  // Snapshot of the tenant's current model.
  Result<ModelHandle> GetModel(const std::string& name) const;

  // Removes the tenant and its registered model; in-flight handles stay
  // valid. Returns whether the tenant existed.
  bool RemoveTenant(const std::string& name);

  // Tenant names, sorted.
  std::vector<std::string> Tenants() const;

  size_t size() const;

  // Highest priority across tenants (0 when none) — the shedding ladder's
  // top rung.
  int max_priority() const;

  // Forwarded to the underlying registry; apply before AddTenant to gate
  // initial registrations too.
  void SetValidator(ModelValidator validator);
  void SetFaultInjector(fault::FaultInjector* injector);

  // The underlying registry (what the serving workers resolve against).
  ModelRegistry* models() { return &models_; }

 private:
  mutable std::mutex mu_;
  ModelRegistry models_;
  std::map<std::string, TenantSpec> specs_;
};

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_TENANT_REGISTRY_H_
