#include "fleet/sv_store.h"

#include <cstring>
#include <limits>
#include <utility>

namespace gmpsvm::fleet {
namespace {

// FNV-1a over raw bytes; doubles hash by bit pattern so distinct encodings
// of the same value (there are none we produce) never alias and equal bit
// patterns always collide into the same bucket.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

uint64_t HashParams(const KernelParams& params, uint64_t h) {
  const int32_t type = static_cast<int32_t>(params.type);
  h = HashBytes(&type, sizeof(type), h);
  h = HashBytes(&params.gamma, sizeof(params.gamma), h);
  h = HashBytes(&params.coef0, sizeof(params.coef0), h);
  h = HashBytes(&params.degree, sizeof(params.degree), h);
  return h;
}

uint64_t HashRow(std::span<const int32_t> indices,
                 std::span<const double> values, uint64_t h) {
  h = HashBytes(indices.data(), indices.size() * sizeof(int32_t), h);
  h = HashBytes(values.data(), values.size() * sizeof(double), h);
  return h;
}

bool RowsEqual(std::span<const int32_t> ia, std::span<const double> va,
               std::span<const int32_t> ib, std::span<const double> vb) {
  if (ia.size() != ib.size()) return false;
  return std::memcmp(ia.data(), ib.data(), ia.size() * sizeof(int32_t)) == 0 &&
         std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)) == 0;
}

bool ParamsEqual(const KernelParams& a, const KernelParams& b) {
  return a.type == b.type && a.gamma == b.gamma && a.coef0 == b.coef0 &&
         a.degree == b.degree;
}

}  // namespace

// The per-(model, version) face of the store: translates the model's pool
// columns into global SV ids once at bind time, then forwards
// Gather/Commit. Owning a model snapshot pins every pool row the global
// entries reference.
class SvStore::Binding : public PredictionKernelCache {
 public:
  Binding(SvStore* store, std::shared_ptr<const MpSvmModel> model,
          std::vector<int64_t> global_ids)
      : store_(store),
        model_(std::move(model)),
        global_ids_(std::move(global_ids)) {}

  int64_t Gather(const SparseRowView& row, std::span<double> out,
                 std::span<uint8_t> hit) override {
    return store_->Gather(global_ids_, row, out, hit);
  }

  void Commit(const SparseRowView& row, std::span<const double> values,
              std::span<const uint8_t> hit) override {
    store_->Commit(global_ids_, row, values, hit);
  }

 private:
  SvStore* store_;
  std::shared_ptr<const MpSvmModel> model_;
  std::vector<int64_t> global_ids_;
};

SvStore::SvStore(const SvStoreOptions& options) : options_(options) {
  if (options_.metrics != nullptr) {
    hits_counter_ = options_.metrics->GetCounter(
        "gmpsvm_fleet_sv_hits_total",
        "Kernel values served from the shared SV store");
    misses_counter_ = options_.metrics->GetCounter(
        "gmpsvm_fleet_sv_misses_total",
        "Kernel values the predictor computed on SV-store misses");
    evicted_counter_ = options_.metrics->GetCounter(
        "gmpsvm_fleet_sv_evicted_total",
        "Cached kernel values retired by deterministic query eviction "
        "(FIFO or frequency-weighted, per the retention policy)");
    unique_svs_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_fleet_sv_unique",
        "Deduplicated support vectors across co-resident models");
    resident_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_fleet_sv_values_resident",
        "Kernel values currently cached by the shared SV store");
  }
}

SvStore::~SvStore() = default;

PredictionKernelCache* SvStore::Bind(const ModelHandle& handle) {
  if (!handle.valid()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(handle.name, handle.version);
  auto it = bindings_.find(key);
  if (it != bindings_.end()) return it->second.get();

  const MpSvmModel& model = *handle.model;
  const int64_t pool = model.pool_size();
  std::vector<int64_t> global_ids(static_cast<size_t>(pool));
  for (int64_t j = 0; j < pool; ++j) {
    global_ids[static_cast<size_t>(j)] = InternSvLocked(
        handle.model, static_cast<int32_t>(j), model.kernel);
  }
  pool_rows_ += pool;
  if (unique_svs_gauge_ != nullptr) {
    unique_svs_gauge_->Set(static_cast<double>(svs_.size()));
  }
  auto binding = std::make_unique<Binding>(this, handle.model,
                                           std::move(global_ids));
  PredictionKernelCache* raw = binding.get();
  bindings_.emplace(key, std::move(binding));
  return raw;
}

int64_t SvStore::InternSvLocked(
    const std::shared_ptr<const MpSvmModel>& owner, int32_t pool_row,
    const KernelParams& params) {
  const auto indices = owner->support_vectors.RowIndices(pool_row);
  const auto values = owner->support_vectors.RowValues(pool_row);
  const uint64_t hash = HashRow(indices, values, HashParams(params, kFnvOffset));
  const auto [begin, end] = sv_by_hash_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const SvEntry& entry = svs_[static_cast<size_t>(it->second)];
    if (ParamsEqual(entry.params, params) &&
        RowsEqual(entry.owner->support_vectors.RowIndices(entry.pool_row),
                  entry.owner->support_vectors.RowValues(entry.pool_row),
                  indices, values)) {
      return it->second;
    }
  }
  const int64_t id = static_cast<int64_t>(svs_.size());
  svs_.push_back(SvEntry{owner, pool_row, params});
  sv_by_hash_.emplace(hash, id);
  return id;
}

int64_t SvStore::FindQueryLocked(const SparseRowView& row,
                                 uint64_t hash) const {
  const auto [begin, end] = query_by_hash_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    const auto qit = queries_.find(it->second);
    if (qit != queries_.end() &&
        RowsEqual(qit->second.indices, qit->second.values, row.indices,
                  row.values)) {
      return it->second;
    }
  }
  return -1;
}

int64_t SvStore::InternQueryLocked(const SparseRowView& row, uint64_t hash) {
  const int64_t id = next_query_id_++;
  QueryEntry entry;
  entry.indices.assign(row.indices.begin(), row.indices.end());
  entry.values.assign(row.values.begin(), row.values.end());
  queries_.emplace(id, std::move(entry));
  query_by_hash_.emplace(hash, id);
  query_fifo_.push_back(id);
  ++queries_interned_;
  return id;
}

void SvStore::EvictLocked() {
  while (options_.kernel_value_capacity >= 0 &&
         values_resident_ > options_.kernel_value_capacity &&
         !queries_.empty()) {
    int64_t victim = -1;
    if (options_.retention == SvStoreOptions::RetentionPolicy::kFifo) {
      if (query_fifo_.empty()) break;
      victim = query_fifo_.front();
      query_fifo_.pop_front();
    } else {
      // kFrequency: fewest Gather uses wins eviction. queries_ iterates in
      // ascending id (= interning) order and only a strictly smaller count
      // replaces the candidate, so ties fall to the oldest query — the
      // documented FIFO tie-break.
      int64_t best_uses = std::numeric_limits<int64_t>::max();
      for (const auto& [id, entry] : queries_) {
        if (entry.uses < best_uses) {
          best_uses = entry.uses;
          victim = id;
        }
      }
    }
    auto it = queries_.find(victim);
    if (it == queries_.end()) continue;
    const int64_t freed = static_cast<int64_t>(it->second.kernel_values.size());
    const uint64_t hash = HashRow(it->second.indices, it->second.values,
                                  kFnvOffset);
    const auto [begin, end] = query_by_hash_.equal_range(hash);
    for (auto hit_it = begin; hit_it != end; ++hit_it) {
      if (hit_it->second == victim) {
        query_by_hash_.erase(hit_it);
        break;
      }
    }
    queries_.erase(it);
    values_resident_ -= freed;
    values_evicted_ += freed;
    if (evicted_counter_ != nullptr) {
      evicted_counter_->Add(static_cast<double>(freed));
    }
  }
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<double>(values_resident_));
  }
}

int64_t SvStore::Gather(const std::vector<int64_t>& global_ids,
                        const SparseRowView& row, std::span<double> out,
                        std::span<uint8_t> hit) {
  const size_t pool = global_ids.size();
  int64_t hits = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.kernel_value_capacity != 0) {
      const uint64_t hash = HashRow(row.indices, row.values, kFnvOffset);
      const int64_t qid = FindQueryLocked(row, hash);
      if (qid >= 0) {
        QueryEntry& q = queries_.at(qid);
        ++q.uses;
        for (size_t j = 0; j < pool; ++j) {
          const auto it = q.kernel_values.find(global_ids[j]);
          if (it != q.kernel_values.end()) {
            out[j] = it->second;
            hit[j] = 1;
            ++hits;
          }
        }
      }
    }
    hits_ += hits;
    misses_ += static_cast<int64_t>(pool) - hits;
  }
  if (hits_counter_ != nullptr && hits > 0) {
    hits_counter_->Add(static_cast<double>(hits));
  }
  if (misses_counter_ != nullptr && static_cast<int64_t>(pool) > hits) {
    misses_counter_->Add(static_cast<double>(static_cast<int64_t>(pool) - hits));
  }
  return hits;
}

void SvStore::Commit(const std::vector<int64_t>& global_ids,
                     const SparseRowView& row, std::span<const double> values,
                     std::span<const uint8_t> hit) {
  if (options_.kernel_value_capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t hash = HashRow(row.indices, row.values, kFnvOffset);
  int64_t qid = FindQueryLocked(row, hash);
  if (qid < 0) qid = InternQueryLocked(row, hash);
  QueryEntry& q = queries_.at(qid);
  for (size_t j = 0; j < global_ids.size(); ++j) {
    if (hit[j] != 0) continue;  // came from the cache, already resident
    if (q.kernel_values.emplace(global_ids[j], values[j]).second) {
      ++values_resident_;
    }
  }
  EvictLocked();
}

SvStoreStats SvStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SvStoreStats stats;
  stats.models_bound = static_cast<int64_t>(bindings_.size());
  stats.pool_rows = pool_rows_;
  stats.unique_svs = static_cast<int64_t>(svs_.size());
  stats.hits = hits_;
  stats.misses = misses_;
  stats.values_resident = values_resident_;
  stats.values_evicted = values_evicted_;
  stats.queries_interned = queries_interned_;
  return stats;
}

}  // namespace gmpsvm::fleet
