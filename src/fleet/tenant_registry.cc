#include "fleet/tenant_registry.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace gmpsvm::fleet {
namespace {

Status ValidateSpec(const TenantSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  for (char c : spec.name) {
    if (c == ':' || std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          "tenant name must not contain ':' or whitespace: " + spec.name);
    }
  }
  if (spec.priority < 0) {
    return Status::InvalidArgument("tenant priority must be >= 0: " +
                                   spec.name);
  }
  if (spec.weight < 0.0) {
    return Status::InvalidArgument("tenant weight must be >= 0: " + spec.name);
  }
  if (spec.predict.has_value()) {
    const Status status = spec.predict->Validate();
    if (!status.ok()) {
      return Status::InvalidArgument("tenant " + spec.name +
                                     " predict options: " + status.message());
    }
  }
  return Status::OK();
}

}  // namespace

std::string TenantRegistry::ModelKey(const std::string& name) {
  return "tenant:" + name;
}

Result<int64_t> TenantRegistry::AddTenant(const TenantSpec& spec,
                                          MpSvmModel model) {
  GMP_RETURN_NOT_OK(ValidateSpec(spec));
  std::lock_guard<std::mutex> lock(mu_);
  if (specs_.count(spec.name) != 0) {
    return Status::FailedPrecondition("tenant already exists: " + spec.name);
  }
  GMP_ASSIGN_OR_RETURN(int64_t version,
                       models_.Register(ModelKey(spec.name), std::move(model)));
  specs_.emplace(spec.name, spec);
  return version;
}

Result<int64_t> TenantRegistry::SwapModel(const std::string& name,
                                          MpSvmModel model) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (specs_.count(name) == 0) {
      return Status::FailedPrecondition("no such tenant: " + name);
    }
  }
  // The registry's own lock serializes the swap itself; holding mu_ across
  // it would serialize swaps of *different* tenants for no benefit.
  return models_.Register(ModelKey(name), std::move(model));
}

Result<TenantSpec> TenantRegistry::GetSpec(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = specs_.find(name);
  if (it == specs_.end()) {
    return Status::FailedPrecondition("no such tenant: " + name);
  }
  return it->second;
}

Result<ModelHandle> TenantRegistry::GetModel(const std::string& name) const {
  return models_.Get(ModelKey(name));
}

bool TenantRegistry::RemoveTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (specs_.erase(name) == 0) return false;
  models_.Remove(ModelKey(name));
  return true;
}

std::vector<std::string> TenantRegistry::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  return names;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_.size();
}

int TenantRegistry::max_priority() const {
  std::lock_guard<std::mutex> lock(mu_);
  int max_priority = 0;
  for (const auto& [name, spec] : specs_) {
    max_priority = std::max(max_priority, spec.priority);
  }
  return max_priority;
}

void TenantRegistry::SetValidator(ModelValidator validator) {
  models_.SetValidator(std::move(validator));
}

void TenantRegistry::SetFaultInjector(fault::FaultInjector* injector) {
  models_.SetFaultInjector(injector);
}

}  // namespace gmpsvm::fleet
