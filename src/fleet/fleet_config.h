// Fleet configuration file: the `svm_tool serve --fleet-config` format.
//
// Line-oriented; '#' starts a comment, blank lines are skipped. Fleet-wide
// knobs are `<key> <value>` pairs; each `tenant` line declares one tenant
// and its model file:
//
//   # fleet knobs (all optional, defaults in FleetConfig)
//   replicas 2
//   min_replicas 1
//   max_replicas 4
//   scale_up_depth 8
//   scale_up_ticks 2
//   scale_down_depth 0.25
//   scale_down_ticks 4
//   share_sv on
//   sv_cache_capacity 1048576
//   shed_start 0.75
//
//   # tenant <name> model=<path> [priority=N] [rate=R] [burst=B] [weight=W]
//   #   [decision=probability|voting] [cascade=exact|eliminate]
//   #   [cascade_budget=N] [cascade_threshold=T] [cascade_band=B]
//   #   [simd=auto|scalar|avx2|neon]
//   tenant acme  model=acme.model  priority=2 weight=8
//   tenant small model=small.model priority=0 rate=50 burst=4 weight=1
//
// `simd=` pins the tenant's host SIMD tier (src/simd/simd.h). Every tier
// produces byte-identical probabilities — it is a speed knob only — and a
// tier the CPU cannot run fails parsing with the line number.
//
// Unknown keys and malformed values fail parsing with the line number, so a
// config typo cannot silently serve with defaults.

#ifndef GMPSVM_FLEET_FLEET_CONFIG_H_
#define GMPSVM_FLEET_FLEET_CONFIG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/autoscaler.h"
#include "fleet/tenant_registry.h"

namespace gmpsvm::fleet {

struct FleetConfigTenant {
  TenantSpec spec;
  std::string model_path;
};

struct FleetConfig {
  int replicas = 1;
  AutoscalePolicy autoscale;
  bool share_support_vectors = true;
  int64_t sv_cache_capacity = 1 << 20;
  double shed_start_fraction = 0.75;
  std::vector<FleetConfigTenant> tenants;
};

// Parses the format above; requires at least one tenant line.
Result<FleetConfig> ParseFleetConfig(const std::string& text);

// Reads `path` and parses it.
Result<FleetConfig> LoadFleetConfigFile(const std::string& path);

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_FLEET_CONFIG_H_
