#include "fleet/quota.h"

#include <algorithm>

namespace gmpsvm::fleet {

TokenBucket::TokenBucket(const QuotaSpec& spec) : spec_(spec) {
  if (spec_.rate_per_sec > 0.0) spec_.burst = std::max(1.0, spec_.burst);
  tokens_ = spec_.burst;  // a fresh tenant starts with a full bucket
}

double TokenBucket::TokensAt(double now_seconds) const {
  if (now_seconds <= last_refill_) return tokens_;
  return std::min(spec_.burst, tokens_ + (now_seconds - last_refill_) *
                                             spec_.rate_per_sec);
}

bool TokenBucket::TryAcquire(double now_seconds) {
  if (unlimited()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = TokensAt(now_seconds);
  last_refill_ = std::max(last_refill_, now_seconds);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::RetryAfterSeconds(double now_seconds) const {
  if (unlimited()) return 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  const double tokens = TokensAt(now_seconds);
  if (tokens >= 1.0) return 0.0;
  return (1.0 - tokens) / spec_.rate_per_sec;
}

}  // namespace gmpsvm::fleet
