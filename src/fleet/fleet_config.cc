#include "fleet/fleet_config.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "simd/simd.h"

namespace gmpsvm::fleet {
namespace {

Status LineError(int line, const std::string& message) {
  return Status::InvalidArgument(StrPrintf("fleet config line %d: %s", line,
                                           message.c_str()));
}

Result<double> ParseDoubleField(int line, std::string_view key,
                                std::string_view value) {
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) {
    return LineError(line, StrPrintf("invalid number for %.*s: '%.*s'",
                                     static_cast<int>(key.size()), key.data(),
                                     static_cast<int>(value.size()),
                                     value.data()));
  }
  return parsed;
}

Result<int32_t> ParseIntField(int line, std::string_view key,
                              std::string_view value) {
  int32_t parsed = 0;
  if (!ParseInt32(value, &parsed)) {
    return LineError(line, StrPrintf("invalid integer for %.*s: '%.*s'",
                                     static_cast<int>(key.size()), key.data(),
                                     static_cast<int>(value.size()),
                                     value.data()));
  }
  return parsed;
}

Result<bool> ParseBoolField(int line, std::string_view key,
                            std::string_view value) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  return LineError(line, StrPrintf("invalid on/off for %.*s: '%.*s'",
                                   static_cast<int>(key.size()), key.data(),
                                   static_cast<int>(value.size()),
                                   value.data()));
}

// Lazily materializes the tenant's PredictOptions override (fleet defaults
// until a predict key appears on the line).
PredictOptions& TenantPredict(FleetConfigTenant& tenant) {
  if (!tenant.spec.predict.has_value()) tenant.spec.predict.emplace();
  return *tenant.spec.predict;
}

// Parses one `tenant <name> key=value...` line.
Result<FleetConfigTenant> ParseTenantLine(
    int line, const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 2) {
    return LineError(line, "tenant line needs a name");
  }
  FleetConfigTenant tenant;
  tenant.spec.name = std::string(tokens[1]);
  for (size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return LineError(line, StrPrintf("expected key=value, got '%.*s'",
                                       static_cast<int>(token.size()),
                                       token.data()));
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "model") {
      tenant.model_path = std::string(value);
    } else if (key == "priority") {
      GMP_ASSIGN_OR_RETURN(tenant.spec.priority,
                           ParseIntField(line, key, value));
    } else if (key == "rate") {
      GMP_ASSIGN_OR_RETURN(tenant.spec.quota.rate_per_sec,
                           ParseDoubleField(line, key, value));
    } else if (key == "burst") {
      GMP_ASSIGN_OR_RETURN(tenant.spec.quota.burst,
                           ParseDoubleField(line, key, value));
    } else if (key == "weight") {
      GMP_ASSIGN_OR_RETURN(tenant.spec.weight,
                           ParseDoubleField(line, key, value));
    } else if (key == "decision") {
      if (value == "probability") {
        TenantPredict(tenant).decision = PredictOptions::Decision::kProbability;
      } else if (value == "voting") {
        TenantPredict(tenant).decision = PredictOptions::Decision::kVoting;
      } else {
        return LineError(line,
                         StrPrintf("decision must be probability|voting, got "
                                   "'%.*s'",
                                   static_cast<int>(value.size()), value.data()));
      }
    } else if (key == "cascade") {
      if (value == "exact") {
        TenantPredict(tenant).cascade.mode = CascadeOptions::Mode::kExact;
      } else if (value == "eliminate") {
        TenantPredict(tenant).cascade.mode = CascadeOptions::Mode::kEliminate;
      } else {
        return LineError(line,
                         StrPrintf("cascade must be exact|eliminate, got '%.*s'",
                                   static_cast<int>(value.size()), value.data()));
      }
    } else if (key == "cascade_budget") {
      GMP_ASSIGN_OR_RETURN(TenantPredict(tenant).cascade.budget,
                           ParseIntField(line, key, value));
    } else if (key == "cascade_threshold") {
      GMP_ASSIGN_OR_RETURN(TenantPredict(tenant).cascade.elimination_threshold,
                           ParseDoubleField(line, key, value));
    } else if (key == "cascade_band") {
      GMP_ASSIGN_OR_RETURN(TenantPredict(tenant).cascade.ambiguity_band,
                           ParseDoubleField(line, key, value));
    } else if (key == "simd") {
      // Per-tenant host SIMD tier (byte-identical across tiers; a speed
      // knob). Unsupported-on-this-CPU tiers are rejected by the Validate
      // call below, keeping the line number in the diagnostic.
      Result<simd::SimdTier> tier = simd::TierFromString(std::string(value));
      if (!tier.ok()) return LineError(line, tier.status().message());
      TenantPredict(tenant).simd = *tier;
    } else {
      return LineError(line, StrPrintf("unknown tenant key '%.*s'",
                                       static_cast<int>(key.size()),
                                       key.data()));
    }
  }
  if (tenant.model_path.empty()) {
    return LineError(line, "tenant " + tenant.spec.name + " needs model=<path>");
  }
  if (tenant.spec.predict.has_value()) {
    // Registration would reject these anyway; failing here keeps the line
    // number in the diagnostic.
    const Status status = tenant.spec.predict->Validate();
    if (!status.ok()) return LineError(line, status.message());
  }
  return tenant;
}

}  // namespace

Result<FleetConfig> ParseFleetConfig(const std::string& text) {
  FleetConfig config;
  std::istringstream stream(text);
  std::string raw_line;
  int line = 0;
  while (std::getline(stream, raw_line)) {
    ++line;
    std::string_view view = StripWhitespace(raw_line);
    const size_t comment = view.find('#');
    if (comment != std::string_view::npos) {
      view = StripWhitespace(view.substr(0, comment));
    }
    if (view.empty()) continue;
    const std::vector<std::string_view> tokens = SplitTokens(view, " \t");
    const std::string_view key = tokens[0];

    if (key == "tenant") {
      GMP_ASSIGN_OR_RETURN(FleetConfigTenant tenant,
                           ParseTenantLine(line, tokens));
      config.tenants.push_back(std::move(tenant));
      continue;
    }
    if (tokens.size() != 2) {
      return LineError(line, StrPrintf("expected '%.*s <value>'",
                                       static_cast<int>(key.size()),
                                       key.data()));
    }
    const std::string_view value = tokens[1];
    if (key == "replicas") {
      GMP_ASSIGN_OR_RETURN(config.replicas, ParseIntField(line, key, value));
    } else if (key == "min_replicas") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.min_replicas,
                           ParseIntField(line, key, value));
    } else if (key == "max_replicas") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.max_replicas,
                           ParseIntField(line, key, value));
    } else if (key == "scale_up_depth") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.scale_up_depth,
                           ParseDoubleField(line, key, value));
    } else if (key == "scale_up_ticks") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.scale_up_ticks,
                           ParseIntField(line, key, value));
    } else if (key == "scale_down_depth") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.scale_down_depth,
                           ParseDoubleField(line, key, value));
    } else if (key == "scale_down_ticks") {
      GMP_ASSIGN_OR_RETURN(config.autoscale.scale_down_ticks,
                           ParseIntField(line, key, value));
    } else if (key == "share_sv") {
      GMP_ASSIGN_OR_RETURN(config.share_support_vectors,
                           ParseBoolField(line, key, value));
    } else if (key == "sv_cache_capacity") {
      int64_t capacity = 0;
      if (!ParseInt64(value, &capacity)) {
        return LineError(line, "invalid integer for sv_cache_capacity");
      }
      config.sv_cache_capacity = capacity;
    } else if (key == "shed_start") {
      GMP_ASSIGN_OR_RETURN(config.shed_start_fraction,
                           ParseDoubleField(line, key, value));
    } else {
      return LineError(line, StrPrintf("unknown key '%.*s'",
                                       static_cast<int>(key.size()),
                                       key.data()));
    }
  }
  if (config.tenants.empty()) {
    return Status::InvalidArgument(
        "fleet config declares no tenants (need at least one 'tenant' line)");
  }
  GMP_RETURN_NOT_OK(config.autoscale.Validate());
  return config;
}

Result<FleetConfig> LoadFleetConfigFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open fleet config: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseFleetConfig(buffer.str());
}

}  // namespace gmpsvm::fleet
