// Per-tenant admission quotas: a deterministic token bucket.
//
// Buckets are clocked by the caller — seconds on any nondecreasing timeline
// — so tests drive them with synthetic time and the fleet server drives
// them with its serving stopwatch. One token per admission; a tenant may
// burst up to `burst` tokens above its sustained rate. A drained bucket is
// the quota-shed signal: the fleet answers kUnavailable with the
// RetryAfterSeconds hint instead of queueing the request.

#ifndef GMPSVM_FLEET_QUOTA_H_
#define GMPSVM_FLEET_QUOTA_H_

#include <mutex>

namespace gmpsvm::fleet {

struct QuotaSpec {
  // Sustained admissions per second; <= 0 disables the quota (unlimited).
  double rate_per_sec = 0.0;

  // Bucket capacity: how far above the sustained rate a tenant may burst.
  // Clamped to >= 1 when a rate is set (a bucket that can never hold one
  // whole token would shed everything).
  double burst = 8.0;
};

class TokenBucket {
 public:
  explicit TokenBucket(const QuotaSpec& spec);

  // Refills for the time elapsed since the last refill and takes one token
  // if available. `now_seconds` must be nondecreasing across calls (a stale
  // timestamp refills nothing but still spends a ready token). Thread-safe.
  bool TryAcquire(double now_seconds);

  // Seconds after `now_seconds` until a whole token will have accumulated —
  // the retry-after hint carried by quota-shed responses. 0 when a token is
  // already available (or the quota is unlimited).
  double RetryAfterSeconds(double now_seconds) const;

  bool unlimited() const { return spec_.rate_per_sec <= 0.0; }
  const QuotaSpec& spec() const { return spec_; }

 private:
  double TokensAt(double now_seconds) const;  // requires mu_

  QuotaSpec spec_;
  mutable std::mutex mu_;
  double tokens_ = 0.0;
  double last_refill_ = 0.0;
};

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_QUOTA_H_
