// FleetServer: multi-tenant serving over a dynamic replica set.
//
//   client ──Submit(tenant, row)──▶ quota gate (per-tenant token bucket)
//                                       │ shed: kUnavailable + retry-after
//                                   overload gate (priority ladder over the
//                                       │ fleet-wide queue fraction)
//                                   least-loaded replica (InferenceServer,
//                                       │ one simulated device per worker)
//                                   model-homogeneous micro-batches against
//                                       │ the tenant's registry snapshot
//                                   shared SV store (cross-tenant kernel-
//                                           value reuse, Section 3.3.3)
//
// Every tenant's models live in the TenantRegistry's namespace and hot-swap
// through the validator/rollback gate. With share_support_vectors on, all
// replicas bind their batches to one SvStore, so a kernel value computed for
// one tenant's query is gathered — not recomputed — when a co-resident model
// references the same support vector; probabilities stay byte-identical to
// the sharing-off path at any cache capacity.
//
// Replica autoscaling is gauge-driven: ScaleTick() publishes the fleet's
// queue-depth gauges and feeds the mean depth per replica to the Autoscaler;
// a scale-up adds a replica (cycling through the configured device models —
// a SimCluster's devices make a natural substrate), a scale-down
// drain-and-retires the newest one. Both respect min/max_replicas.
//
// Observability: per-tenant series (gmpsvm_fleet_*_total{tenant=...},
// gmpsvm_fleet_latency_seconds{tenant=...}) and fleet gauges publish into
// FleetOptions::metrics (or a private registry when null). Each replica
// keeps a private ServeStats registry so per-worker series never collide;
// Snapshot() aggregates kernel-evaluation counters across live and retired
// replicas.

#ifndef GMPSVM_FLEET_FLEET_SERVER_H_
#define GMPSVM_FLEET_FLEET_SERVER_H_

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "fleet/autoscaler.h"
#include "fleet/quota.h"
#include "fleet/sv_store.h"
#include "fleet/tenant_registry.h"
#include "serve/server.h"

namespace gmpsvm::fleet {

struct FleetOptions {
  // Template applied to every replica. Its model_name, metrics and
  // kernel_cache_resolver are managed by the fleet; its lane_base is the
  // base of replica 0's trace band; its fault injector reaches every
  // replica's devices.
  ServeOptions serve;

  // Replica device models, cycled as replicas are added (replica i runs on
  // devices[i % devices.size()]); a SimCluster's device models slot in
  // directly. Empty = every replica on serve.executor_model.
  std::vector<ExecutorModel> devices;

  int initial_replicas = 1;
  AutoscalePolicy autoscale;

  // Cross-tenant SV sharing (the tentpole): off = every batch recomputes its
  // kernel block (the reference path results are compared against).
  bool share_support_vectors = true;
  int64_t sv_cache_capacity = 1 << 20;
  // Which whole query the store retires first on overflow; the
  // frequency-weighted policy is opt-in, FIFO is the default.
  SvStoreOptions::RetentionPolicy sv_retention =
      SvStoreOptions::RetentionPolicy::kFifo;

  // Fleet-wide queue fraction where priority shedding begins. At fraction f
  // in (shed_start_fraction, 1], a tenant with priority p (ladder top P) is
  // admitted only while f <= shed_start + (1 - shed_start) * (p+1)/(P+1) —
  // lowest priority sheds first, the top rung only at a completely full
  // fleet. >= 1 disables overload shedding (quota shedding still applies).
  double shed_start_fraction = 0.75;

  // Shared registry for fleet + per-tenant series; nullptr keeps a private
  // one (reachable via metrics()).
  obs::MetricsRegistry* metrics = nullptr;
};

struct TenantStatsSnapshot {
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_quota = 0;     // token bucket drained
  uint64_t shed_overload = 0;  // priority ladder under fleet overload
  uint64_t rejected = 0;       // every replica queue full / invalid rows
  uint64_t completed = 0;
  uint64_t failed = 0;         // terminal per-request failures
  double latency_mean = 0.0;   // admission -> response, seconds
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_max = 0.0;
};

struct FleetStatsSnapshot {
  std::vector<TenantStatsSnapshot> tenants;  // sorted by name
  int replicas = 0;
  uint64_t scale_ups = 0;
  uint64_t scale_downs = 0;

  // Kernel-evaluation counters summed over every replica worker (live and
  // retired) — the quantity cross-tenant sharing reduces.
  int64_t kernel_values_computed = 0;
  int64_t kernel_values_reused = 0;

  SvStoreStats sv;

  // Renders the per-tenant table plus fleet totals.
  std::string ToTable() const;
};

class FleetServer {
 public:
  explicit FleetServer(FleetOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  // Validates the policy and spins up the initial replicas (clamped to
  // [min_replicas, max_replicas]).
  Status Start();

  // Tenant lifecycle; AddTenant before or after Start(). Swaps go through
  // the validator/rollback gate (see TenantRegistry).
  Result<int64_t> AddTenant(const TenantSpec& spec, MpSvmModel model);
  Result<int64_t> SwapTenantModel(const std::string& tenant, MpSvmModel model);

  // Admission for one sparse row on behalf of `tenant`. Sheds with
  // kUnavailable (message carries a retry-after hint) on a drained quota
  // bucket or fleet overload below the tenant's priority rung; rejects with
  // kResourceExhausted only when every replica queue is full. An admitted
  // request always resolves its future.
  Result<std::future<Result<PredictResponse>>> Submit(
      const std::string& tenant, std::span<const int32_t> indices,
      std::span<const double> values, Deadline deadline = Deadline::Infinite());

  // Submit + wait, flattening admission and per-request errors.
  Result<PredictResponse> Predict(const std::string& tenant,
                                  std::span<const int32_t> indices,
                                  std::span<const double> values,
                                  Deadline deadline = Deadline::Infinite());

  // One autoscaling observation: publishes the fleet queue gauges, feeds
  // the mean depth per replica to the policy, and applies the decision
  // (scale-up replica add or drain-and-retire). Call on a fixed cadence.
  ScaleDecision ScaleTick();

  // Pauses/resumes every replica's consumption (admission unaffected) —
  // deterministic backlog for overload and autoscale tests.
  void PauseAll();
  void ResumeAll();

  // Drains every replica and joins their workers. Idempotent.
  Status Shutdown();

  int num_replicas() const;
  size_t total_queue_depth() const;
  TenantRegistry& tenants() { return tenants_; }
  SvStore& sv_store() { return sv_store_; }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  const FleetOptions& options() const { return options_; }

  FleetStatsSnapshot Snapshot() const;

 private:
  struct TenantState {
    TenantSpec spec;
    std::unique_ptr<TokenBucket> bucket;
    obs::Counter* submitted;
    obs::Counter* admitted;
    obs::Counter* shed_quota;
    obs::Counter* shed_overload;
    obs::Counter* rejected;
    obs::Counter* completed;
    obs::Counter* failed;
    obs::Histogram* latency;
  };

  struct Replica {
    std::unique_ptr<obs::MetricsRegistry> registry;  // private per-worker series
    std::unique_ptr<InferenceServer> server;
  };

  // Creates (and starts, when the fleet is started) the next replica.
  // Requires replicas_mu_.
  Status AddReplicaLocked();

  TenantState* FindTenant(const std::string& name);

  FleetOptions options_;

  // Declared before sv_store_: the store publishes into the resolved
  // registry.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;

  TenantRegistry tenants_;
  SvStore sv_store_;
  Autoscaler autoscaler_;
  Stopwatch clock_;  // the token buckets' timeline

  obs::Gauge* replicas_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* mean_depth_gauge_;
  obs::Counter* scale_ups_;
  obs::Counter* scale_downs_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenant_states_;
  int max_priority_ = 0;

  mutable std::mutex replicas_mu_;
  std::vector<Replica> replicas_;
  std::vector<std::unique_ptr<obs::MetricsRegistry>> retired_registries_;
  int replicas_created_ = 0;  // lane/device assignment survives retirement
  bool started_ = false;
  bool shut_down_ = false;
  bool paused_ = false;
};

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_FLEET_SERVER_H_
