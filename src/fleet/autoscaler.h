// Autoscaler: a pure, deterministic replica-count policy.
//
// The fleet server samples its queue-depth gauges on a fixed cadence and
// feeds each observation to Tick(); the policy answers hold / scale-up /
// drain-and-retire. Hysteresis on both sides — a scale-up needs
// `scale_up_ticks` consecutive observations at or above the high-water
// depth, a scale-down needs `scale_down_ticks` at or below the idle depth —
// keeps a bursty queue from flapping the replica count. The policy holds no
// clock and no randomness: the same observation sequence always yields the
// same decision sequence.

#ifndef GMPSVM_FLEET_AUTOSCALER_H_
#define GMPSVM_FLEET_AUTOSCALER_H_

#include "common/status.h"

namespace gmpsvm::fleet {

struct AutoscalePolicy {
  int min_replicas = 1;
  int max_replicas = 4;

  // Mean queue depth per replica at/above which a tick counts toward
  // scale-up, and the consecutive-tick streak that triggers it.
  double scale_up_depth = 8.0;
  int scale_up_ticks = 2;

  // Mean depth at/below which a tick counts toward drain-and-retire, and
  // the streak that triggers it (longer by default: retiring is cheaper to
  // delay than overload).
  double scale_down_depth = 0.25;
  int scale_down_ticks = 4;

  Status Validate() const;
};

enum class ScaleDecision { kHold, kScaleUp, kScaleDown };

const char* ScaleDecisionName(ScaleDecision decision);

class Autoscaler {
 public:
  explicit Autoscaler(const AutoscalePolicy& policy) : policy_(policy) {}

  // One observation of mean queue depth per replica. Returns the decision;
  // any decision (including one clamped by min/max) resets both streaks.
  ScaleDecision Tick(double mean_queue_depth, int current_replicas);

  const AutoscalePolicy& policy() const { return policy_; }

 private:
  AutoscalePolicy policy_;
  int hot_streak_ = 0;
  int idle_streak_ = 0;
};

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_AUTOSCALER_H_
