// SvStore: the fleet's shared prediction-time support-vector store.
//
// Co-resident tenant models trained on overlapping data carry overlapping
// support vectors. Binding a model registers every row of its SV pool into
// one global identity space — content-hashed dedup over (kernel params, row
// indices, row values) — and the store caches kernel values K(query, sv)
// keyed by (interned query row, global SV id). A value computed while
// serving one tenant is then gathered, not recomputed, when any co-resident
// model references the same support vector against the same query content:
// Section 3.3.3's kernel-value sharing applied across tenants. Bindings
// implement core's PredictionKernelCache and plug into the predictor's
// shared-kernel path via ServeOptions::kernel_cache_resolver.
//
// Correctness contract: a kernel value is a pure function of (query row,
// SV row, kernel params) and cache misses run through the predictor's own
// batched ComputeBlock path, so probabilities are byte-identical with the
// store attached or not, at ANY capacity. Hashes only accelerate lookup —
// every match is confirmed by exact content comparison, so collisions cost
// time, never correctness. Eviction retires whole queries under the
// configured retention policy — interning order (FIFO, the default) or
// fewest-uses-first with an interning-order tie-break (frequency) — both
// deterministic for a deterministic request sequence, making hit/miss
// counters reproducible too.

#ifndef GMPSVM_FLEET_SV_STORE_H_
#define GMPSVM_FLEET_SV_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/predictor.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"

namespace gmpsvm::fleet {

struct SvStoreOptions {
  // Upper bound on cached kernel values across all queries. 0 disables
  // value caching entirely (dedup bookkeeping still runs, every Gather
  // misses); < 0 means unbounded.
  int64_t kernel_value_capacity = 1 << 20;

  // Which query to retire when over capacity:
  //   kFifo      — oldest interned query first (the original policy);
  //   kFrequency — the query with the fewest Gather uses first, ties broken
  //                by interning order (all-equal use counts degrade to FIFO
  //                exactly).
  // Both are deterministic for a deterministic request sequence, and both
  // preserve byte-identical probabilities at any capacity — the policy only
  // moves hit/miss counts.
  enum class RetentionPolicy { kFifo, kFrequency };
  RetentionPolicy retention = RetentionPolicy::kFifo;

  // Optional registry for gmpsvm_fleet_sv_* series; nullptr disables.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SvStoreStats {
  int64_t models_bound = 0;      // distinct (name, version) pools registered
  int64_t pool_rows = 0;         // total pool rows across bound models
  int64_t unique_svs = 0;        // global entries after dedup
  int64_t hits = 0;              // kernel values served from the store
  int64_t misses = 0;            // values the predictor had to compute
  int64_t values_resident = 0;   // currently cached
  int64_t values_evicted = 0;
  int64_t queries_interned = 0;
};

class SvStore {
 public:
  explicit SvStore(const SvStoreOptions& options = {});
  ~SvStore();

  SvStore(const SvStore&) = delete;
  SvStore& operator=(const SvStore&) = delete;

  // Returns the PredictionKernelCache binding for `handle`, registering the
  // model's SV pool into the global store on first sight of that
  // (name, version). The binding keeps the model snapshot alive and stays
  // valid for the store's lifetime; repeated calls for the same snapshot
  // return the same pointer. Thread-safe.
  PredictionKernelCache* Bind(const ModelHandle& handle);

  SvStoreStats stats() const;

  const SvStoreOptions& options() const { return options_; }

 private:
  class Binding;

  // A deduplicated support vector: the pool row of some bound model,
  // pinned alive by the owning snapshot.
  struct SvEntry {
    std::shared_ptr<const MpSvmModel> owner;
    int32_t pool_row = 0;
    KernelParams params;
  };

  // An interned query row (owned copy) with its cached kernel values.
  struct QueryEntry {
    std::vector<int32_t> indices;
    std::vector<double> values;
    std::unordered_map<int64_t, double> kernel_values;  // global SV id -> K
    int64_t uses = 0;  // Gather calls that located this query (kFrequency)
  };

  int64_t InternSvLocked(const std::shared_ptr<const MpSvmModel>& owner,
                         int32_t pool_row, const KernelParams& params);
  int64_t FindQueryLocked(const SparseRowView& row, uint64_t hash) const;
  int64_t InternQueryLocked(const SparseRowView& row, uint64_t hash);
  void EvictLocked();

  // PredictionKernelCache plumbing, called by Binding.
  int64_t Gather(const std::vector<int64_t>& global_ids,
                 const SparseRowView& row, std::span<double> out,
                 std::span<uint8_t> hit);
  void Commit(const std::vector<int64_t>& global_ids, const SparseRowView& row,
              std::span<const double> values, std::span<const uint8_t> hit);

  SvStoreOptions options_;

  mutable std::mutex mu_;
  std::vector<SvEntry> svs_;                              // global id -> entry
  std::unordered_multimap<uint64_t, int64_t> sv_by_hash_;

  std::map<int64_t, QueryEntry> queries_;                 // query id -> entry
  std::unordered_multimap<uint64_t, int64_t> query_by_hash_;
  std::deque<int64_t> query_fifo_;  // interning order, for eviction
  int64_t next_query_id_ = 0;

  // Bindings keyed by (model name, version); pointers must stay stable.
  std::map<std::pair<std::string, int64_t>, std::unique_ptr<Binding>>
      bindings_;

  int64_t pool_rows_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t values_resident_ = 0;
  int64_t values_evicted_ = 0;
  int64_t queries_interned_ = 0;

  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;
  obs::Gauge* unique_svs_gauge_ = nullptr;
  obs::Gauge* resident_gauge_ = nullptr;
};

}  // namespace gmpsvm::fleet

#endif  // GMPSVM_FLEET_SV_STORE_H_
