#include "fleet/autoscaler.h"

namespace gmpsvm::fleet {

Status AutoscalePolicy::Validate() const {
  if (min_replicas < 1) {
    return Status::InvalidArgument("min_replicas must be >= 1");
  }
  if (max_replicas < min_replicas) {
    return Status::InvalidArgument("max_replicas must be >= min_replicas");
  }
  if (scale_up_ticks < 1 || scale_down_ticks < 1) {
    return Status::InvalidArgument("scale ticks must be >= 1");
  }
  if (scale_down_depth > scale_up_depth) {
    return Status::InvalidArgument(
        "scale_down_depth must be <= scale_up_depth");
  }
  return Status::OK();
}

const char* ScaleDecisionName(ScaleDecision decision) {
  switch (decision) {
    case ScaleDecision::kHold:
      return "hold";
    case ScaleDecision::kScaleUp:
      return "scale-up";
    case ScaleDecision::kScaleDown:
      return "scale-down";
  }
  return "unknown";
}

ScaleDecision Autoscaler::Tick(double mean_queue_depth, int current_replicas) {
  if (mean_queue_depth >= policy_.scale_up_depth) {
    idle_streak_ = 0;
    if (++hot_streak_ >= policy_.scale_up_ticks) {
      hot_streak_ = 0;
      if (current_replicas < policy_.max_replicas) {
        return ScaleDecision::kScaleUp;
      }
      return ScaleDecision::kHold;  // already at the ceiling
    }
    return ScaleDecision::kHold;
  }
  if (mean_queue_depth <= policy_.scale_down_depth) {
    hot_streak_ = 0;
    if (++idle_streak_ >= policy_.scale_down_ticks) {
      idle_streak_ = 0;
      if (current_replicas > policy_.min_replicas) {
        return ScaleDecision::kScaleDown;
      }
      return ScaleDecision::kHold;  // already at the floor
    }
    return ScaleDecision::kHold;
  }
  // Mid-band observations break both streaks.
  hot_streak_ = 0;
  idle_streak_ = 0;
  return ScaleDecision::kHold;
}

}  // namespace gmpsvm::fleet
