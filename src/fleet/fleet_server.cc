#include "fleet/fleet_server.h"

#include <algorithm>
#include <utility>

#include "common/string_util.h"
#include "metrics/report.h"

namespace gmpsvm::fleet {
namespace {

// Lane band per replica, matching the router's layout: replica i's workers
// trace into lanes [base + i*16*workers, ...).
constexpr int kReplicaLaneBand = 16;

SvStoreOptions StoreOptions(const FleetOptions& options,
                            obs::MetricsRegistry* metrics) {
  SvStoreOptions store;
  store.kernel_value_capacity =
      options.share_support_vectors ? options.sv_cache_capacity : 0;
  store.retention = options.sv_retention;
  store.metrics = metrics;
  return store;
}

}  // namespace

FleetServer::FleetServer(FleetOptions options)
    : options_(std::move(options)),
      owned_metrics_(options_.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      sv_store_(StoreOptions(options_, metrics_)),
      autoscaler_(options_.autoscale) {
  options_.initial_replicas = std::max(1, options_.initial_replicas);
  // Tenant hot-swaps ride the same validator/fault gate as single-model
  // serving.
  tenants_.SetFaultInjector(options_.serve.fault);

  replicas_gauge_ = metrics_->GetGauge(
      "gmpsvm_fleet_replicas", "Live serving replicas in the fleet");
  queue_depth_gauge_ = metrics_->GetGauge(
      "gmpsvm_fleet_queue_depth", "Queued requests across all replicas");
  mean_depth_gauge_ = metrics_->GetGauge(
      "gmpsvm_fleet_mean_queue_depth",
      "Queued requests per replica (the autoscaler's input)");
  scale_ups_ = metrics_->GetCounter("gmpsvm_fleet_scale_ups_total",
                                    "Replicas added by the autoscaler");
  scale_downs_ = metrics_->GetCounter(
      "gmpsvm_fleet_scale_downs_total",
      "Replicas drained and retired by the autoscaler");
}

FleetServer::~FleetServer() { (void)Shutdown(); }

Status FleetServer::AddReplicaLocked() {
  const int index = replicas_created_;
  Replica replica;
  replica.registry = std::make_unique<obs::MetricsRegistry>();
  ServeOptions serve = options_.serve;
  serve.metrics = replica.registry.get();
  serve.lane_base = options_.serve.lane_base +
                    index * std::max(1, serve.num_workers) * kReplicaLaneBand;
  if (!options_.devices.empty()) {
    serve.executor_model =
        options_.devices[static_cast<size_t>(index) % options_.devices.size()];
  }
  if (options_.share_support_vectors) {
    serve.kernel_cache_resolver = [this](const ModelHandle& handle) {
      return sv_store_.Bind(handle);
    };
  }
  // Per-tenant PredictOptions overrides: batches resolve their tenant from
  // the namespaced model key ("tenant:<name>"); tenants without an override
  // (and non-tenant keys) keep the fleet-wide serve.predict.
  serve.predict_options_resolver =
      [this](const std::string& model_name) -> std::optional<PredictOptions> {
    const std::string prefix = TenantRegistry::ModelKey("");
    if (model_name.compare(0, prefix.size(), prefix) != 0) {
      return std::nullopt;
    }
    Result<TenantSpec> spec = tenants_.GetSpec(model_name.substr(prefix.size()));
    if (!spec.ok()) return std::nullopt;
    return spec->predict;
  };
  replica.server =
      std::make_unique<InferenceServer>(tenants_.models(), std::move(serve));
  GMP_RETURN_NOT_OK(replica.server->Start());
  if (paused_) replica.server->Pause();
  ++replicas_created_;
  replicas_.push_back(std::move(replica));
  return Status::OK();
}

Status FleetServer::Start() {
  GMP_RETURN_NOT_OK(options_.autoscale.Validate());
  std::lock_guard<std::mutex> lock(replicas_mu_);
  if (shut_down_) return Status::FailedPrecondition("fleet was shut down");
  if (started_) return Status::FailedPrecondition("fleet already started");
  started_ = true;
  const int initial =
      std::clamp(options_.initial_replicas, options_.autoscale.min_replicas,
                 options_.autoscale.max_replicas);
  for (int i = 0; i < initial; ++i) {
    GMP_RETURN_NOT_OK(AddReplicaLocked());
  }
  replicas_gauge_->Set(static_cast<double>(replicas_.size()));
  return Status::OK();
}

Result<int64_t> FleetServer::AddTenant(const TenantSpec& spec,
                                       MpSvmModel model) {
  GMP_ASSIGN_OR_RETURN(int64_t version,
                       tenants_.AddTenant(spec, std::move(model)));
  auto state = std::make_unique<TenantState>();
  state->spec = spec;
  state->bucket = std::make_unique<TokenBucket>(spec.quota);
  const obs::Labels labels{{"tenant", spec.name}};
  state->submitted = metrics_->GetCounter(
      "gmpsvm_fleet_submitted_total", "Fleet admission attempts", labels);
  state->admitted = metrics_->GetCounter(
      "gmpsvm_fleet_admitted_total", "Requests admitted to a replica queue",
      labels);
  state->shed_quota = metrics_->GetCounter(
      "gmpsvm_fleet_shed_quota_total",
      "Requests shed by the tenant's token bucket", labels);
  state->shed_overload = metrics_->GetCounter(
      "gmpsvm_fleet_shed_overload_total",
      "Requests shed by the overload priority ladder", labels);
  state->rejected = metrics_->GetCounter(
      "gmpsvm_fleet_rejected_total",
      "Requests rejected (queues full or malformed)", labels);
  state->completed = metrics_->GetCounter(
      "gmpsvm_fleet_completed_total", "Requests answered successfully",
      labels);
  state->failed = metrics_->GetCounter(
      "gmpsvm_fleet_failed_total", "Requests with terminal failures", labels);
  state->latency = metrics_->GetHistogram(
      "gmpsvm_fleet_latency_seconds", "Admission-to-response latency",
      obs::Histogram::LatencyBuckets(), labels);
  std::lock_guard<std::mutex> lock(tenants_mu_);
  max_priority_ = std::max(max_priority_, spec.priority);
  tenant_states_[spec.name] = std::move(state);
  return version;
}

Result<int64_t> FleetServer::SwapTenantModel(const std::string& tenant,
                                             MpSvmModel model) {
  return tenants_.SwapModel(tenant, std::move(model));
}

FleetServer::TenantState* FleetServer::FindTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenant_states_.find(name);
  return it == tenant_states_.end() ? nullptr : it->second.get();
}

Result<std::future<Result<PredictResponse>>> FleetServer::Submit(
    const std::string& tenant, std::span<const int32_t> indices,
    std::span<const double> values, Deadline deadline) {
  TenantState* state = FindTenant(tenant);
  if (state == nullptr) {
    return Status::FailedPrecondition("no such tenant: " + tenant);
  }
  state->submitted->Increment();

  // Gate 1: the tenant's own admission quota.
  const double now = clock_.ElapsedSeconds();
  if (!state->bucket->TryAcquire(now)) {
    state->shed_quota->Increment();
    return Status::Unavailable(StrPrintf(
        "tenant %s over admission quota; retry after %.3f s", tenant.c_str(),
        state->bucket->RetryAfterSeconds(now)));
  }

  std::lock_guard<std::mutex> lock(replicas_mu_);
  if (replicas_.empty()) {
    state->rejected->Increment();
    return Status::FailedPrecondition("fleet is not serving");
  }

  size_t depth = 0;
  size_t capacity = 0;
  for (const Replica& replica : replicas_) {
    depth += replica.server->queue_depth();
    capacity += replica.server->options().queue_capacity;
  }

  // Gate 2: the overload priority ladder — lowest priority sheds first.
  const double fraction =
      capacity > 0 ? static_cast<double>(depth) / static_cast<double>(capacity)
                   : 0.0;
  const double shed_start = options_.shed_start_fraction;
  if (shed_start < 1.0 && fraction > shed_start) {
    int ladder_top;
    {
      std::lock_guard<std::mutex> tenants_lock(tenants_mu_);
      ladder_top = max_priority_;
    }
    const double rung =
        shed_start + (1.0 - shed_start) *
                         (static_cast<double>(state->spec.priority) + 1.0) /
                         (static_cast<double>(ladder_top) + 1.0);
    if (fraction > rung) {
      state->shed_overload->Increment();
      return Status::Unavailable(StrPrintf(
          "fleet overloaded (queues %.0f%% full); tenant %s (priority %d) "
          "shed; retry after %.3f s",
          fraction * 100.0, tenant.c_str(), state->spec.priority,
          0.01 * fraction));
    }
  }

  // Route least-loaded first (ties to the lowest index), spilling to the
  // next replica only on a full queue.
  std::vector<std::pair<size_t, size_t>> order;  // (depth, replica index)
  order.reserve(replicas_.size());
  for (size_t r = 0; r < replicas_.size(); ++r) {
    order.emplace_back(replicas_[r].server->queue_depth(), r);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  CompletionCallback on_complete =
      [state](const Result<PredictResponse>& response) {
        if (response.ok()) {
          state->completed->Increment();
          state->latency->Observe(response->total_seconds);
        } else {
          state->failed->Increment();
        }
      };

  Status last = Status::ResourceExhausted("no replica accepted the request");
  const std::string model_key = TenantRegistry::ModelKey(tenant);
  for (const auto& [unused_depth, r] : order) {
    auto submitted = replicas_[r].server->Submit(indices, values, deadline,
                                                 model_key, on_complete);
    if (submitted.ok()) {
      state->admitted->Increment();
      return submitted;
    }
    if (!submitted.status().IsResourceExhausted()) {
      state->rejected->Increment();
      return submitted.status();
    }
    last = submitted.status();
  }
  state->rejected->Increment();
  return last;
}

Result<PredictResponse> FleetServer::Predict(const std::string& tenant,
                                             std::span<const int32_t> indices,
                                             std::span<const double> values,
                                             Deadline deadline) {
  GMP_ASSIGN_OR_RETURN(auto future, Submit(tenant, indices, values, deadline));
  // Bounded slices: an infinite deadline's Remaining() overflows wait_for.
  while (future.wait_for(deadline.BoundedRemaining(std::chrono::seconds(1))) !=
         std::future_status::ready) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("request deadline expired while waiting");
    }
  }
  return future.get();
}

ScaleDecision FleetServer::ScaleTick() {
  std::unique_lock<std::mutex> lock(replicas_mu_);
  if (!started_ || shut_down_ || replicas_.empty()) {
    return ScaleDecision::kHold;
  }
  size_t depth = 0;
  for (const Replica& replica : replicas_) {
    depth += replica.server->queue_depth();
  }
  const int count = static_cast<int>(replicas_.size());
  replicas_gauge_->Set(static_cast<double>(count));
  queue_depth_gauge_->Set(static_cast<double>(depth));
  mean_depth_gauge_->Set(static_cast<double>(depth) / count);

  // The policy consumes the published gauge, keeping "gauge-driven" literal:
  // what a dashboard shows is exactly what the autoscaler saw.
  const ScaleDecision decision =
      autoscaler_.Tick(mean_depth_gauge_->Value(), count);
  if (decision == ScaleDecision::kScaleUp) {
    if (AddReplicaLocked().ok()) {
      scale_ups_->Increment();
      replicas_gauge_->Set(static_cast<double>(replicas_.size()));
    }
  } else if (decision == ScaleDecision::kScaleDown) {
    Replica victim = std::move(replicas_.back());
    replicas_.pop_back();
    retired_registries_.push_back(std::move(victim.registry));
    scale_downs_->Increment();
    replicas_gauge_->Set(static_cast<double>(replicas_.size()));
    lock.unlock();
    // Drain-and-retire outside the lock: accepted requests are answered
    // while new submissions route to the surviving replicas.
    (void)victim.server->Shutdown();
  }
  return decision;
}

void FleetServer::PauseAll() {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  paused_ = true;
  for (Replica& replica : replicas_) replica.server->Pause();
}

void FleetServer::ResumeAll() {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  paused_ = false;
  for (Replica& replica : replicas_) replica.server->Resume();
}

Status FleetServer::Shutdown() {
  std::vector<Replica> replicas;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    if (shut_down_) return Status::OK();
    shut_down_ = true;
    replicas = std::move(replicas_);
    replicas_.clear();
    for (Replica& replica : replicas) {
      retired_registries_.push_back(std::move(replica.registry));
    }
  }
  Status first = Status::OK();
  for (Replica& replica : replicas) {
    const Status status = replica.server->Shutdown();
    if (first.ok() && !status.ok()) first = status;
  }
  replicas_gauge_->Set(0.0);
  return first;
}

int FleetServer::num_replicas() const {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  return static_cast<int>(replicas_.size());
}

size_t FleetServer::total_queue_depth() const {
  std::lock_guard<std::mutex> lock(replicas_mu_);
  size_t depth = 0;
  for (const Replica& replica : replicas_) {
    depth += replica.server->queue_depth();
  }
  return depth;
}

FleetStatsSnapshot FleetServer::Snapshot() const {
  FleetStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    for (const auto& [name, state] : tenant_states_) {
      TenantStatsSnapshot tenant;
      tenant.tenant = name;
      tenant.submitted = static_cast<uint64_t>(state->submitted->Value());
      tenant.admitted = static_cast<uint64_t>(state->admitted->Value());
      tenant.shed_quota = static_cast<uint64_t>(state->shed_quota->Value());
      tenant.shed_overload =
          static_cast<uint64_t>(state->shed_overload->Value());
      tenant.rejected = static_cast<uint64_t>(state->rejected->Value());
      tenant.completed = static_cast<uint64_t>(state->completed->Value());
      tenant.failed = static_cast<uint64_t>(state->failed->Value());
      const obs::HistogramSnapshot latencies = state->latency->Snapshot();
      tenant.latency_mean = latencies.Mean();
      tenant.latency_p50 = latencies.Percentile(50.0);
      tenant.latency_p95 = latencies.Percentile(95.0);
      tenant.latency_p99 = latencies.Percentile(99.0);
      tenant.latency_max = latencies.Max();
      snap.tenants.push_back(std::move(tenant));
    }
  }
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    snap.replicas = static_cast<int>(replicas_.size());
    const int workers = std::max(1, options_.serve.num_workers);
    auto accumulate = [&](obs::MetricsRegistry* registry) {
      for (int w = 0; w < workers; ++w) {
        const obs::Labels labels{{"worker", std::to_string(w)}};
        snap.kernel_values_computed += static_cast<int64_t>(
            registry
                ->GetCounter("gmpsvm_kernel_values_computed_total",
                             "Kernel-function evaluations actually computed.",
                             labels)
                ->Value());
        snap.kernel_values_reused += static_cast<int64_t>(
            registry
                ->GetCounter("gmpsvm_kernel_values_reused_total",
                             "Kernel values served from a buffer instead of "
                             "recomputed.",
                             labels)
                ->Value());
      }
    };
    for (const Replica& replica : replicas_) accumulate(replica.registry.get());
    for (const auto& registry : retired_registries_) accumulate(registry.get());
  }
  snap.scale_ups = static_cast<uint64_t>(scale_ups_->Value());
  snap.scale_downs = static_cast<uint64_t>(scale_downs_->Value());
  snap.sv = sv_store_.stats();
  return snap;
}

std::string FleetStatsSnapshot::ToTable() const {
  TablePrinter table({"tenant", "submitted", "admitted", "shed", "rejected",
                      "completed", "failed", "p50 ms", "p95 ms", "p99 ms"});
  for (const TenantStatsSnapshot& tenant : tenants) {
    table.AddRow({tenant.tenant, std::to_string(tenant.submitted),
                  std::to_string(tenant.admitted),
                  std::to_string(tenant.shed_quota + tenant.shed_overload),
                  std::to_string(tenant.rejected),
                  std::to_string(tenant.completed),
                  std::to_string(tenant.failed),
                  StrPrintf("%.3f", tenant.latency_p50 * 1e3),
                  StrPrintf("%.3f", tenant.latency_p95 * 1e3),
                  StrPrintf("%.3f", tenant.latency_p99 * 1e3)});
  }
  std::string out = table.ToString();
  out += StrPrintf(
      "replicas %d (scale-ups %llu, scale-downs %llu)\n"
      "kernel values: computed %lld, reused %lld\n"
      "sv store: pool %lld, unique %lld, hits %lld, misses %lld, evicted "
      "%lld\n",
      replicas, static_cast<unsigned long long>(scale_ups),
      static_cast<unsigned long long>(scale_downs),
      static_cast<long long>(kernel_values_computed),
      static_cast<long long>(kernel_values_reused),
      static_cast<long long>(sv.pool_rows), static_cast<long long>(sv.unique_svs),
      static_cast<long long>(sv.hits), static_cast<long long>(sv.misses),
      static_cast<long long>(sv.values_evicted));
  return out;
}

}  // namespace gmpsvm::fleet
