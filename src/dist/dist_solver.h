// DistSmoSolver: the batched SMO solver of Section 3.3.1 with the pair's
// instances sharded across devices (intra-pair data parallelism).
//
// Each shard owns a contiguous local-index range [begin, end) of the binary
// problem. Per outer round, every shard computes its slice of the missing
// working-set kernel rows, its slice of the f-vector update, and its local
// top-q violator candidates; the global working set is then selected by a
// deterministic merge in the same total order (f, index) the single-device
// sort uses, and the inner SMO subproblems run on the coordinator
// (shards[0]). Merges are priced as recursive-doubling allreduces under the
// ClusterTopology's per-link bandwidth/latency model (topology.h).
//
// Determinism contract: the solution, SolverStats counters, and every kernel
// value are byte-identical to BatchSmoSolver::Solve on a single device, for
// any shard count and any placement of the shards across nodes — only
// simulated time (and hence phase attribution) depends on the topology.
// Three facts carry the proof:
//   * kernel slices — KernelComputer::ComputeBlock values are per-element
//     independent of the target subset, so per-shard slices concatenate to
//     the exact full-row bits;
//   * selection — WorkingSetSelector's distributed refresh admits exactly
//     the members the full sort would (working_set.h);
//   * updates — the inner loop and the aggregate f update run in the same
//     element order as the single-device solver, and the convergence
//     reduction merges min/max, which are order-free.
// Fault parity: only the coordinator's executor may carry a FaultInjector
// (the trainer attaches the per-pair injector there); the solver then
// consults kDeviceAlloc / kKernelRowBatch / kBufferEvict in exactly the
// single-device sequence, so chaos runs recover the clean model too.

#ifndef GMPSVM_DIST_DIST_SOLVER_H_
#define GMPSVM_DIST_DIST_SOLVER_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "device/executor.h"
#include "dist/topology.h"
#include "kernel/kernel_computer.h"
#include "solver/batch_smo_solver.h"
#include "solver/solver_stats.h"
#include "solver/svm_problem.h"

namespace gmpsvm::dist {

// One instance shard of a distributed solve. `device` is the global device
// index in the ClusterTopology; `executor`/`stream` is where the shard's
// work is charged. shards[0] is the coordinator.
struct Shard {
  SimExecutor* executor = nullptr;
  StreamId stream = kDefaultStream;
  int device = 0;
  int64_t begin = 0;
  int64_t end = 0;
};

// Communication accounting of one (or several merged) distributed solves.
struct DistStats {
  int64_t allreduces = 0;        // collective merges performed
  int64_t allreduce_rounds = 0;  // sum of per-merge round counts
  double merge_seconds = 0.0;    // simulated seconds spent in merges
  double intra_node_bytes = 0.0;
  double inter_node_bytes = 0.0;

  void Merge(const DistStats& other);
};

// Deterministic contiguous ranges: shard j gets [j*n/S, (j+1)*n/S).
std::vector<std::pair<int64_t, int64_t>> ContiguousShardRanges(int64_t n,
                                                               int num_shards);

class DistSmoSolver {
 public:
  // `topology` must outlive the solver and cover every shard's device.
  DistSmoSolver(const BatchSmoOptions& options, const ClusterTopology* topology)
      : options_(options), topology_(topology) {}

  // Trains one binary SVM across `shards` (cold start; the warm-retrain path
  // never shards). Requires WorkingSetConfig::DropPolicy::kOldest — the
  // distributed refresh cannot reproduce kLeastViolating's tie behaviour.
  // `stats` and `dist_stats` may be null.
  Result<BinarySolution> Solve(const BinaryProblem& problem,
                               const KernelComputer& computer,
                               std::span<const Shard> shards,
                               SolverStats* stats, DistStats* dist_stats) const;

 private:
  BatchSmoOptions options_;
  const ClusterTopology* topology_;
};

}  // namespace gmpsvm::dist

#endif  // GMPSVM_DIST_DIST_SOLVER_H_
