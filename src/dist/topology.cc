#include "dist/topology.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gmpsvm::dist {

double LinkModel::TransferSeconds(double bytes) const {
  if (bytes <= 0.0) return latency_seconds;
  return latency_seconds + bytes / bandwidth_bytes_per_sec;
}

Status LinkModel::Validate(const char* what) const {
  if (!(bandwidth_bytes_per_sec > 0.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   ": bandwidth_bytes_per_sec must be > 0");
  }
  if (latency_seconds < 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": latency_seconds must be >= 0");
  }
  return Status::OK();
}

LinkModel NvlinkClassLink() {
  LinkModel link;
  link.bandwidth_bytes_per_sec = 300e9;
  link.latency_seconds = 1e-6;
  return link;
}

LinkModel NetworkClassLink() {
  LinkModel link;
  link.bandwidth_bytes_per_sec = 12.5e9;
  link.latency_seconds = 5e-6;
  return link;
}

ClusterTopology ClusterTopology::SingleNode(int num_devices) {
  ClusterTopology topo;
  topo.num_nodes = 1;
  topo.node_of_device.assign(static_cast<size_t>(std::max(num_devices, 0)), 0);
  return topo;
}

ClusterTopology ClusterTopology::Contiguous(int num_nodes, int num_devices,
                                            LinkModel intra, LinkModel inter) {
  GMP_DCHECK(num_nodes >= 1);
  GMP_DCHECK(num_devices >= num_nodes);
  ClusterTopology topo;
  topo.num_nodes = num_nodes;
  topo.intra_node = intra;
  topo.inter_node = inter;
  topo.node_of_device.reserve(static_cast<size_t>(num_devices));
  const int base = num_devices / num_nodes;
  const int extra = num_devices % num_nodes;
  for (int node = 0; node < num_nodes; ++node) {
    const int span = base + (node < extra ? 1 : 0);
    for (int i = 0; i < span; ++i) topo.node_of_device.push_back(node);
  }
  return topo;
}

std::vector<SimNode> ClusterTopology::Nodes() const {
  std::vector<SimNode> nodes(static_cast<size_t>(num_nodes));
  for (int node = 0; node < num_nodes; ++node) {
    nodes[static_cast<size_t>(node)].node = node;
  }
  for (int d = 0; d < num_devices(); ++d) {
    nodes[static_cast<size_t>(node_of(d))].devices.push_back(d);
  }
  return nodes;
}

Status ClusterTopology::Validate() const {
  if (num_nodes < 1) {
    return Status::InvalidArgument("ClusterTopology: num_nodes must be >= 1");
  }
  if (node_of_device.empty()) {
    return Status::InvalidArgument("ClusterTopology: no devices mapped");
  }
  for (int node : node_of_device) {
    if (node < 0 || node >= num_nodes) {
      return Status::InvalidArgument(
          "ClusterTopology: device mapped to node outside [0, num_nodes)");
    }
  }
  Status st = intra_node.Validate("intra_node link");
  if (!st.ok()) return st;
  return inter_node.Validate("inter_node link");
}

AllreduceCost EstimateAllreduce(const ClusterTopology& topology,
                                std::span<const int> devices,
                                double payload_bytes) {
  AllreduceCost cost;
  const int s = static_cast<int>(devices.size());
  if (s <= 1) return cost;
  for (int stride = 1; stride < s; stride <<= 1) {
    ++cost.rounds;
    double round_seconds = 0.0;
    for (int i = 0; i < s; ++i) {
      const int partner = i ^ stride;
      if (partner <= i || partner >= s) continue;  // each active pair once
      const LinkModel& link =
          topology.LinkBetween(devices[static_cast<size_t>(i)],
                               devices[static_cast<size_t>(partner)]);
      round_seconds = std::max(round_seconds, link.TransferSeconds(payload_bytes));
      const double moved = 2.0 * payload_bytes;  // one payload each direction
      if (topology.SameNode(devices[static_cast<size_t>(i)],
                            devices[static_cast<size_t>(partner)])) {
        cost.intra_node_bytes += moved;
      } else {
        cost.inter_node_bytes += moved;
      }
    }
    cost.seconds += round_seconds;
  }
  return cost;
}

}  // namespace gmpsvm::dist
