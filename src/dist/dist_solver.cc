#include "dist/dist_solver.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"
#include "solver/kernel_buffer.h"
#include "solver/working_set.h"

namespace gmpsvm::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Same per-item constants as the single-device solver; the distributed solver
// charges each pass per shard over the shard's range length.
TaskCost VectorPassCost(int64_t n, double flops_per_item, double bytes_per_item) {
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = flops_per_item * static_cast<double>(n);
  cost.bytes_read = bytes_per_item * static_cast<double>(n);
  return cost;
}

// Serialized size of one working-set candidate: (int32 index, double f).
constexpr double kCandidateBytes = 12.0;

// Joins all shard streams at (max stream time) + the allreduce duration for
// `payload_bytes`, and accounts the merge. A zero payload is a pure barrier
// (it still pays per-round link latency).
void AllreduceBarrier(std::span<const Shard> shards,
                      const ClusterTopology& topology,
                      std::span<const int> devices, double payload_bytes,
                      const char* label, DistStats* dist_stats) {
  double t = 0.0;
  for (const Shard& shard : shards) {
    t = std::max(t, shard.executor->StreamTime(shard.stream));
  }
  const AllreduceCost cost = EstimateAllreduce(topology, devices, payload_bytes);
  for (const Shard& shard : shards) {
    const double dt =
        t + cost.seconds - shard.executor->StreamTime(shard.stream);
    if (dt > 0.0) shard.executor->AdvanceStream(shard.stream, dt, label);
  }
  if (dist_stats != nullptr) {
    ++dist_stats->allreduces;
    dist_stats->allreduce_rounds += cost.rounds;
    dist_stats->merge_seconds += cost.seconds;
    dist_stats->intra_node_bytes += cost.intra_node_bytes;
    dist_stats->inter_node_bytes += cost.inter_node_bytes;
  }
}

}  // namespace

void DistStats::Merge(const DistStats& other) {
  allreduces += other.allreduces;
  allreduce_rounds += other.allreduce_rounds;
  merge_seconds += other.merge_seconds;
  intra_node_bytes += other.intra_node_bytes;
  inter_node_bytes += other.inter_node_bytes;
}

std::vector<std::pair<int64_t, int64_t>> ContiguousShardRanges(int64_t n,
                                                               int num_shards) {
  std::vector<std::pair<int64_t, int64_t>> ranges;
  if (num_shards < 1) return ranges;
  ranges.reserve(static_cast<size_t>(num_shards));
  const int64_t s = num_shards;
  for (int64_t j = 0; j < s; ++j) {
    ranges.emplace_back(j * n / s, (j + 1) * n / s);
  }
  return ranges;
}

Result<BinarySolution> DistSmoSolver::Solve(const BinaryProblem& problem,
                                            const KernelComputer& computer,
                                            std::span<const Shard> shards,
                                            SolverStats* stats,
                                            DistStats* dist_stats) const {
  GMP_RETURN_NOT_OK(options_.Validate());
  if (options_.working_set.drop_policy !=
      WorkingSetConfig::DropPolicy::kOldest) {
    return Status::InvalidArgument(
        "distributed solve requires DropPolicy::kOldest");
  }
  if (topology_ == nullptr) {
    return Status::InvalidArgument("distributed solve requires a topology");
  }
  if (shards.empty()) {
    return Status::InvalidArgument("distributed solve requires >= 1 shard");
  }
  const int64_t n = problem.n();
  if (n < 2) {
    return Status::InvalidArgument("binary problem needs at least 2 instances");
  }
  if (problem.C <= 0) {
    return Status::InvalidArgument("C must be positive");
  }
  int64_t cursor = 0;
  for (size_t si = 0; si < shards.size(); ++si) {
    const Shard& shard = shards[si];
    if (shard.executor == nullptr) {
      return Status::InvalidArgument("shard executor is null");
    }
    if (shard.begin != cursor || shard.end <= shard.begin) {
      return Status::InvalidArgument(
          "shards must be non-empty contiguous ranges covering [0, n)");
    }
    cursor = shard.end;
    if (shard.device < 0 || shard.device >= topology_->num_devices()) {
      return Status::InvalidArgument("shard device outside the topology");
    }
    // Fault parity with the single-device solver requires a single injector
    // consult sequence; only the coordinator may carry one.
    if (si > 0 && shard.executor->fault_injector() != nullptr) {
      return Status::InvalidArgument(
          "only the coordinator shard may have a fault injector");
    }
  }
  if (cursor != n) {
    return Status::InvalidArgument("shards do not cover the problem");
  }

  std::vector<int> devices(shards.size());
  for (size_t si = 0; si < shards.size(); ++si) devices[si] = shards[si].device;

  SimExecutor* coord = shards[0].executor;
  const StreamId coord_stream = shards[0].stream;

  const auto& y = problem.y;
  const std::span<const int8_t> y_span(y);
  std::vector<double> cvec(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    cvec[static_cast<size_t>(i)] = problem.CFor(y[static_cast<size_t>(i)]);
  }

  WorkingSetSelector selector(options_.working_set, n);
  const int ws_size = selector.ws_size();
  const int64_t buffer_rows =
      std::max<int64_t>(options_.buffer_rows > 0 ? options_.buffer_rows : ws_size,
                        ws_size);

  // The buffer is column-sharded: each shard reserves the slice of every
  // buffered row covering its own range (slices sum to the single-device
  // footprint). The coordinator reserves first, with the single-device retry
  // loop, so the kDeviceAlloc consult sequence is unchanged; secondary shard
  // executors are injector-free, so their reservations only fail on genuine
  // OOM.
  std::vector<DeviceAllocation> reservations;
  if (options_.buffer_on_device) {
    reservations.reserve(shards.size());
    for (size_t si = 0; si < shards.size(); ++si) {
      const Shard& shard = shards[si];
      const size_t slice_bytes =
          static_cast<size_t>(buffer_rows * (shard.end - shard.begin)) *
          sizeof(double);
      if (si == 0) {
        for (int attempt = 1;; ++attempt) {
          auto reservation = shard.executor->Allocate(slice_bytes);
          if (reservation.ok()) {
            reservations.push_back(std::move(*reservation));
            break;
          }
          if (!reservation.status().IsUnavailable() ||
              attempt >= options_.max_alloc_retries) {
            return reservation.status();
          }
          if (stats != nullptr) ++stats->alloc_retries;
        }
      } else {
        GMP_ASSIGN_OR_RETURN(DeviceAllocation reservation,
                             shard.executor->Allocate(slice_bytes));
        reservations.push_back(std::move(reservation));
      }
    }
  }
  KernelBuffer buffer(n, buffer_rows, options_.buffer_policy);
  buffer.SetFaultInjector(coord->fault_injector());

  // Solver state (host-resident; shards charge their slices of each pass).
  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  std::vector<double> f(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    f[static_cast<size_t>(i)] = -static_cast<double>(y[static_cast<size_t>(i)]);
  }
  for (const Shard& shard : shards) {
    shard.executor->Charge(
        shard.stream, VectorPassCost(shard.end - shard.begin, 1.0, sizeof(double)));
  }

  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    diag[static_cast<size_t>(i)] =
        computer.SelfKernelA(problem.rows[static_cast<size_t>(i)]);
  }
  for (const Shard& shard : shards) {
    shard.executor->Charge(
        shard.stream, VectorPassCost(shard.end - shard.begin, 2.0, sizeof(double)));
  }

  const int max_inner =
      options_.max_inner > 0 ? options_.max_inner : std::max(2, ws_size / 2);

  const double time_base = coord->StreamTime(coord_stream);
  double kernel_time = 0.0;
  double subproblem_time = 0.0;

  std::vector<int32_t> present, missing, missing_globals;
  std::vector<double> block_scratch;
  std::vector<WorkingSetSelector::ShardCandidates> candidates(shards.size());
  std::vector<double*> row_ptr(static_cast<size_t>(n), nullptr);
  std::vector<double> delta_alpha(static_cast<size_t>(n), 0.0);
  std::vector<uint8_t> in_ws(static_cast<size_t>(n), 0);
  int64_t iterations = 0;
  int64_t rounds = 0;
  double delta0 = -1.0;

  for (;; ++rounds) {
    if (rounds >= options_.max_outer_rounds) {
      GMP_LOG(Warning) << "distributed batch SMO hit max_outer_rounds";
      break;
    }

    // Global convergence check: per-shard partial reductions merged by one
    // tiny allreduce. min/max merge bit-identically in any order.
    double f_up_min = kInf, f_low_max = -kInf;
    for (int64_t i = 0; i < n; ++i) {
      const double fi = f[static_cast<size_t>(i)];
      const double a = alpha[static_cast<size_t>(i)];
      if (InUpSet(y[static_cast<size_t>(i)], a, cvec[static_cast<size_t>(i)])) {
        f_up_min = std::min(f_up_min, fi);
      }
      if (InLowSet(y[static_cast<size_t>(i)], a, cvec[static_cast<size_t>(i)])) {
        f_low_max = std::max(f_low_max, fi);
      }
    }
    for (const Shard& shard : shards) {
      shard.executor->Charge(
          shard.stream,
          VectorPassCost(shard.end - shard.begin, 2.0, 2 * sizeof(double)));
    }
    AllreduceBarrier(shards, *topology_, devices, 2 * sizeof(double),
                     "allreduce_delta", dist_stats);
    const double delta = f_low_max - f_up_min;
    if (delta < options_.eps) break;
    if (delta0 < 0) delta0 = delta;

    // Working-set refresh: each shard sorts its own candidates; the merge
    // admits exactly what Update()'s full sort would (see working_set.h).
    const int needed = selector.BeginDistributedRefresh();
    for (size_t si = 0; si < shards.size(); ++si) {
      const Shard& shard = shards[si];
      const int64_t len = shard.end - shard.begin;
      shard.executor->Charge(
          shard.stream,
          VectorPassCost(len, 2.0 * std::log2(static_cast<double>(len) + 2.0),
                         2 * sizeof(double)));
      candidates[si] = selector.CollectShardCandidates(shard.begin, shard.end,
                                                       needed, f, alpha, y_span,
                                                       cvec);
    }
    AllreduceBarrier(shards, *topology_, devices,
                     2.0 * static_cast<double>(needed) * kCandidateBytes,
                     "allreduce_ws", dist_stats);
    const std::vector<int32_t>& ws =
        selector.FinishDistributedRefresh(candidates, f, alpha, y_span, cvec);

    buffer.Pin(ws);
    buffer.Partition(ws, &present, &missing);
    if (!missing.empty()) {
      const double t0 = coord->StreamTime(coord_stream);
      GMP_ASSIGN_OR_RETURN(std::vector<double*> slots, buffer.InsertBatch(missing));
      // The batched row launch is one logical operation; its transient-fault
      // retry loop runs against the coordinator's injector exactly as on a
      // single device.
      fault::FaultInjector* injector = coord->fault_injector();
      int failed_attempts = 0;
      while (injector != nullptr &&
             injector->ShouldInject(fault::Site::kKernelRowBatch)) {
        coord->Charge(coord_stream, TaskCost{});  // failed launch overhead
        if (stats != nullptr) ++stats->kernel_row_retries;
        if (++failed_attempts >= options_.max_row_batch_retries) {
          return Status::Unavailable(
              StrPrintf("kernel row batch failed %d times on stream %d",
                        failed_attempts, coord_stream));
        }
      }
      // Each shard computes the slice of every missing row covering its own
      // range. Block values are per-element independent of the target subset
      // (kernel_computer.h), so the concatenated slices are bit-identical to
      // the single-device full rows.
      missing_globals.resize(missing.size());
      for (size_t k = 0; k < missing.size(); ++k) {
        missing_globals[k] =
            problem.rows[static_cast<size_t>(missing[k])];
      }
      for (const Shard& shard : shards) {
        const int64_t len = shard.end - shard.begin;
        const std::span<const int32_t> targets(
            problem.rows.data() + shard.begin, static_cast<size_t>(len));
        block_scratch.resize(missing.size() * static_cast<size_t>(len));
        computer.ComputeBlock(missing_globals, targets, shard.executor,
                              shard.stream, block_scratch.data());
        for (size_t k = 0; k < missing.size(); ++k) {
          std::memcpy(slots[k] + shard.begin,
                      block_scratch.data() + k * static_cast<size_t>(len),
                      static_cast<size_t>(len) * sizeof(double));
        }
        TaskCost copy_cost;
        copy_cost.parallel_items = static_cast<int64_t>(missing.size()) * len;
        copy_cost.bytes_read =
            static_cast<double>(missing.size()) * static_cast<double>(len) *
            sizeof(double);
        copy_cost.bytes_written = copy_cost.bytes_read;
        shard.executor->Charge(shard.stream, copy_cost);
      }
      // The inner loop (coordinator) reads fresh rows only at working-set
      // columns: gather those entries of every computed row.
      AllreduceBarrier(shards, *topology_, devices,
                       static_cast<double>(missing.size()) *
                           static_cast<double>(ws_size) * sizeof(double),
                       "ws_gather", dist_stats);
      kernel_time += coord->StreamTime(coord_stream) - t0;
      if (stats != nullptr) {
        stats->kernel_rows_computed += static_cast<int64_t>(missing.size());
      }
    }
    if (!present.empty()) {
      for (const Shard& shard : shards) {
        shard.executor->counters().kernel_values_reused +=
            static_cast<int64_t>(present.size()) * (shard.end - shard.begin);
      }
      if (stats != nullptr) {
        stats->kernel_rows_reused += static_cast<int64_t>(present.size());
      }
    }
    std::fill(in_ws.begin(), in_ws.end(), 0);
    for (int32_t w : ws) {
      row_ptr[static_cast<size_t>(w)] = const_cast<double*>(buffer.Lookup(w));
      GMP_DCHECK(row_ptr[static_cast<size_t>(w)] != nullptr);
      in_ws[static_cast<size_t>(w)] = 1;
    }

    // Inner loop on the coordinator — verbatim the single-device subproblem
    // batch, so every alpha/f update is the same arithmetic in the same
    // order.
    const double inner_t0 = coord->StreamTime(coord_stream);
    int budget = max_inner;
    if (options_.inner_policy == BatchSmoOptions::InnerPolicy::kDeltaAdaptive) {
      const double ratio = std::clamp(delta / delta0, 0.0, 1.0);
      budget = std::max(16, static_cast<int>(max_inner * (1.0 - 0.75 * ratio)));
      budget = std::min(budget, max_inner);
    }
    std::fill(delta_alpha.begin(), delta_alpha.end(), 0.0);
    int inner_done = 0;
    for (; inner_done < budget; ++inner_done) {
      int32_t u = -1;
      double f_u = kInf;
      for (int32_t w : ws) {
        if (InUpSet(y[static_cast<size_t>(w)], alpha[static_cast<size_t>(w)],
                    cvec[static_cast<size_t>(w)]) &&
            f[static_cast<size_t>(w)] < f_u) {
          f_u = f[static_cast<size_t>(w)];
          u = w;
        }
      }
      if (u < 0) break;
      const double* row_u = row_ptr[static_cast<size_t>(u)];

      int32_t l = -1;
      double best_gain = 0.0;
      double ws_low_max = -kInf;
      for (int32_t w : ws) {
        if (!InLowSet(y[static_cast<size_t>(w)], alpha[static_cast<size_t>(w)],
                      cvec[static_cast<size_t>(w)])) {
          continue;
        }
        const double f_w = f[static_cast<size_t>(w)];
        ws_low_max = std::max(ws_low_max, f_w);
        const double grad_diff = f_w - f_u;
        if (grad_diff > 0) {
          double eta = diag[static_cast<size_t>(u)] +
                       diag[static_cast<size_t>(w)] - 2.0 * row_u[w];
          if (eta <= 0) eta = 1e-12;
          const double gain = grad_diff * grad_diff / eta;
          if (gain > best_gain) {
            best_gain = gain;
            l = w;
          }
        }
      }
      if (l < 0 || ws_low_max - f_u < std::max(options_.eps * 0.5, 0.0)) break;

      const double* row_l = row_ptr[static_cast<size_t>(l)];
      const SmoPairDelta upd = SmoUpdatePair(
          u, l, y_span, cvec[static_cast<size_t>(u)],
          cvec[static_cast<size_t>(l)], diag[static_cast<size_t>(u)],
          diag[static_cast<size_t>(l)], row_u[l], f, alpha);
      delta_alpha[static_cast<size_t>(u)] += upd.d_alpha_u;
      delta_alpha[static_cast<size_t>(l)] += upd.d_alpha_l;

      const double yu_dau = y[static_cast<size_t>(u)] * upd.d_alpha_u;
      const double yl_dal = y[static_cast<size_t>(l)] * upd.d_alpha_l;
      for (int32_t w : ws) {
        f[static_cast<size_t>(w)] += yu_dau * row_u[w] + yl_dal * row_l[w];
      }
    }
    if (inner_done > 0) {
      coord->Charge(coord_stream,
                    VectorPassCost(ws_size, 12.0 * static_cast<double>(inner_done),
                                   4.0 * static_cast<double>(inner_done) *
                                       sizeof(double)));
    }
    iterations += inner_done;
    subproblem_time += coord->StreamTime(coord_stream) - inner_t0;

    // Broadcast the batch's net alpha deltas so every shard can update its
    // slice of f.
    AllreduceBarrier(shards, *topology_, devices,
                     static_cast<double>(ws_size) * sizeof(double),
                     "allreduce_alpha", dist_stats);

    // Aggregate f update to non-members, in the single-device element order
    // (w outer, i inner) — each shard charges only its own slice.
    int changed = 0;
    for (int32_t w : ws) {
      const double da = delta_alpha[static_cast<size_t>(w)];
      if (da == 0.0) continue;
      ++changed;
      const double yda = y[static_cast<size_t>(w)] * da;
      const double* row_w = row_ptr[static_cast<size_t>(w)];
      for (int64_t i = 0; i < n; ++i) {
        if (!in_ws[static_cast<size_t>(i)]) {
          f[static_cast<size_t>(i)] += yda * row_w[i];
        }
      }
    }
    if (changed > 0) {
      for (const Shard& shard : shards) {
        shard.executor->Charge(
            shard.stream,
            VectorPassCost(shard.end - shard.begin, 2.0 * changed,
                           static_cast<double>(changed) * sizeof(double)));
      }
    } else if (inner_done == 0) {
      GMP_LOG(Warning) << "distributed batch SMO stalled at delta=" << delta;
      break;
    }
  }

  // Final sync: the pair finishes when every shard's stream has drained.
  AllreduceBarrier(shards, *topology_, devices, 0.0, "dist_sync", dist_stats);

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->outer_rounds += rounds;
    stats->rows_poisoned += buffer.rows_poisoned();
    stats->phases.Add("kernel_values", kernel_time);
    stats->phases.Add("subproblem", subproblem_time);
    stats->phases.Add("other", coord->StreamTime(coord_stream) - time_base -
                                   kernel_time - subproblem_time);
  }

  // Bias and objective exactly as in the single-device solver.
  double sum_free = 0.0;
  int64_t num_free = 0;
  double f_up_min = kInf, f_low_max = -kInf;
  for (int64_t i = 0; i < n; ++i) {
    const double a = alpha[static_cast<size_t>(i)];
    const double fi = f[static_cast<size_t>(i)];
    if (a > 0 && a < cvec[static_cast<size_t>(i)]) {
      sum_free += fi;
      ++num_free;
    }
    if (InUpSet(y[static_cast<size_t>(i)], a, cvec[static_cast<size_t>(i)])) {
      f_up_min = std::min(f_up_min, fi);
    }
    if (InLowSet(y[static_cast<size_t>(i)], a, cvec[static_cast<size_t>(i)])) {
      f_low_max = std::max(f_low_max, fi);
    }
  }
  const double rho = num_free > 0 ? sum_free / static_cast<double>(num_free)
                                  : (f_up_min + f_low_max) / 2.0;

  double objective = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    objective += alpha[static_cast<size_t>(i)] *
                 (y[static_cast<size_t>(i)] * f[static_cast<size_t>(i)] - 1.0);
  }
  objective *= -0.5;

  BinarySolution solution;
  solution.alpha = std::move(alpha);
  solution.bias = -rho;
  solution.objective = objective;
  solution.f = std::move(f);
  return solution;
}

}  // namespace gmpsvm::dist
