// Simulated multi-node cluster topology and the network cost model.
//
// A ClusterTopology groups the cluster's flat device list into SimNodes and
// prices the links between devices: peers on one node talk over the
// intra-node link (NVLink/PCIe-peer class), devices on different nodes over
// the inter-node link (datacenter network class). The distributed solver
// (dist_solver.h) charges its merge steps through EstimateAllreduce, and the
// pair scheduler uses the same estimate to decide whether sharding a pair's
// instances across devices beats pair-level placement (docs/cost_model.md).
//
// Like the rest of the substrate this is a COST model only: merge arithmetic
// runs exactly on the host; the topology decides how much simulated time and
// link traffic each merge charges, never the numbers it produces.

#ifndef GMPSVM_DIST_TOPOLOGY_H_
#define GMPSVM_DIST_TOPOLOGY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace gmpsvm::dist {

// Bandwidth/latency of one interconnect class.
struct LinkModel {
  double bandwidth_bytes_per_sec = 12.5e9;  // ~100 Gb/s network default
  double latency_seconds = 5e-6;

  // Seconds to move `bytes` over this link: latency + bytes / bandwidth.
  double TransferSeconds(double bytes) const;

  // Rejects non-positive bandwidth and negative latency; `what` names the
  // link in the error message.
  Status Validate(const char* what) const;
};

// The default intra-node link: NVLink-class, ~300 GB/s at sub-microsecond
// latency.
LinkModel NvlinkClassLink();

// The default inter-node link: 100 Gb/s network at 5 us latency.
LinkModel NetworkClassLink();

// A named group of devices forming one simulated node.
struct SimNode {
  int node = 0;
  std::vector<int> devices;  // ascending global device indices
};

struct ClusterTopology {
  int num_nodes = 1;
  std::vector<int> node_of_device;  // device -> node
  LinkModel intra_node = NvlinkClassLink();
  LinkModel inter_node = NetworkClassLink();

  // All devices on one node (every link intra-node).
  static ClusterTopology SingleNode(int num_devices);

  // `num_devices` split contiguously across `num_nodes`; the first
  // (num_devices % num_nodes) nodes take one extra device.
  static ClusterTopology Contiguous(int num_nodes, int num_devices,
                                    LinkModel intra, LinkModel inter);

  int num_devices() const { return static_cast<int>(node_of_device.size()); }
  int node_of(int device) const {
    return node_of_device[static_cast<size_t>(device)];
  }
  bool SameNode(int a, int b) const { return node_of(a) == node_of(b); }
  const LinkModel& LinkBetween(int a, int b) const {
    return SameNode(a, b) ? intra_node : inter_node;
  }

  // The node groups in ascending node order (empty nodes included).
  std::vector<SimNode> Nodes() const;

  // Rejects an empty device map, node ids outside [0, num_nodes), and
  // invalid links.
  Status Validate() const;
};

// Cost of one allreduce across a shard group under a topology.
struct AllreduceCost {
  double seconds = 0.0;
  int rounds = 0;
  // Link traffic, split by link class. Each active pair in a round moves the
  // payload once in each direction; the totals count both directions.
  double intra_node_bytes = 0.0;
  double inter_node_bytes = 0.0;
};

// Prices a recursive-doubling allreduce of `payload_bytes` across `devices`
// (global device indices): ceil(log2(S)) rounds; in round r device i pairs
// with device i XOR 2^r (by group position), and the round takes as long as
// its slowest active link. Groups of one (or zero) devices cost nothing.
AllreduceCost EstimateAllreduce(const ClusterTopology& topology,
                                std::span<const int> devices,
                                double payload_bytes);

}  // namespace gmpsvm::dist

#endif  // GMPSVM_DIST_TOPOLOGY_H_
