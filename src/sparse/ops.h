// Sparse linear-algebra kernels (the cuSPARSE-equivalent substrate).
//
// The routines are pure host computation; each returns an OpStats describing
// the work actually performed, which callers charge to a SimExecutor stream.
// Keeping compute and accounting separate lets the same math back every
// substrate model.
//
// Each routine optionally takes a ThreadPool: batch rows are independent
// (disjoint output slices, per-thread scatter workspaces), so they are
// partitioned across the pool, while the OpStats accumulation always replays
// the serial order — results and stats are byte-identical for any pool size,
// including none.
//
// Inner dot products run on the SIMD kernel tier (src/simd): each routine
// optionally takes a `const simd::SimdOps*` (nullptr = the process-wide
// active tier). Every tier computes the canonical blocked-tree reduction, so
// results are additionally byte-identical across tiers — see simd/simd.h.

#ifndef GMPSVM_SPARSE_OPS_H_
#define GMPSVM_SPARSE_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "simd/simd.h"
#include "sparse/csr_matrix.h"
#include "sparse/dense_matrix.h"

namespace gmpsvm {

class ThreadPool;

// Work performed by one sparse op.
struct OpStats {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  OpStats& operator+=(const OpStats& o) {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
};

// Batched sparse row-dot products (the SpMM X_B · X_Tᵀ used to compute kernel
// rows in one shot, Section 3.3.1):
//   out[b * targets.size() + j] = X.row(batch[b]) · X.row(targets[j])
// Implemented by scattering each batch row into a dense workspace and
// streaming the target rows through it — O(|batch| * nnz(targets) +
// |batch| * dim), the standard row-wise SpGEMM schedule.
//
// `out` must have batch.size() * targets.size() entries.
OpStats BatchRowDots(const CsrMatrix& x, std::span<const int32_t> batch,
                     std::span<const int32_t> targets, double* out,
                     ThreadPool* pool = nullptr,
                     const simd::SimdOps* ops = nullptr);

// As above but dotting rows of `a` (by index `batch`) against rows of `b`
// (by index `targets`); used for test-instances x support-vectors products.
OpStats BatchRowDots2(const CsrMatrix& a, std::span<const int32_t> batch,
                      const CsrMatrix& b, std::span<const int32_t> targets,
                      double* out, ThreadPool* pool = nullptr,
                      const simd::SimdOps* ops = nullptr);

// Single-row slice of BatchRowDots2: dots a.row(row) against an arbitrary
// subset of b's rows through the same scatter workspace, so out[j] is
// bit-identical to the (row, targets[j]) entry of any batched block —
// regardless of which other targets are requested alongside it. Pure host
// computation; the returned OpStats charges the row exactly like one batch
// row of BatchRowDots2 (2 flops per streamed target nonzero; the row and the
// target nonzeros read once), so lazy per-row consumers — the prediction
// cascade — account costs like the batched paths do.
OpStats ScatterRowDots(const CsrMatrix& a, int64_t row, const CsrMatrix& b,
                       std::span<const int32_t> targets, double* out,
                       const simd::SimdOps* ops = nullptr);

// Dense counterpart over DenseMatrix rows; O(|batch| * |targets| * dim).
OpStats DenseBatchRowDots(const DenseMatrix& x, std::span<const int32_t> batch,
                          std::span<const int32_t> targets, double* out,
                          ThreadPool* pool = nullptr);

// y = alpha * A.row-dots(v): sparse matrix (selected rows) times dense
// vector; out[j] = X.row(rows[j]) · v. Used by decision-value computation.
OpStats SpMV(const CsrMatrix& x, std::span<const int32_t> rows,
             std::span<const double> v, double* out,
             ThreadPool* pool = nullptr, const simd::SimdOps* ops = nullptr);

}  // namespace gmpsvm

#endif  // GMPSVM_SPARSE_OPS_H_
