#include "sparse/ops.h"

#include <cstring>

namespace gmpsvm {
namespace {

// Scatter/gather core shared by the two CSR batch-dot variants.
OpStats BatchRowDotsImpl(const CsrMatrix& a, std::span<const int32_t> batch,
                         const CsrMatrix& b, std::span<const int32_t> targets,
                         double* out) {
  OpStats stats;
  std::vector<double> workspace(static_cast<size_t>(a.cols()), 0.0);
  const size_t num_targets = targets.size();
  double nnz_targets_once = 0.0;
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    const int64_t row = batch[bi];
    const auto idx = a.RowIndices(row);
    const auto val = a.RowValues(row);
    for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = val[p];

    double* out_row = out + bi * num_targets;
    double nnz_streamed = 0.0;
    for (size_t tj = 0; tj < num_targets; ++tj) {
      const int64_t trow = targets[tj];
      const auto tidx = b.RowIndices(trow);
      const auto tval = b.RowValues(trow);
      double dot = 0.0;
      for (size_t p = 0; p < tidx.size(); ++p) dot += workspace[tidx[p]] * tval[p];
      out_row[tj] = dot;
      nnz_streamed += static_cast<double>(tidx.size());
    }

    for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = 0.0;

    stats.flops += 2.0 * nnz_streamed;
    // Per-row traffic: the batch row itself; the target matrix is tiled
    // through on-chip memory and read from DRAM once per *batch*, not once
    // per row — this amortization is why computing q rows together is far
    // cheaper per row than computing them one by one (Section 3.3.1's
    // ">10x cheaper when q > 10" claim; see bench_ablation_batch_rows).
    stats.bytes_read +=
        static_cast<double>(idx.size()) * (sizeof(double) + sizeof(int32_t));
    stats.bytes_written += static_cast<double>(num_targets) * sizeof(double);
    nnz_targets_once = nnz_streamed;
  }
  stats.bytes_read += nnz_targets_once * (sizeof(double) + sizeof(int32_t));
  return stats;
}

}  // namespace

OpStats BatchRowDots(const CsrMatrix& x, std::span<const int32_t> batch,
                     std::span<const int32_t> targets, double* out) {
  return BatchRowDotsImpl(x, batch, x, targets, out);
}

OpStats BatchRowDots2(const CsrMatrix& a, std::span<const int32_t> batch,
                      const CsrMatrix& b, std::span<const int32_t> targets,
                      double* out) {
  return BatchRowDotsImpl(a, batch, b, targets, out);
}

OpStats DenseBatchRowDots(const DenseMatrix& x, std::span<const int32_t> batch,
                          std::span<const int32_t> targets, double* out) {
  OpStats stats;
  const size_t num_targets = targets.size();
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    double* out_row = out + bi * num_targets;
    for (size_t tj = 0; tj < num_targets; ++tj) {
      out_row[tj] = x.RowDot(batch[bi], targets[tj]);
    }
  }
  const double cols = static_cast<double>(x.cols());
  const double pairs = static_cast<double>(batch.size() * num_targets);
  stats.flops = 2.0 * pairs * cols;
  // Same tiling amortization as the sparse path: batch rows read per row,
  // target matrix read once per batch.
  stats.bytes_read = (static_cast<double>(batch.size()) * cols +
                      static_cast<double>(num_targets) * cols) *
                     sizeof(double);
  stats.bytes_written = pairs * sizeof(double);
  return stats;
}

OpStats SpMV(const CsrMatrix& x, std::span<const int32_t> rows,
             std::span<const double> v, double* out) {
  OpStats stats;
  double nnz_streamed = 0.0;
  for (size_t j = 0; j < rows.size(); ++j) {
    const int64_t row = rows[j];
    const auto idx = x.RowIndices(row);
    const auto val = x.RowValues(row);
    double dot = 0.0;
    for (size_t p = 0; p < idx.size(); ++p) dot += val[p] * v[idx[p]];
    out[j] = dot;
    nnz_streamed += static_cast<double>(idx.size());
  }
  stats.flops = 2.0 * nnz_streamed;
  stats.bytes_read = nnz_streamed * (sizeof(double) + sizeof(int32_t));
  stats.bytes_written = static_cast<double>(rows.size()) * sizeof(double);
  return stats;
}

}  // namespace gmpsvm
