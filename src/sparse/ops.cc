#include "sparse/ops.h"

#include <cstring>

#include "common/thread_pool.h"

namespace gmpsvm {
namespace {

// Reusable scatter workspace, one per thread, grown on demand. Every routine
// leaves the entries it touched at zero again (rows are un-scattered after
// use), so reuse across calls — and across matrices of different widths — is
// safe, and the former per-call O(cols) allocation in the solver's inner loop
// is gone.
std::vector<double>& ScatterWorkspace(int64_t cols) {
  static thread_local std::vector<double> workspace;
  if (workspace.size() < static_cast<size_t>(cols)) {
    workspace.resize(static_cast<size_t>(cols), 0.0);
  }
  return workspace;
}

void RunRows(ThreadPool* pool, int64_t n, int64_t min_chunk,
             const std::function<void(int64_t, int64_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, body, min_chunk);
  } else if (n > 0) {
    body(0, n);
  }
}

// Scatter/gather core shared by the two CSR batch-dot variants. Batch rows
// write disjoint `out` slices, so they are partitioned across the pool; the
// stats below replay the serial accumulation order so the returned doubles
// are bit-identical for any pool size. The inner gather-dot runs on the
// SIMD tier's canonical blocked-tree reduction, so they are also
// bit-identical across tiers.
OpStats BatchRowDotsImpl(const CsrMatrix& a, std::span<const int32_t> batch,
                         const CsrMatrix& b, std::span<const int32_t> targets,
                         double* out, ThreadPool* pool,
                         const simd::SimdOps* ops) {
  const simd::SimdOps& simd_ops =
      ops != nullptr ? *ops : simd::OpsFor(simd::SimdTier::kAuto);
  const size_t num_targets = targets.size();
  const int64_t t_start = simd::NowNanos();
  RunRows(pool, static_cast<int64_t>(batch.size()), /*min_chunk=*/1,
          [&](int64_t begin, int64_t end) {
            std::vector<double>& workspace = ScatterWorkspace(a.cols());
            for (int64_t bi = begin; bi < end; ++bi) {
              const int64_t row = batch[static_cast<size_t>(bi)];
              const auto idx = a.RowIndices(row);
              const auto val = a.RowValues(row);
              for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = val[p];

              double* out_row = out + bi * static_cast<int64_t>(num_targets);
              for (size_t tj = 0; tj < num_targets; ++tj) {
                const int64_t trow = targets[tj];
                const auto tidx = b.RowIndices(trow);
                const auto tval = b.RowValues(trow);
                out_row[tj] = simd_ops.gather_dot(
                    tval.data(), tidx.data(),
                    static_cast<int64_t>(tidx.size()), workspace.data());
              }

              for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = 0.0;
            }
          });
  const int64_t t_nanos = simd::NowNanos() - t_start;

  // Every batch row streams the same target set, so the per-row nnz total is
  // one value; accumulate it in target order exactly as the compute loop
  // used to.
  double nnz_targets = 0.0;
  if (!batch.empty()) {
    for (size_t tj = 0; tj < num_targets; ++tj) {
      nnz_targets += static_cast<double>(b.RowIndices(targets[tj]).size());
    }
  }
  OpStats stats;
  double nnz_targets_once = 0.0;
  for (size_t bi = 0; bi < batch.size(); ++bi) {
    stats.flops += 2.0 * nnz_targets;
    // Per-row traffic: the batch row itself; the target matrix is tiled
    // through on-chip memory and read from DRAM once per *batch*, not once
    // per row — this amortization is why computing q rows together is far
    // cheaper per row than computing them one by one (Section 3.3.1's
    // ">10x cheaper when q > 10" claim; see bench_ablation_batch_rows).
    stats.bytes_read += static_cast<double>(a.RowIndices(batch[bi]).size()) *
                        (sizeof(double) + sizeof(int32_t));
    stats.bytes_written += static_cast<double>(num_targets) * sizeof(double);
    nnz_targets_once = nnz_targets;
  }
  stats.bytes_read += nnz_targets_once * (sizeof(double) + sizeof(int32_t));
  simd::RecordPath(simd::SimdPath::kBatchRowDots,
                   static_cast<int64_t>(batch.size()) *
                       static_cast<int64_t>(nnz_targets),
                   2.0 * static_cast<double>(batch.size()) * nnz_targets,
                   t_nanos);
  return stats;
}

}  // namespace

OpStats BatchRowDots(const CsrMatrix& x, std::span<const int32_t> batch,
                     std::span<const int32_t> targets, double* out,
                     ThreadPool* pool, const simd::SimdOps* ops) {
  return BatchRowDotsImpl(x, batch, x, targets, out, pool, ops);
}

OpStats BatchRowDots2(const CsrMatrix& a, std::span<const int32_t> batch,
                      const CsrMatrix& b, std::span<const int32_t> targets,
                      double* out, ThreadPool* pool, const simd::SimdOps* ops) {
  return BatchRowDotsImpl(a, batch, b, targets, out, pool, ops);
}

OpStats ScatterRowDots(const CsrMatrix& a, int64_t row, const CsrMatrix& b,
                       std::span<const int32_t> targets, double* out,
                       const simd::SimdOps* ops) {
  const simd::SimdOps& simd_ops =
      ops != nullptr ? *ops : simd::OpsFor(simd::SimdTier::kAuto);
  std::vector<double>& workspace = ScatterWorkspace(a.cols());
  const auto idx = a.RowIndices(row);
  const auto val = a.RowValues(row);
  for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = val[p];
  int64_t nnz_targets = 0;
  for (size_t tj = 0; tj < targets.size(); ++tj) {
    const int64_t trow = targets[tj];
    const auto tidx = b.RowIndices(trow);
    const auto tval = b.RowValues(trow);
    out[tj] = simd_ops.gather_dot(tval.data(), tidx.data(),
                                  static_cast<int64_t>(tidx.size()),
                                  workspace.data());
    nnz_targets += static_cast<int64_t>(tidx.size());
  }
  for (size_t p = 0; p < idx.size(); ++p) workspace[idx[p]] = 0.0;

  // Charged like one batch row of BatchRowDots2: the scattered row and the
  // streamed target nonzeros read once, one output double per target. Called
  // from inside parallel per-row loops, so no wall time is recorded here
  // (counters only — see docs/performance.md).
  OpStats stats;
  stats.flops = 2.0 * static_cast<double>(nnz_targets);
  stats.bytes_read =
      (static_cast<double>(idx.size()) + static_cast<double>(nnz_targets)) *
      (sizeof(double) + sizeof(int32_t));
  stats.bytes_written = static_cast<double>(targets.size()) * sizeof(double);
  simd::RecordPath(simd::SimdPath::kScatterRowDots, nnz_targets, stats.flops);
  return stats;
}

OpStats DenseBatchRowDots(const DenseMatrix& x, std::span<const int32_t> batch,
                          std::span<const int32_t> targets, double* out,
                          ThreadPool* pool) {
  const size_t num_targets = targets.size();
  RunRows(pool, static_cast<int64_t>(batch.size()), /*min_chunk=*/1,
          [&](int64_t begin, int64_t end) {
            for (int64_t bi = begin; bi < end; ++bi) {
              double* out_row = out + bi * static_cast<int64_t>(num_targets);
              for (size_t tj = 0; tj < num_targets; ++tj) {
                out_row[tj] =
                    x.RowDot(batch[static_cast<size_t>(bi)], targets[tj]);
              }
            }
          });
  OpStats stats;
  const double cols = static_cast<double>(x.cols());
  const double pairs = static_cast<double>(batch.size() * num_targets);
  stats.flops = 2.0 * pairs * cols;
  // Same tiling amortization as the sparse path: batch rows read per row,
  // target matrix read once per batch.
  stats.bytes_read = (static_cast<double>(batch.size()) * cols +
                      static_cast<double>(num_targets) * cols) *
                     sizeof(double);
  stats.bytes_written = pairs * sizeof(double);
  return stats;
}

OpStats SpMV(const CsrMatrix& x, std::span<const int32_t> rows,
             std::span<const double> v, double* out, ThreadPool* pool,
             const simd::SimdOps* ops) {
  const simd::SimdOps& simd_ops =
      ops != nullptr ? *ops : simd::OpsFor(simd::SimdTier::kAuto);
  const int64_t t_start = simd::NowNanos();
  RunRows(pool, static_cast<int64_t>(rows.size()), /*min_chunk=*/256,
          [&](int64_t begin, int64_t end) {
            for (int64_t j = begin; j < end; ++j) {
              const int64_t row = rows[static_cast<size_t>(j)];
              const auto idx = x.RowIndices(row);
              const auto val = x.RowValues(row);
              out[j] = simd_ops.gather_dot(val.data(), idx.data(),
                                           static_cast<int64_t>(idx.size()),
                                           v.data());
            }
          });
  const int64_t t_nanos = simd::NowNanos() - t_start;
  OpStats stats;
  double nnz_streamed = 0.0;
  for (size_t j = 0; j < rows.size(); ++j) {
    nnz_streamed += static_cast<double>(x.RowIndices(rows[j]).size());
  }
  stats.flops = 2.0 * nnz_streamed;
  stats.bytes_read = nnz_streamed * (sizeof(double) + sizeof(int32_t));
  stats.bytes_written = static_cast<double>(rows.size()) * sizeof(double);
  simd::RecordPath(simd::SimdPath::kSpMV,
                   static_cast<int64_t>(nnz_streamed), stats.flops, t_nanos);
  return stats;
}

}  // namespace gmpsvm
