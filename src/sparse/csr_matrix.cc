#include "sparse/csr_matrix.h"

#include <algorithm>

#include "common/string_util.h"

namespace gmpsvm {

Result<CsrMatrix> CsrMatrix::Create(int64_t rows, int64_t cols,
                                    std::vector<int64_t> row_ptr,
                                    std::vector<int32_t> col_idx,
                                    std::vector<double> values) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  if (static_cast<int64_t>(row_ptr.size()) != rows + 1) {
    return Status::InvalidArgument(
        StrPrintf("row_ptr size %zu != rows+1 (%lld)", row_ptr.size(),
                  static_cast<long long>(rows + 1)));
  }
  if (row_ptr.front() != 0 ||
      row_ptr.back() != static_cast<int64_t>(values.size()) ||
      col_idx.size() != values.size()) {
    return Status::InvalidArgument("inconsistent CSR array lengths");
  }
  for (int64_t r = 0; r < rows; ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("row_ptr not non-decreasing");
    }
    int32_t prev = -1;
    for (int64_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      if (col_idx[p] <= prev || col_idx[p] >= cols) {
        return Status::InvalidArgument(StrPrintf(
            "row %lld: column index %d out of order or out of range",
            static_cast<long long>(r), col_idx[p]));
      }
      prev = col_idx[p];
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

double CsrMatrix::RowDot(int64_t a, int64_t b) const {
  const auto ia = RowIndices(a), ib = RowIndices(b);
  const auto va = RowValues(a), vb = RowValues(b);
  double dot = 0.0;
  size_t pa = 0, pb = 0;
  while (pa < ia.size() && pb < ib.size()) {
    if (ia[pa] == ib[pb]) {
      dot += va[pa] * vb[pb];
      ++pa;
      ++pb;
    } else if (ia[pa] < ib[pb]) {
      ++pa;
    } else {
      ++pb;
    }
  }
  return dot;
}

double CsrMatrix::RowSquaredNorm(int64_t row) const {
  double sum = 0.0;
  for (double v : RowValues(row)) sum += v * v;
  return sum;
}

std::vector<double> CsrMatrix::AllRowSquaredNorms() const {
  std::vector<double> norms(static_cast<size_t>(rows_));
  for (int64_t r = 0; r < rows_; ++r) norms[static_cast<size_t>(r)] = RowSquaredNorm(r);
  return norms;
}

CsrMatrix CsrMatrix::SelectRows(std::span<const int32_t> rows) const {
  CsrBuilder builder(cols_);
  for (int32_t r : rows) {
    builder.AddRow(RowIndices(r), RowValues(r));
  }
  // Rows of a valid matrix remain valid, so Finish cannot fail.
  return ValueOrDie(builder.Finish());
}

std::vector<double> CsrMatrix::ToDense() const {
  std::vector<double> dense(static_cast<size_t>(rows_ * cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const auto idx = RowIndices(r);
    const auto val = RowValues(r);
    for (size_t p = 0; p < idx.size(); ++p) {
      dense[static_cast<size_t>(r * cols_ + idx[p])] = val[p];
    }
  }
  return dense;
}

void CsrBuilder::AddRow(std::span<const int32_t> indices,
                        std::span<const double> values) {
  col_idx_.insert(col_idx_.end(), indices.begin(), indices.end());
  values_.insert(values_.end(), values.begin(), values.end());
  row_ptr_.push_back(static_cast<int64_t>(col_idx_.size()));
}

void CsrBuilder::AddRowUnsorted(std::vector<std::pair<int32_t, double>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [idx, val] : entries) {
    col_idx_.push_back(idx);
    values_.push_back(val);
  }
  row_ptr_.push_back(static_cast<int64_t>(col_idx_.size()));
}

Result<CsrMatrix> CsrBuilder::Finish() {
  const int64_t num_rows = rows();  // before row_ptr_ is moved out
  auto result = CsrMatrix::Create(num_rows, cols_, std::move(row_ptr_),
                                  std::move(col_idx_), std::move(values_));
  row_ptr_ = {0};
  col_idx_.clear();
  values_.clear();
  return result;
}

}  // namespace gmpsvm
