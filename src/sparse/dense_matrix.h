// Row-major dense matrix. Used by the GPUSVM-like baseline (which stores
// instances densely — the representation choice the paper identifies as that
// system's weakness on sparse data) and for small dense intermediates.

#ifndef GMPSVM_SPARSE_DENSE_MATRIX_H_
#define GMPSVM_SPARSE_DENSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace gmpsvm {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), 0.0) {}
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double At(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& At(int64_t r, int64_t c) { return data_[static_cast<size_t>(r * cols_ + c)]; }

  std::span<const double> Row(int64_t r) const {
    return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
  }
  std::span<double> MutableRow(int64_t r) {
    return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
  }

  const std::vector<double>& data() const { return data_; }

  size_t ByteSize() const { return data_.size() * sizeof(double); }

  // Dense dot product of rows a and b — O(cols) regardless of sparsity,
  // which is exactly the inefficiency of the dense representation.
  double RowDot(int64_t a, int64_t b) const {
    const double* pa = data_.data() + a * cols_;
    const double* pb = data_.data() + b * cols_;
    double dot = 0.0;
    for (int64_t c = 0; c < cols_; ++c) dot += pa[c] * pb[c];
    return dot;
  }

  double RowSquaredNorm(int64_t r) const { return RowDot(r, r); }

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SPARSE_DENSE_MATRIX_H_
