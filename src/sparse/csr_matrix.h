// Compressed Sparse Row matrix — the instance representation used throughout
// the library (the paper, like GTSVM and ThunderSVM, stores training data in
// CSR to handle large sparse datasets; the dense representation is what sinks
// GPUSVM on RCV1 in Figure 10).

#ifndef GMPSVM_SPARSE_CSR_MATRIX_H_
#define GMPSVM_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace gmpsvm {

// Immutable CSR matrix of doubles. Column indices within each row are
// strictly increasing (validated on construction).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  // Validates and adopts the arrays. row_ptr has rows+1 entries; col_idx and
  // values have row_ptr.back() entries; all column indices are in [0, cols)
  // and strictly increasing within a row.
  static Result<CsrMatrix> Create(int64_t rows, int64_t cols,
                                  std::vector<int64_t> row_ptr,
                                  std::vector<int32_t> col_idx,
                                  std::vector<double> values);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  int64_t RowNnz(int64_t row) const { return row_ptr_[row + 1] - row_ptr_[row]; }

  std::span<const int32_t> RowIndices(int64_t row) const {
    return {col_idx_.data() + row_ptr_[row],
            static_cast<size_t>(RowNnz(row))};
  }
  std::span<const double> RowValues(int64_t row) const {
    return {values_.data() + row_ptr_[row], static_cast<size_t>(RowNnz(row))};
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // Bytes of the CSR arrays (used for device-memory accounting).
  size_t ByteSize() const {
    return row_ptr_.size() * sizeof(int64_t) + col_idx_.size() * sizeof(int32_t) +
           values_.size() * sizeof(double);
  }

  // Dot product of two rows of this matrix (sorted-index merge).
  double RowDot(int64_t a, int64_t b) const;

  // Squared L2 norm of one row.
  double RowSquaredNorm(int64_t row) const;

  // Squared L2 norms of all rows.
  std::vector<double> AllRowSquaredNorms() const;

  // Returns the submatrix consisting of `rows` (in the given order).
  CsrMatrix SelectRows(std::span<const int32_t> rows) const;

  // Dense row-major copy (rows x cols). Intended for small matrices and the
  // dense-representation baseline.
  std::vector<double> ToDense() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_{0};
  std::vector<int32_t> col_idx_;
  std::vector<double> values_;
};

// Incremental row-by-row builder.
class CsrBuilder {
 public:
  explicit CsrBuilder(int64_t cols) : cols_(cols) {}

  // Appends one row given parallel index/value arrays. Indices must be
  // strictly increasing; invalid input surfaces at Finish().
  void AddRow(std::span<const int32_t> indices, std::span<const double> values);

  // Appends one row from (index, value) pairs; sorts them first.
  void AddRowUnsorted(std::vector<std::pair<int32_t, double>> entries);

  int64_t rows() const { return static_cast<int64_t>(row_ptr_.size()) - 1; }

  // Validates and produces the matrix; the builder is left empty.
  Result<CsrMatrix> Finish();

 private:
  int64_t cols_;
  std::vector<int64_t> row_ptr_{0};
  std::vector<int32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SPARSE_CSR_MATRIX_H_
