// LRU kernel-row cache, as used by LibSVM (host RAM) and by the GPU baseline
// (a fixed slice of device memory). Stores full rows of the kernel matrix of
// one binary problem, keyed by local row index.

#ifndef GMPSVM_SOLVER_KERNEL_CACHE_H_
#define GMPSVM_SOLVER_KERNEL_CACHE_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

namespace gmpsvm {

class KernelCache {
 public:
  // `row_length` values per row; capacity derived from `capacity_bytes`
  // (at least one row is always cacheable). `max_rows`, when positive, caps
  // the capacity — a kernel matrix only has n distinct rows, so callers pass
  // the problem size to avoid reserving storage that can never fill.
  KernelCache(int64_t row_length, size_t capacity_bytes, int64_t max_rows = 0);

  int64_t row_length() const { return row_length_; }
  int64_t capacity_rows() const { return capacity_rows_; }

  // Returns the cached row or nullptr. A hit refreshes recency.
  const double* Lookup(int32_t row);

  // Returns writable storage for `row`, evicting the least-recently-used row
  // if needed. The caller fills it with kernel values.
  double* Insert(int32_t row);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t rows_cached() const { return static_cast<int64_t>(index_.size()); }

 private:
  struct Entry {
    int32_t row;
    int64_t slot;
  };

  int64_t row_length_;
  int64_t capacity_rows_;
  std::vector<double> storage_;            // capacity_rows_ * row_length_
  std::list<Entry> lru_;                   // front = most recent
  std::unordered_map<int32_t, std::list<Entry>::iterator> index_;
  std::vector<int64_t> free_slots_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_KERNEL_CACHE_H_
