#include "solver/kernel_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace gmpsvm {

KernelCache::KernelCache(int64_t row_length, size_t capacity_bytes,
                         int64_t max_rows)
    : row_length_(std::max<int64_t>(1, row_length)) {
  capacity_rows_ = std::max<int64_t>(
      1, static_cast<int64_t>(capacity_bytes / (sizeof(double) * row_length_)));
  if (max_rows > 0) capacity_rows_ = std::min(capacity_rows_, max_rows);
  storage_.resize(static_cast<size_t>(capacity_rows_ * row_length_));
  free_slots_.reserve(static_cast<size_t>(capacity_rows_));
  for (int64_t s = capacity_rows_ - 1; s >= 0; --s) free_slots_.push_back(s);
}

const double* KernelCache::Lookup(int32_t row) {
  auto it = index_.find(row);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return storage_.data() + it->second->slot * row_length_;
}

double* KernelCache::Insert(int32_t row) {
  GMP_DCHECK(index_.find(row) == index_.end());
  int64_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    const Entry victim = lru_.back();
    lru_.pop_back();
    index_.erase(victim.row);
    slot = victim.slot;
  }
  lru_.push_front(Entry{row, slot});
  index_[row] = lru_.begin();
  return storage_.data() + slot * row_length_;
}

}  // namespace gmpsvm
