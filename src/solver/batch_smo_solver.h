// BatchSmoSolver: the binary-SVM-level solver of GMP-SVM (Section 3.3.1).
//
// Differences from the classic SmoSolver:
//   * a working set of ws_size instances instead of two, refreshed by
//     replacing its q most stale members with the q most violating eligible
//     instances (q = ws/2 by default, the paper's keep-half heuristic);
//   * the kernel rows of the working set are computed in one batched sparse
//     product and kept in a pre-allocated GPU buffer with FIFO replacement,
//     so refreshes only compute rows that are not already buffered;
//   * multiple SMO subproblems are solved per refresh against the buffered
//     rows ("solving q/2 subproblems in a batch is cheaper than solving the
//     same number individually");
//   * the inner optimization terminates early, with a budget scaled by
//     delta = f_l - f_u, to avoid over-fitting the working set ("reducing
//     the negative effect of local optimization on the working set").
//
// The solver produces the same classifier as SmoSolver/LibSVM up to the
// shared optimality tolerance (verified in tests and Table 4's bench).

#ifndef GMPSVM_SOLVER_BATCH_SMO_SOLVER_H_
#define GMPSVM_SOLVER_BATCH_SMO_SOLVER_H_

#include <cstdint>
#include <span>

#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "solver/kernel_buffer.h"
#include "solver/kernel_row_source.h"
#include "solver/solver_stats.h"
#include "solver/svm_problem.h"
#include "solver/working_set.h"

namespace gmpsvm {

struct BatchSmoOptions {
  WorkingSetConfig working_set;

  // Buffer capacity in rows; 0 means "same as the working set size" (the
  // paper equates buffer size and working-set size in Section 4.2). Values
  // larger than ws_size let rows of instances that left the working set be
  // reused if they re-enter.
  int buffer_rows = 0;

  // Buffer replacement policy (paper default: FIFO; kLru for the ablation).
  KernelBuffer::Policy buffer_policy = KernelBuffer::Policy::kFifo;

  // Optimality tolerance (Constraint (9)).
  double eps = 1e-3;

  // Safety bound on outer working-set refreshes.
  int64_t max_outer_rounds = 1'000'000;

  // Inner-iteration budget policy. kDeltaAdaptive spends few iterations per
  // working set while the global violation delta is large and more as the
  // solver approaches optimality; kFixed always runs max_inner (ablation).
  enum class InnerPolicy { kFixed, kDeltaAdaptive };
  InnerPolicy inner_policy = InnerPolicy::kDeltaAdaptive;

  // Max SMO subproblems per refresh; 0 means ws_size / 2.
  int max_inner = 0;

  // Count the kernel buffer against the executor's device-memory budget.
  bool buffer_on_device = true;

  // --- Fault recovery ------------------------------------------------------
  // With a FaultInjector attached to the executor, the batched row
  // computation and the buffer allocation can fail transiently; the solver
  // retries them in place up to these attempt counts before giving up with
  // kUnavailable (which the trainers' pair-level retry then handles).
  int max_row_batch_retries = 4;
  int max_alloc_retries = 4;

  // Checks the configuration and returns InvalidArgument naming the offending
  // field (ws_size < 2, q < 1, non-positive eps, negative
  // buffer_rows/max_inner, non-positive max_outer_rounds). Called by the
  // solver and by MpTrainOptions::Validate. Oversized ws_size/q remain legal:
  // WorkingSetSelector clamps them to the problem size.
  Status Validate() const;
};

// Alpha deltas of one two-variable SMO update.
struct SmoPairDelta {
  double d_alpha_u = 0.0;
  double d_alpha_l = 0.0;
};

// One LibSVM-style two-variable update for the working-set pair (u, l):
// steps alpha[u]/alpha[l] along the constrained Newton direction and clips to
// the box. Shared by the batched solver's inner loop and the distributed
// solver (src/dist), which must replicate its arithmetic bit for bit.
SmoPairDelta SmoUpdatePair(int32_t u, int32_t l, std::span<const int8_t> y,
                           double c_u_bound, double c_l_bound, double k_uu,
                           double k_ll, double k_ul, std::span<const double> f,
                           std::span<double> alpha);

class BatchSmoSolver {
 public:
  explicit BatchSmoSolver(const BatchSmoOptions& options) : options_(options) {}

  // Trains one binary SVM; kernel rows come from `source` (direct or shared).
  Result<BinarySolution> Solve(const BinaryProblem& problem,
                               const KernelComputer& computer,
                               KernelRowSource* source, SimExecutor* executor,
                               StreamId stream, SolverStats* stats) const;

  // Convenience overload using a DirectRowSource.
  Result<BinarySolution> Solve(const BinaryProblem& problem,
                               const KernelComputer& computer,
                               SimExecutor* executor, StreamId stream,
                               SolverStats* stats) const;

  // Warm-started solve ("alpha seeding", DeCoste & Wagstaff): starts from
  // `initial_alpha` (clamped into the problem's box; the equality constraint
  // must already hold, as it does for any previous solution of the same
  // data). Cuts iterations dramatically along hyper-parameter paths where
  // consecutive problems share most of their solution.
  Result<BinarySolution> SolveWarm(const BinaryProblem& problem,
                                   const KernelComputer& computer,
                                   std::span<const double> initial_alpha,
                                   SimExecutor* executor, StreamId stream,
                                   SolverStats* stats) const;

  // Warm-started solve against an explicit kernel-row source (the shared
  // kernel-block path); otherwise identical to SolveWarm above. This is the
  // online pipeline's retraining entry point: initial_alpha comes from the
  // previous model's per-pair checkpoint, mapped onto the new problem's rows.
  Result<BinarySolution> SolveWarm(const BinaryProblem& problem,
                                   const KernelComputer& computer,
                                   KernelRowSource* source,
                                   std::span<const double> initial_alpha,
                                   SimExecutor* executor, StreamId stream,
                                   SolverStats* stats) const;

 private:
  Result<BinarySolution> SolveImpl(const BinaryProblem& problem,
                                   const KernelComputer& computer,
                                   KernelRowSource* source,
                                   std::span<const double> initial_alpha,
                                   SimExecutor* executor, StreamId stream,
                                   SolverStats* stats) const;

  BatchSmoOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_BATCH_SMO_SOLVER_H_
