#include "solver/kernel_row_source.h"

#include <cstring>

namespace gmpsvm {

void DirectRowSource::ComputeRows(std::span<const int32_t> local_rows,
                                  std::span<double* const> dest,
                                  SimExecutor* executor, StreamId stream) {
  if (local_rows.empty()) return;
  const size_t n = static_cast<size_t>(problem_->n());
  batch_globals_.resize(local_rows.size());
  for (size_t k = 0; k < local_rows.size(); ++k) {
    batch_globals_[k] = problem_->rows[static_cast<size_t>(local_rows[k])];
  }
  scratch_.resize(local_rows.size() * n);
  computer_->ComputeBlock(batch_globals_, problem_->rows, executor, stream,
                          scratch_.data());
  // Scatter the contiguous block into the buffer slots (device-side copy).
  for (size_t k = 0; k < local_rows.size(); ++k) {
    std::memcpy(dest[k], scratch_.data() + k * n, n * sizeof(double));
  }
  TaskCost copy_cost;
  copy_cost.parallel_items = static_cast<int64_t>(local_rows.size() * n);
  copy_cost.bytes_read = static_cast<double>(local_rows.size() * n) * sizeof(double);
  copy_cost.bytes_written = copy_cost.bytes_read;
  executor->Charge(stream, copy_cost);
}

}  // namespace gmpsvm
