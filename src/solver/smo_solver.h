// Classic SMO solver (Algorithm 1): two-element working sets chosen with the
// second-order heuristic of Fan et al., exactly the solver inside LibSVM's
// C-SVC. This is both the reference implementation that GMP-SVM must match
// bit-for-bit in classifier terms (Table 4) and, run against the GPU cost
// model with parallel reductions/updates, the paper's "GPU baseline".

#ifndef GMPSVM_SOLVER_SMO_SOLVER_H_
#define GMPSVM_SOLVER_SMO_SOLVER_H_

#include <cstdint>

#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "solver/solver_stats.h"
#include "solver/svm_problem.h"

namespace gmpsvm {

struct SmoOptions {
  // Optimality tolerance: stop when max_{I_low} f - min_{I_up} f < eps
  // (Constraint (9); LibSVM's default 1e-3).
  double eps = 1e-3;

  // Safety bound on SMO iterations.
  int64_t max_iterations = 50'000'000;

  // Kernel-row cache capacity (LibSVM defaults to 100 MB of host RAM; the
  // GPU baseline dedicates 4 GB of device memory).
  size_t cache_bytes = 100ull << 20;

  // If true, the cache is counted against the executor's device-memory
  // budget (the GPU baseline's configuration).
  bool cache_on_device = false;

  // LibSVM's shrinking heuristic (svm-train -h): periodically remove
  // instances that are pinned at a bound and cannot re-enter the working
  // set from the active scans, reconstructing their optimality indicators
  // before final convergence. Off by default; the produced classifier is
  // identical either way (tests assert this). Note: kernel rows are cached
  // full-length here, so shrinking accelerates the per-iteration scans and
  // updates, not the row computation itself.
  bool shrinking = false;

  // Shrink check cadence in iterations (LibSVM: min(n, 1000)).
  int64_t shrink_interval = 1000;

  // Working-set selection heuristic for the second element. kSecondOrder is
  // LibSVM's WSS2 (Fan et al. 2005, the paper's Equation (5)); kFirstOrder
  // is the plain maximal-violating-pair rule of early GPU SVMs (Catanzaro's
  // GPUSVM) — typically more, cheaper iterations.
  enum class Selection { kSecondOrder, kFirstOrder };
  Selection selection = Selection::kSecondOrder;
};

class SmoSolver {
 public:
  explicit SmoSolver(const SmoOptions& options) : options_(options) {}

  // Trains one binary SVM. `computer` must be built over the same matrix the
  // problem's row ids refer to. All compute is charged to `stream`.
  // `stats` may be null.
  Result<BinarySolution> Solve(const BinaryProblem& problem,
                               const KernelComputer& computer,
                               SimExecutor* executor, StreamId stream,
                               SolverStats* stats) const;

 private:
  SmoOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_SMO_SOLVER_H_
