#include "solver/kernel_buffer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"

namespace gmpsvm {

KernelBuffer::KernelBuffer(int64_t row_length, int64_t capacity_rows,
                           Policy policy)
    : row_length_(std::max<int64_t>(1, row_length)),
      capacity_rows_(std::max<int64_t>(1, capacity_rows)),
      policy_(policy) {
  storage_.resize(static_cast<size_t>(row_length_ * capacity_rows_));
  free_slots_.reserve(static_cast<size_t>(capacity_rows_));
  for (int64_t s = capacity_rows_ - 1; s >= 0; --s) free_slots_.push_back(s);
}

const double* KernelBuffer::Lookup(int32_t row) {
  auto it = index_.find(row);
  if (it == index_.end() || poisoned_.count(row) != 0) return nullptr;
  if (policy_ == Policy::kLru) Refresh(row);
  return storage_.data() + it->second * row_length_;
}

void KernelBuffer::Refresh(int32_t row) {
  // O(queue) scan; the queue is at most capacity_rows_ entries and this is
  // the ablation-only policy, so simplicity wins over an intrusive list.
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    if (*it == row) {
      fifo_.erase(it);
      fifo_.push_back(row);
      return;
    }
  }
}

void KernelBuffer::Partition(std::span<const int32_t> rows,
                             std::vector<int32_t>* present,
                             std::vector<int32_t>* missing) {
  present->clear();
  missing->clear();
  for (int32_t row : rows) {
    // Poisoned rows are resident but unusable: report them missing so the
    // caller recomputes their values (InsertBatch reuses their slot).
    if (index_.count(row) != 0 && poisoned_.count(row) == 0) {
      present->push_back(row);
      ++hits_;
      if (policy_ == Policy::kLru) Refresh(row);
    } else {
      missing->push_back(row);
      ++misses_;
    }
  }
}

void KernelBuffer::Pin(std::span<const int32_t> rows) {
  pinned_.clear();
  pinned_.insert(rows.begin(), rows.end());
}

Result<std::vector<double*>> KernelBuffer::InsertBatch(
    std::span<const int32_t> rows) {
  std::vector<double*> out;
  out.reserve(rows.size());
  bool evicted_any = false;
  for (int32_t row : rows) {
    auto existing = index_.find(row);
    if (existing != index_.end()) {
      // Only a poisoned row may be re-inserted: it keeps its slot and its
      // place in the eviction queue; the caller overwrites the values.
      GMP_DCHECK(poisoned_.count(row) != 0);
      poisoned_.erase(row);
      out.push_back(storage_.data() + existing->second * row_length_);
      continue;
    }
    int64_t slot = -1;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      // FIFO eviction skipping pinned rows: rotate pinned victims to the
      // back of the queue (they stay buffered, just deferred).
      size_t scanned = 0;
      const size_t fifo_size = fifo_.size();
      while (scanned < fifo_size) {
        int32_t victim = fifo_.front();
        fifo_.pop_front();
        ++scanned;
        if (pinned_.count(victim) != 0) {
          fifo_.push_back(victim);
          continue;
        }
        auto vit = index_.find(victim);
        GMP_DCHECK(vit != index_.end());
        slot = vit->second;
        index_.erase(vit);
        poisoned_.erase(victim);
        ++evictions_;
        evicted_any = true;
        break;
      }
      if (slot < 0) {
        return Status::FailedPrecondition(StrPrintf(
            "kernel buffer exhausted: all %lld rows pinned, cannot insert row %d",
            static_cast<long long>(capacity_rows_), row));
      }
    }
    index_[row] = slot;
    fifo_.push_back(row);
    out.push_back(storage_.data() + slot * row_length_);
  }
  // Fault hook: an eviction pass may corrupt a bystander row (models a bad
  // DMA overwriting a neighbor). Never the rows just inserted — the caller
  // is about to fill those — and never a pinned row, which the current
  // round reads without re-checking.
  if (evicted_any && fault_ != nullptr &&
      fault_->ShouldInject(fault::Site::kBufferEvict)) {
    PoisonOldestUnpinned(rows);
  }
  return out;
}

void KernelBuffer::PoisonOldestUnpinned(std::span<const int32_t> just_inserted) {
  for (int32_t row : fifo_) {
    if (pinned_.count(row) != 0 || poisoned_.count(row) != 0 ||
        index_.count(row) == 0) {
      continue;
    }
    if (std::find(just_inserted.begin(), just_inserted.end(), row) !=
        just_inserted.end()) {
      continue;
    }
    double* data = storage_.data() + index_[row] * row_length_;
    std::fill(data, data + row_length_,
              std::numeric_limits<double>::quiet_NaN());
    poisoned_.insert(row);
    ++rows_poisoned_;
    return;
  }
}

}  // namespace gmpsvm
