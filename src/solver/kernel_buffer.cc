#include "solver/kernel_buffer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace gmpsvm {

KernelBuffer::KernelBuffer(int64_t row_length, int64_t capacity_rows,
                           Policy policy)
    : row_length_(std::max<int64_t>(1, row_length)),
      capacity_rows_(std::max<int64_t>(1, capacity_rows)),
      policy_(policy) {
  storage_.resize(static_cast<size_t>(row_length_ * capacity_rows_));
  free_slots_.reserve(static_cast<size_t>(capacity_rows_));
  for (int64_t s = capacity_rows_ - 1; s >= 0; --s) free_slots_.push_back(s);
}

const double* KernelBuffer::Lookup(int32_t row) {
  auto it = index_.find(row);
  if (it == index_.end()) return nullptr;
  if (policy_ == Policy::kLru) Refresh(row);
  return storage_.data() + it->second * row_length_;
}

void KernelBuffer::Refresh(int32_t row) {
  // O(queue) scan; the queue is at most capacity_rows_ entries and this is
  // the ablation-only policy, so simplicity wins over an intrusive list.
  for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
    if (*it == row) {
      fifo_.erase(it);
      fifo_.push_back(row);
      return;
    }
  }
}

void KernelBuffer::Partition(std::span<const int32_t> rows,
                             std::vector<int32_t>* present,
                             std::vector<int32_t>* missing) {
  present->clear();
  missing->clear();
  for (int32_t row : rows) {
    if (index_.count(row) != 0) {
      present->push_back(row);
      ++hits_;
      if (policy_ == Policy::kLru) Refresh(row);
    } else {
      missing->push_back(row);
      ++misses_;
    }
  }
}

void KernelBuffer::Pin(std::span<const int32_t> rows) {
  pinned_.clear();
  pinned_.insert(rows.begin(), rows.end());
}

Result<std::vector<double*>> KernelBuffer::InsertBatch(
    std::span<const int32_t> rows) {
  std::vector<double*> out;
  out.reserve(rows.size());
  for (int32_t row : rows) {
    GMP_DCHECK(index_.find(row) == index_.end());
    int64_t slot = -1;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      // FIFO eviction skipping pinned rows: rotate pinned victims to the
      // back of the queue (they stay buffered, just deferred).
      size_t scanned = 0;
      const size_t fifo_size = fifo_.size();
      while (scanned < fifo_size) {
        int32_t victim = fifo_.front();
        fifo_.pop_front();
        ++scanned;
        if (pinned_.count(victim) != 0) {
          fifo_.push_back(victim);
          continue;
        }
        auto vit = index_.find(victim);
        GMP_DCHECK(vit != index_.end());
        slot = vit->second;
        index_.erase(vit);
        ++evictions_;
        break;
      }
      if (slot < 0) {
        return Status::FailedPrecondition(StrPrintf(
            "kernel buffer exhausted: all %lld rows pinned, cannot insert row %d",
            static_cast<long long>(capacity_rows_), row));
      }
    }
    index_[row] = slot;
    fifo_.push_back(row);
    out.push_back(storage_.data() + slot * row_length_);
  }
  return out;
}

}  // namespace gmpsvm
