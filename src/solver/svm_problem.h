// Binary SVM problem description shared by all solvers.
//
// A BinaryProblem is a *view* over the full dataset: it lists the global row
// ids that participate (for a pairwise problem (s,t), all instances of class
// s followed by all instances of class t) plus their ±1 labels. Solvers work
// in local indices [0, n) and translate through `rows` when touching feature
// data, which is what makes cross-SVM kernel sharing possible (two problems
// referencing the same global row can share kernel values).

#ifndef GMPSVM_SOLVER_SVM_PROBLEM_H_
#define GMPSVM_SOLVER_SVM_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "kernel/kernel_function.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm {

struct BinaryProblem {
  // Full dataset feature matrix; not owned.
  const CsrMatrix* data = nullptr;

  // Global row ids of the participating instances, in local-index order.
  std::vector<int32_t> rows;

  // Labels (+1 / -1), parallel to `rows`.
  std::vector<int8_t> y;

  // Penalty parameter C of problem (1)/(2).
  double C = 1.0;

  // Optional per-class penalty multipliers (LibSVM's -wi): the effective
  // penalty of instance i is C * (y_i > 0 ? weight_pos : weight_neg).
  // Weighting the minority class up is the standard recipe for imbalanced
  // data.
  double weight_pos = 1.0;
  double weight_neg = 1.0;

  KernelParams kernel;

  int64_t n() const { return static_cast<int64_t>(rows.size()); }

  // Effective box constraint of an instance with label `y`.
  double CFor(int8_t y) const { return C * (y > 0 ? weight_pos : weight_neg); }
};

// The trained weights and bias of one binary SVM in local index space.
struct BinarySolution {
  // Dual weights alpha_i in [0, C], local index space.
  std::vector<double> alpha;

  // Bias b of the decision function (Equation 11); b = -rho in LibSVM terms.
  double bias = 0.0;

  // Dual objective value at termination (the maximization form of
  // problem (2); higher is better).
  double objective = 0.0;

  // Final optimality indicators f_i (Equation 3). Exposed because the
  // training-set decision values fall out for free: v_i = f_i + y_i + bias,
  // which is what the sigmoid-fitting stage consumes (Algorithm 2 line 13)
  // without recomputing any kernel values.
  std::vector<double> f;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_SVM_PROBLEM_H_
