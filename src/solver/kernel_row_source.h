// Abstraction over where a binary problem's kernel rows come from.
//
// The batched solver requests q rows at a time; a DirectRowSource computes
// them with one batched sparse product (the binary-SVM-level technique),
// while the MP-SVM-level SharedRowSource (src/core/shared_blocks.h) assembles
// rows from class-block segments shared across concurrently-trained binary
// SVMs (Figure 3 of the paper).

#ifndef GMPSVM_SOLVER_KERNEL_ROW_SOURCE_H_
#define GMPSVM_SOLVER_KERNEL_ROW_SOURCE_H_

#include <span>
#include <vector>

#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "solver/svm_problem.h"

namespace gmpsvm {

class KernelRowSource {
 public:
  virtual ~KernelRowSource() = default;

  // Fills dest[k][0..n) with the kernel row of local instance local_rows[k]
  // against all n instances of the problem, charging `executor` on `stream`.
  virtual void ComputeRows(std::span<const int32_t> local_rows,
                           std::span<double* const> dest, SimExecutor* executor,
                           StreamId stream) = 0;
};

// Computes rows directly from the feature matrix as one batched product.
class DirectRowSource : public KernelRowSource {
 public:
  // Both referents must outlive the source.
  DirectRowSource(const BinaryProblem* problem, const KernelComputer* computer)
      : problem_(problem), computer_(computer) {}

  void ComputeRows(std::span<const int32_t> local_rows,
                   std::span<double* const> dest, SimExecutor* executor,
                   StreamId stream) override;

 private:
  const BinaryProblem* problem_;
  const KernelComputer* computer_;
  std::vector<double> scratch_;
  std::vector<int32_t> batch_globals_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_KERNEL_ROW_SOURCE_H_
