// Per-solve statistics reported by the binary SVM solvers. The figures in
// the paper's sensitivity study (buffer size, q, component breakdown) are
// regenerated from these.

#ifndef GMPSVM_SOLVER_SOLVER_STATS_H_
#define GMPSVM_SOLVER_SOLVER_STATS_H_

#include <cstdint>

#include "common/stopwatch.h"

namespace gmpsvm {

struct SolverStats {
  // SMO subproblems solved (pairs of alphas updated).
  int64_t iterations = 0;

  // Outer working-set refreshes (1 per SMO iteration for the classic solver).
  int64_t outer_rounds = 0;

  // Kernel row traffic.
  int64_t kernel_rows_computed = 0;
  int64_t kernel_rows_reused = 0;

  // Fault recovery: retried batched row computations / buffer allocations
  // (injected transient faults absorbed inside the solver) and buffer rows
  // found poisoned and recomputed.
  int64_t kernel_row_retries = 0;
  int64_t alloc_retries = 0;
  int64_t rows_poisoned = 0;

  // Simulated seconds attributed to pipeline phases:
  //   "kernel_values" — computing kernel rows (Fig. 11's dominant component)
  //   "subproblem"    — inner SMO updates on the working set
  //   "other"         — selection, sorting, f updates, reductions
  PhaseTimer phases;

  void Merge(const SolverStats& other) {
    iterations += other.iterations;
    outer_rounds += other.outer_rounds;
    kernel_rows_computed += other.kernel_rows_computed;
    kernel_rows_reused += other.kernel_rows_reused;
    kernel_row_retries += other.kernel_row_retries;
    alloc_retries += other.alloc_retries;
    rows_poisoned += other.rows_poisoned;
    phases.Merge(other.phases);
  }
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_SOLVER_STATS_H_
