#include "solver/working_set.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace gmpsvm {

WorkingSetSelector::WorkingSetSelector(const WorkingSetConfig& config, int64_t n)
    : drop_policy_(config.drop_policy), n_(n) {
  ws_size_ = static_cast<int>(std::min<int64_t>(std::max(2, config.ws_size), n));
  q_ = std::clamp(config.q, 2, ws_size_);
  sorted_.resize(static_cast<size_t>(n));
  std::iota(sorted_.begin(), sorted_.end(), 0);
}

const std::vector<int32_t>& WorkingSetSelector::Update(std::span<const double> f,
                                                       std::span<const double> alpha,
                                                       std::span<const int8_t> y,
                                                       std::span<const double> c) {
  // Sort all instances by optimality indicator ascending (the paper sorts f
  // and picks from both ends).
  std::sort(sorted_.begin(), sorted_.end(),
            [&f](int32_t a, int32_t b) { return f[a] < f[b]; });

  if (members_.empty()) {
    Admit(ws_size_, f, alpha, y, c);
    return members_;
  }

  const int refresh = std::min<int>(q_, static_cast<int>(members_.size()));
  Drop(refresh, f, alpha, y, c);
  const int added = Admit(ws_size_ - static_cast<int>(members_.size()), f, alpha, y, c);
  (void)added;
  return members_;
}

void WorkingSetSelector::Drop(int count, std::span<const double> f,
                              std::span<const double> alpha,
                              std::span<const int8_t> y, std::span<const double> c) {
  count = std::min<int>(count, static_cast<int>(members_.size()));
  if (count <= 0) return;

  std::unordered_set<int32_t> to_drop;
  if (drop_policy_ == WorkingSetConfig::DropPolicy::kOldest) {
    while (static_cast<int>(to_drop.size()) < count && !insertion_order_.empty()) {
      int32_t oldest = insertion_order_.front();
      insertion_order_.pop_front();
      if (member_set_.count(oldest) != 0) to_drop.insert(oldest);
    }
  } else {
    // Violation score: how far the member sticks out past the opposite
    // extreme; non-violating members score lowest and leave first.
    double f_up_min = std::numeric_limits<double>::infinity();
    double f_low_max = -std::numeric_limits<double>::infinity();
    for (int64_t i = 0; i < n_; ++i) {
      if (InUpSet(y[i], alpha[i], c[i])) f_up_min = std::min(f_up_min, f[i]);
      if (InLowSet(y[i], alpha[i], c[i])) f_low_max = std::max(f_low_max, f[i]);
    }
    std::vector<std::pair<double, int32_t>> scored;
    scored.reserve(members_.size());
    for (int32_t m : members_) {
      double score = -std::numeric_limits<double>::infinity();
      if (InUpSet(y[m], alpha[m], c[m])) score = std::max(score, f_low_max - f[m]);
      if (InLowSet(y[m], alpha[m], c[m])) score = std::max(score, f[m] - f_up_min);
      scored.emplace_back(score, m);
    }
    std::nth_element(scored.begin(), scored.begin() + count - 1, scored.end());
    for (int i = 0; i < count; ++i) to_drop.insert(scored[static_cast<size_t>(i)].second);
  }

  std::vector<int32_t> kept;
  kept.reserve(members_.size() - to_drop.size());
  for (int32_t m : members_) {
    if (to_drop.count(m) == 0) kept.push_back(m);
  }
  members_ = std::move(kept);
  for (int32_t d : to_drop) member_set_.erase(d);
}

int WorkingSetSelector::Admit(int count, std::span<const double> f,
                              std::span<const double> alpha,
                              std::span<const int8_t> y, std::span<const double> c) {
  (void)f;  // ordering already captured in sorted_
  if (count <= 0) return 0;
  const int half = count / 2;
  int added = 0;

  // Up side: smallest f whose y*alpha can increase.
  int up_added = 0;
  for (size_t k = 0; k < sorted_.size() && up_added < half; ++k) {
    const int32_t i = sorted_[k];
    if (member_set_.count(i) != 0) continue;
    if (!InUpSet(y[i], alpha[i], c[i])) continue;
    members_.push_back(i);
    member_set_.insert(i);
    insertion_order_.push_back(i);
    ++up_added;
    ++added;
  }

  // Low side: largest f whose y*alpha can decrease; fill any up-side deficit.
  const int low_target = count - up_added;
  int low_added = 0;
  for (size_t k = sorted_.size(); k-- > 0 && low_added < low_target;) {
    const int32_t i = sorted_[k];
    if (member_set_.count(i) != 0) continue;
    if (!InLowSet(y[i], alpha[i], c[i])) continue;
    members_.push_back(i);
    member_set_.insert(i);
    insertion_order_.push_back(i);
    ++low_added;
    ++added;
  }

  // If the low side ran dry, top up from the up side.
  if (added < count) {
    for (size_t k = 0; k < sorted_.size() && added < count; ++k) {
      const int32_t i = sorted_[k];
      if (member_set_.count(i) != 0) continue;
      if (!InUpSet(y[i], alpha[i], c[i])) continue;
      members_.push_back(i);
      member_set_.insert(i);
      insertion_order_.push_back(i);
      ++added;
    }
  }
  return added;
}

}  // namespace gmpsvm
