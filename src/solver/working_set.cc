#include "solver/working_set.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace gmpsvm {

WorkingSetSelector::WorkingSetSelector(const WorkingSetConfig& config, int64_t n)
    : drop_policy_(config.drop_policy), n_(n) {
  ws_size_ = static_cast<int>(std::min<int64_t>(std::max(2, config.ws_size), n));
  q_ = std::clamp(config.q, 2, ws_size_);
  sorted_.resize(static_cast<size_t>(n));
  std::iota(sorted_.begin(), sorted_.end(), 0);
}

const std::vector<int32_t>& WorkingSetSelector::Update(std::span<const double> f,
                                                       std::span<const double> alpha,
                                                       std::span<const int8_t> y,
                                                       std::span<const double> c) {
  // Sort all instances by optimality indicator ascending (the paper sorts f
  // and picks from both ends). Ties break on the index so the order is a
  // TOTAL order: the distributed refresh reproduces this exact sequence from
  // per-shard candidate lists, which a tie order depending on the previous
  // sort's layout would make impossible.
  std::sort(sorted_.begin(), sorted_.end(), [&f](int32_t a, int32_t b) {
    if (f[a] != f[b]) return f[a] < f[b];
    return a < b;
  });

  if (members_.empty()) {
    Admit(ws_size_, f, alpha, y, c);
    return members_;
  }

  const int refresh = std::min<int>(q_, static_cast<int>(members_.size()));
  Drop(refresh, f, alpha, y, c);
  const int added = Admit(ws_size_ - static_cast<int>(members_.size()), f, alpha, y, c);
  (void)added;
  return members_;
}

namespace {

// The total orders the shard lists and the merged admit scan share with
// Update()'s full sort. `low` order is the exact reverse of the `up` order,
// matching Admit()'s reversed iteration over the ascending sort.
struct UpOrder {
  std::span<const double> f;
  bool operator()(int32_t a, int32_t b) const {
    if (f[a] != f[b]) return f[a] < f[b];
    return a < b;
  }
};
struct LowOrder {
  std::span<const double> f;
  bool operator()(int32_t a, int32_t b) const {
    if (f[a] != f[b]) return f[a] > f[b];
    return a > b;
  }
};

}  // namespace

int WorkingSetSelector::BeginDistributedRefresh() {
  GMP_DCHECK(drop_policy_ == WorkingSetConfig::DropPolicy::kOldest);
  if (!members_.empty()) {
    const int refresh = std::min<int>(q_, static_cast<int>(members_.size()));
    Drop(refresh, {}, {}, {}, {});
  }
  return ws_size_ - static_cast<int>(members_.size());
}

WorkingSetSelector::ShardCandidates WorkingSetSelector::CollectShardCandidates(
    int64_t begin, int64_t end, int needed, std::span<const double> f,
    std::span<const double> alpha, std::span<const int8_t> y,
    std::span<const double> c) const {
  ShardCandidates out;
  if (needed <= 0) return out;
  for (int64_t i = begin; i < end; ++i) {
    const auto idx = static_cast<int32_t>(i);
    if (member_set_.count(idx) != 0) continue;
    if (InUpSet(y[i], alpha[i], c[i])) out.up.push_back(idx);
    if (InLowSet(y[i], alpha[i], c[i])) out.low.push_back(idx);
  }
  std::sort(out.up.begin(), out.up.end(), UpOrder{f});
  if (static_cast<int>(out.up.size()) > needed) {
    out.up.resize(static_cast<size_t>(needed));
  }
  std::sort(out.low.begin(), out.low.end(), LowOrder{f});
  if (static_cast<int>(out.low.size()) > needed) {
    out.low.resize(static_cast<size_t>(needed));
  }
  return out;
}

const std::vector<int32_t>& WorkingSetSelector::FinishDistributedRefresh(
    std::span<const ShardCandidates> shards, std::span<const double> f,
    std::span<const double> alpha, std::span<const int8_t> y,
    std::span<const double> c) {
  const int count = ws_size_ - static_cast<int>(members_.size());
  if (count <= 0) return members_;

  // Merge the shard lists into one globally ordered sequence per side. Shard
  // ranges are disjoint and the order is total, so the merged sequence is
  // the full sort restricted to the shard-collected candidates.
  std::vector<int32_t> up;
  std::vector<int32_t> low;
  for (const ShardCandidates& shard : shards) {
    up.insert(up.end(), shard.up.begin(), shard.up.end());
    low.insert(low.end(), shard.low.begin(), shard.low.end());
  }
  std::sort(up.begin(), up.end(), UpOrder{f});
  std::sort(low.begin(), low.end(), LowOrder{f});

  // From here the admit scan mirrors Admit() over the merged sequences.
  const int half = count / 2;
  int added = 0;
  const auto admit = [this](int32_t i) {
    members_.push_back(i);
    member_set_.insert(i);
    insertion_order_.push_back(i);
  };

  int up_added = 0;
  for (size_t k = 0; k < up.size() && up_added < half; ++k) {
    const int32_t i = up[k];
    if (member_set_.count(i) != 0) continue;
    if (!InUpSet(y[i], alpha[i], c[i])) continue;
    admit(i);
    ++up_added;
    ++added;
  }

  const int low_target = count - up_added;
  int low_added = 0;
  for (size_t k = 0; k < low.size() && low_added < low_target; ++k) {
    const int32_t i = low[k];
    if (member_set_.count(i) != 0) continue;
    if (!InLowSet(y[i], alpha[i], c[i])) continue;
    admit(i);
    ++low_added;
    ++added;
  }

  if (added < count) {
    for (size_t k = 0; k < up.size() && added < count; ++k) {
      const int32_t i = up[k];
      if (member_set_.count(i) != 0) continue;
      if (!InUpSet(y[i], alpha[i], c[i])) continue;
      admit(i);
      ++added;
    }
  }
  return members_;
}

void WorkingSetSelector::Drop(int count, std::span<const double> f,
                              std::span<const double> alpha,
                              std::span<const int8_t> y, std::span<const double> c) {
  count = std::min<int>(count, static_cast<int>(members_.size()));
  if (count <= 0) return;

  std::unordered_set<int32_t> to_drop;
  if (drop_policy_ == WorkingSetConfig::DropPolicy::kOldest) {
    while (static_cast<int>(to_drop.size()) < count && !insertion_order_.empty()) {
      int32_t oldest = insertion_order_.front();
      insertion_order_.pop_front();
      if (member_set_.count(oldest) != 0) to_drop.insert(oldest);
    }
  } else {
    // Violation score: how far the member sticks out past the opposite
    // extreme; non-violating members score lowest and leave first.
    double f_up_min = std::numeric_limits<double>::infinity();
    double f_low_max = -std::numeric_limits<double>::infinity();
    for (int64_t i = 0; i < n_; ++i) {
      if (InUpSet(y[i], alpha[i], c[i])) f_up_min = std::min(f_up_min, f[i]);
      if (InLowSet(y[i], alpha[i], c[i])) f_low_max = std::max(f_low_max, f[i]);
    }
    std::vector<std::pair<double, int32_t>> scored;
    scored.reserve(members_.size());
    for (int32_t m : members_) {
      double score = -std::numeric_limits<double>::infinity();
      if (InUpSet(y[m], alpha[m], c[m])) score = std::max(score, f_low_max - f[m]);
      if (InLowSet(y[m], alpha[m], c[m])) score = std::max(score, f[m] - f_up_min);
      scored.emplace_back(score, m);
    }
    std::nth_element(scored.begin(), scored.begin() + count - 1, scored.end());
    for (int i = 0; i < count; ++i) to_drop.insert(scored[static_cast<size_t>(i)].second);
  }

  std::vector<int32_t> kept;
  kept.reserve(members_.size() - to_drop.size());
  for (int32_t m : members_) {
    if (to_drop.count(m) == 0) kept.push_back(m);
  }
  members_ = std::move(kept);
  for (int32_t d : to_drop) member_set_.erase(d);
}

int WorkingSetSelector::Admit(int count, std::span<const double> f,
                              std::span<const double> alpha,
                              std::span<const int8_t> y, std::span<const double> c) {
  (void)f;  // ordering already captured in sorted_
  if (count <= 0) return 0;
  const int half = count / 2;
  int added = 0;

  // Up side: smallest f whose y*alpha can increase.
  int up_added = 0;
  for (size_t k = 0; k < sorted_.size() && up_added < half; ++k) {
    const int32_t i = sorted_[k];
    if (member_set_.count(i) != 0) continue;
    if (!InUpSet(y[i], alpha[i], c[i])) continue;
    members_.push_back(i);
    member_set_.insert(i);
    insertion_order_.push_back(i);
    ++up_added;
    ++added;
  }

  // Low side: largest f whose y*alpha can decrease; fill any up-side deficit.
  const int low_target = count - up_added;
  int low_added = 0;
  for (size_t k = sorted_.size(); k-- > 0 && low_added < low_target;) {
    const int32_t i = sorted_[k];
    if (member_set_.count(i) != 0) continue;
    if (!InLowSet(y[i], alpha[i], c[i])) continue;
    members_.push_back(i);
    member_set_.insert(i);
    insertion_order_.push_back(i);
    ++low_added;
    ++added;
  }

  // If the low side ran dry, top up from the up side.
  if (added < count) {
    for (size_t k = 0; k < sorted_.size() && added < count; ++k) {
      const int32_t i = sorted_[k];
      if (member_set_.count(i) != 0) continue;
      if (!InUpSet(y[i], alpha[i], c[i])) continue;
      members_.push_back(i);
      member_set_.insert(i);
      insertion_order_.push_back(i);
      ++added;
    }
  }
  return added;
}

}  // namespace gmpsvm
