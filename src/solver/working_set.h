// Working-set selection for the batched SMO solver (Section 3.3.1).
//
// Each refresh keeps ws_size - q members of the previous working set and adds
// the q most-violating eligible instances: the top q/2 by ascending
// optimality indicator f whose y_i*alpha_i can be increased (the I_up side)
// and the bottom q/2 whose y_i*alpha_i can be decreased (the I_low side).
// The paper found that replacing only half of the working set (q = ws/2)
// converges fastest; both ws_size and q are configurable to reproduce the
// Figure 6/7 sensitivity sweeps.

#ifndef GMPSVM_SOLVER_WORKING_SET_H_
#define GMPSVM_SOLVER_WORKING_SET_H_

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_set>
#include <vector>

namespace gmpsvm {

// Eligibility sets from Section 2.1.1. I_up = I_1 u I_2 u I_3 (y_i*alpha_i
// can increase), I_low = I_1 u I_4 u I_5 (can decrease). `c` is the
// instance's own box constraint (per-class weighted C).
inline bool InUpSet(int8_t y, double alpha, double c) {
  return (y > 0 && alpha < c) || (y < 0 && alpha > 0);
}
inline bool InLowSet(int8_t y, double alpha, double c) {
  return (y > 0 && alpha > 0) || (y < 0 && alpha < c);
}

struct WorkingSetConfig {
  // Working set size == GPU buffer rows (the paper's bs; default 1024).
  int ws_size = 1024;

  // New violating instances admitted per refresh (the paper's q; default
  // bs/2 per the Figure 7 finding).
  int q = 512;

  // Which members leave when the set is full. kOldest matches the FIFO
  // buffer replacement; kLeastViolating is the ablation alternative.
  enum class DropPolicy { kOldest, kLeastViolating };
  DropPolicy drop_policy = DropPolicy::kOldest;
};

class WorkingSetSelector {
 public:
  // `n` is the binary problem size; sizes are clamped to it.
  WorkingSetSelector(const WorkingSetConfig& config, int64_t n);

  // Refreshes the working set from the current solver state. The first call
  // fills the whole set. Returns the new working set (unordered).
  const std::vector<int32_t>& Update(std::span<const double> f,
                                     std::span<const double> alpha,
                                     std::span<const int8_t> y,
                                     std::span<const double> c);

  const std::vector<int32_t>& working_set() const { return members_; }

  // --- Distributed refresh (src/dist) ---------------------------------------
  //
  // The distributed solver selects the same working set as Update() without
  // any shard looking at instances outside its contiguous range:
  //   1. BeginDistributedRefresh() drops the stale members (bookkeeping only
  //      under kOldest) and returns how many new violators the merge needs;
  //   2. each shard calls CollectShardCandidates() over its own range and
  //      gets back its top `needed` eligible non-members per side, ordered by
  //      the same total order (f, index) the full sort uses;
  //   3. FinishDistributedRefresh() merges the shard lists in that total
  //      order and admits exactly as Update()'s full-sort scan would.
  // Any instance the full scan admits ranks within the top `needed` eligible
  // candidates of its own shard on the relevant side, so the merged selection
  // equals the full-sort selection for every shard partition (working_set_test
  // checks the equivalence). Requires DropPolicy::kOldest: kLeastViolating's
  // nth_element tie behaviour is not reproducible from shard-local data.

  // Per-shard candidate lists for one distributed refresh.
  struct ShardCandidates {
    std::vector<int32_t> up;   // eligible non-members, ascending (f, index)
    std::vector<int32_t> low;  // eligible non-members, descending (f, index)
  };

  // Drops this refresh's stale members and returns the number of new
  // violators to admit (ws_size on the first call). kOldest only.
  int BeginDistributedRefresh();

  // Collects the shard [begin, end)'s top `needed` eligible non-member
  // candidates per side. Pure: does not change the selector.
  ShardCandidates CollectShardCandidates(int64_t begin, int64_t end, int needed,
                                         std::span<const double> f,
                                         std::span<const double> alpha,
                                         std::span<const int8_t> y,
                                         std::span<const double> c) const;

  // Merges the shard candidate lists and admits new members exactly as
  // Update() would. Returns the new working set.
  const std::vector<int32_t>& FinishDistributedRefresh(
      std::span<const ShardCandidates> shards, std::span<const double> f,
      std::span<const double> alpha, std::span<const int8_t> y,
      std::span<const double> c);

  // Effective (clamped) configuration.
  int ws_size() const { return ws_size_; }
  int q() const { return q_; }

 private:
  void Drop(int count, std::span<const double> f, std::span<const double> alpha,
            std::span<const int8_t> y, std::span<const double> c);
  // Admits up to `count` new violators; returns how many were added.
  int Admit(int count, std::span<const double> f, std::span<const double> alpha,
            std::span<const int8_t> y, std::span<const double> c);

  WorkingSetConfig::DropPolicy drop_policy_;
  int ws_size_;
  int q_;
  int64_t n_;
  std::vector<int32_t> members_;
  std::deque<int32_t> insertion_order_;  // for kOldest
  std::unordered_set<int32_t> member_set_;
  std::vector<int32_t> sorted_;  // scratch: all indices sorted by f
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_WORKING_SET_H_
