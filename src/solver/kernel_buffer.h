// The GPU buffer of Section 3.3.1: a pre-allocated region of device memory
// holding full kernel-matrix rows for the batched SMO solver, with FIFO
// replacement (the paper's choice: "we find first-in first-out simple and
// sufficiently effective").
//
// Refinement over the paper's per-batch description: eviction is per-row in
// insertion (FIFO) order, and rows belonging to the current working set can
// be pinned so a large insertion cannot evict rows the ongoing round still
// needs. With q = capacity this degenerates to whole-buffer replacement,
// exactly the paper's batch behaviour.

#ifndef GMPSVM_SOLVER_KERNEL_BUFFER_H_
#define GMPSVM_SOLVER_KERNEL_BUFFER_H_

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace gmpsvm {

namespace fault {
class FaultInjector;
}  // namespace fault

class KernelBuffer {
 public:
  // Replacement policy. The paper uses kFifo ("simple and sufficiently
  // effective") and leaves better policies as out of scope; kLru is provided
  // for the ablation bench that quantifies that choice.
  enum class Policy { kFifo, kLru };

  // `row_length` kernel values per row (the binary problem's n);
  // `capacity_rows` buffered rows (the paper's bs).
  KernelBuffer(int64_t row_length, int64_t capacity_rows,
               Policy policy = Policy::kFifo);

  int64_t row_length() const { return row_length_; }
  int64_t capacity_rows() const { return capacity_rows_; }
  int64_t rows_buffered() const { return static_cast<int64_t>(index_.size()); }

  // Device-memory footprint of the buffer storage.
  size_t ByteSize() const { return storage_.size() * sizeof(double); }

  // Returns the buffered row or nullptr. Under kFifo this does not affect
  // eviction order; under kLru it refreshes recency.
  const double* Lookup(int32_t row);

  // Splits `rows` into those already buffered and those missing, preserving
  // order. Buffered hits are counted (and refreshed under kLru).
  void Partition(std::span<const int32_t> rows, std::vector<int32_t>* present,
                 std::vector<int32_t>* missing);

  // Pins `rows` so eviction skips them until the next Pin call replaces the
  // set. Call with the current working set each round.
  void Pin(std::span<const int32_t> rows);

  // Allocates storage for `rows` (which must not be buffered or pinned-
  // absent duplicates — except poisoned rows, which reuse their slot and are
  // marked clean for the caller to overwrite), evicting the oldest unpinned
  // rows as needed. Returns one writable pointer per row, in order. Fails if
  // rows.size() exceeds what can be made free without evicting pinned rows.
  Result<std::vector<double*>> InsertBatch(std::span<const int32_t> rows);

  // Attaches a fault injector: an InsertBatch that evicts may additionally
  // poison (fill with NaN) the oldest unpinned resident row. Poisoned rows
  // behave as absent — Lookup returns nullptr and Partition reports them
  // missing — so the solver recomputes them instead of reading garbage.
  void SetFaultInjector(fault::FaultInjector* injector) { fault_ = injector; }

  // Whether `row` is currently marked poisoned (test hook).
  bool IsPoisoned(int32_t row) const { return poisoned_.count(row) != 0; }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t rows_poisoned() const { return rows_poisoned_; }

 private:
  // Moves `row` to the back of the eviction queue (most recent).
  void Refresh(int32_t row);

  // Poisons the oldest unpinned resident row not in `just_inserted`.
  void PoisonOldestUnpinned(std::span<const int32_t> just_inserted);

  int64_t row_length_;
  int64_t capacity_rows_;
  Policy policy_;
  std::vector<double> storage_;
  std::unordered_map<int32_t, int64_t> index_;  // row -> slot
  std::deque<int32_t> fifo_;                    // eviction order, front = next victim
  std::unordered_set<int32_t> pinned_;
  std::vector<int64_t> free_slots_;
  std::unordered_set<int32_t> poisoned_;
  fault::FaultInjector* fault_ = nullptr;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t rows_poisoned_ = 0;
};

}  // namespace gmpsvm

#endif  // GMPSVM_SOLVER_KERNEL_BUFFER_H_
