#include "solver/smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "solver/kernel_cache.h"
#include "solver/working_set.h"

namespace gmpsvm {
namespace {

constexpr double kTau = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Cost of a parallel reduction / elementwise pass over n values.
TaskCost VectorPassCost(int64_t n, double flops_per_item, double bytes_per_item) {
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = flops_per_item * static_cast<double>(n);
  cost.bytes_read = bytes_per_item * static_cast<double>(n);
  return cost;
}

}  // namespace

Result<BinarySolution> SmoSolver::Solve(const BinaryProblem& problem,
                                        const KernelComputer& computer,
                                        SimExecutor* executor, StreamId stream,
                                        SolverStats* stats) const {
  const int64_t n = problem.n();
  if (n < 2) {
    return Status::InvalidArgument("binary problem needs at least 2 instances");
  }
  if (problem.C <= 0) {
    return Status::InvalidArgument("C must be positive");
  }
  const auto& y = problem.y;
  // Per-instance box constraints (class-weighted C).
  std::vector<double> cvec(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    cvec[static_cast<size_t>(i)] = problem.CFor(y[static_cast<size_t>(i)]);
  }

  // Kernel-row cache; on the GPU baseline it occupies device memory, halving
  // until it fits the budget.
  size_t cache_bytes = options_.cache_bytes;
  DeviceAllocation cache_reservation;
  if (options_.cache_on_device) {
    while (cache_bytes > (1u << 20)) {
      auto reservation = executor->Allocate(cache_bytes);
      if (reservation.ok()) {
        cache_reservation = std::move(reservation).value();
        break;
      }
      cache_bytes /= 2;
    }
  }
  KernelCache cache(n, cache_bytes, /*max_rows=*/n);

  // Fetches the local kernel row for `i`, serving from cache when possible.
  std::vector<int32_t> batch_one(1);
  const auto get_row = [&](int32_t i) -> const double* {
    if (const double* row = cache.Lookup(i)) {
      // Re-reading a cached row still touches memory on the device.
      executor->Charge(stream, VectorPassCost(n, 0.0, sizeof(double)));
      executor->counters().kernel_values_reused += n;
      if (stats != nullptr) ++stats->kernel_rows_reused;
      return row;
    }
    double* slot = cache.Insert(i);
    batch_one[0] = problem.rows[static_cast<size_t>(i)];
    computer.ComputeBlock(batch_one, problem.rows, executor, stream, slot);
    if (stats != nullptr) ++stats->kernel_rows_computed;
    return slot;
  };

  // State: alpha, optimality indicators f_i = sum_j alpha_j y_j K_ij - y_i.
  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  std::vector<double> f(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) f[static_cast<size_t>(i)] = -static_cast<double>(y[i]);
  executor->Charge(stream, VectorPassCost(n, 1.0, sizeof(double)));

  // Diagonal K_ii (from precomputed norms; one elementwise pass).
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    diag[static_cast<size_t>(i)] =
        computer.SelfKernelA(problem.rows[static_cast<size_t>(i)]);
  }
  executor->Charge(stream, VectorPassCost(n, 2.0, sizeof(double)));

  const double time_base = executor->StreamTime(stream);
  double kernel_time = 0.0;

  // Active set for the shrinking heuristic; initially every instance.
  std::vector<int32_t> active(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) active[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  const int64_t shrink_interval =
      std::max<int64_t>(1, std::min<int64_t>(options_.shrink_interval, n));
  int64_t next_shrink_check = shrink_interval;

  // Reconstructs exact optimality indicators for every instance from alpha
  // (used before unshrinking; one batched kernel product against the SVs).
  const auto reconstruct_f = [&]() {
    std::vector<int32_t> sv_locals;
    for (int64_t j = 0; j < n; ++j) {
      if (alpha[static_cast<size_t>(j)] > 0.0) sv_locals.push_back(static_cast<int32_t>(j));
    }
    for (int64_t i = 0; i < n; ++i) {
      f[static_cast<size_t>(i)] = -static_cast<double>(y[i]);
    }
    if (sv_locals.empty()) return;
    std::vector<int32_t> sv_globals(sv_locals.size());
    for (size_t m = 0; m < sv_locals.size(); ++m) {
      sv_globals[m] = problem.rows[static_cast<size_t>(sv_locals[m])];
    }
    std::vector<double> block(sv_locals.size() * static_cast<size_t>(n));
    computer.ComputeBlock(sv_globals, problem.rows, executor, stream, block.data());
    for (size_t m = 0; m < sv_locals.size(); ++m) {
      const double coef = alpha[static_cast<size_t>(sv_locals[m])] *
                          static_cast<double>(y[sv_locals[m]]);
      const double* row = block.data() + m * static_cast<size_t>(n);
      for (int64_t i = 0; i < n; ++i) f[static_cast<size_t>(i)] += coef * row[i];
    }
    executor->Charge(stream,
                     VectorPassCost(n, 2.0 * static_cast<double>(sv_locals.size()),
                                    2 * sizeof(double)));
  };

  int64_t iterations = 0;
  for (;; ++iterations) {
    if (iterations >= options_.max_iterations) {
      GMP_LOG(Warning) << "SMO hit max_iterations=" << options_.max_iterations;
      break;
    }
    const int64_t n_active = static_cast<int64_t>(active.size());

    // Step 1a: u = argmin f over I_up (parallel reduction over active set).
    int32_t u = -1;
    double f_u = kInf;
    for (int32_t i : active) {
      if (InUpSet(y[i], alpha[i], cvec[static_cast<size_t>(i)]) && f[static_cast<size_t>(i)] < f_u) {
        f_u = f[static_cast<size_t>(i)];
        u = i;
      }
    }
    executor->Charge(stream, VectorPassCost(n_active, 1.0, 2 * sizeof(double)));
    if (u < 0) {
      // I_up empty on the active set: optimal there; unshrink if needed.
      if (options_.shrinking && n_active < n) {
        reconstruct_f();
        active.resize(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) active[static_cast<size_t>(i)] = static_cast<int32_t>(i);
        continue;
      }
      break;
    }

    // Kernel row of u.
    double t0 = executor->StreamTime(stream);
    const double* row_u = get_row(u);
    kernel_time += executor->StreamTime(stream) - t0;

    // Step 1b: second-order choice of l plus the stopping-condition value
    // f_max = max f over I_low, in one pass (Equations (5) and (10)).
    int32_t l = -1;
    double best_gain = 0.0;
    double f_low_max = -kInf;
    const double k_uu = diag[static_cast<size_t>(u)];
    const bool second_order =
        options_.selection == SmoOptions::Selection::kSecondOrder;
    for (int32_t t : active) {
      if (!InLowSet(y[t], alpha[t], cvec[static_cast<size_t>(t)])) continue;
      const double f_t = f[static_cast<size_t>(t)];
      f_low_max = std::max(f_low_max, f_t);
      const double grad_diff = f_t - f_u;
      if (grad_diff > 0) {
        double gain;
        if (second_order) {
          double eta = k_uu + diag[static_cast<size_t>(t)] - 2.0 * row_u[t];
          if (eta <= 0) eta = kTau;
          gain = grad_diff * grad_diff / eta;
        } else {
          gain = grad_diff;  // maximal violating pair
        }
        if (gain > best_gain) {
          best_gain = gain;
          l = t;
        }
      }
    }
    executor->Charge(stream, VectorPassCost(n_active, 6.0, 3 * sizeof(double)));

    // Optimality (Constraint (9)) on the active set; with shrinking on,
    // reconstruct and unshrink once before declaring global convergence.
    if (l < 0 || f_low_max - f_u < options_.eps) {
      if (options_.shrinking && n_active < n) {
        reconstruct_f();
        active.resize(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) active[static_cast<size_t>(i)] = static_cast<int32_t>(i);
        next_shrink_check = iterations + shrink_interval;
        continue;
      }
      break;
    }

    t0 = executor->StreamTime(stream);
    const double* row_l = get_row(l);
    kernel_time += executor->StreamTime(stream) - t0;

    // Step 2: update alpha_u and alpha_l with LibSVM's clipping.
    const double old_au = alpha[static_cast<size_t>(u)];
    const double old_al = alpha[static_cast<size_t>(l)];
    const double g_u = y[u] * f_u;  // LibSVM gradient G_i = y_i f_i
    const double g_l = y[l] * f[static_cast<size_t>(l)];
    double& a_u = alpha[static_cast<size_t>(u)];
    double& a_l = alpha[static_cast<size_t>(l)];
    const double c_u = cvec[static_cast<size_t>(u)];
    const double c_l = cvec[static_cast<size_t>(l)];
    if (y[u] != y[l]) {
      // LibSVM's QD[i]+QD[j]+2*Q_i[j] with Q_i[j] = y_i y_j K_ij = -K_ul here,
      // i.e. eta = K_uu + K_ll - 2 K_ul in both branches. Clipping follows
      // LibSVM's unequal-C form (C_u and C_l may differ under -wi weights).
      double quad = k_uu + diag[static_cast<size_t>(l)] - 2.0 * row_u[l];
      if (quad <= 0) quad = kTau;
      const double delta = (-g_u - g_l) / quad;
      const double diff = a_u - a_l;
      a_u += delta;
      a_l += delta;
      if (diff > 0) {
        if (a_l < 0) {
          a_l = 0;
          a_u = diff;
        }
      } else {
        if (a_u < 0) {
          a_u = 0;
          a_l = -diff;
        }
      }
      if (diff > c_u - c_l) {
        if (a_u > c_u) {
          a_u = c_u;
          a_l = c_u - diff;
        }
      } else {
        if (a_l > c_l) {
          a_l = c_l;
          a_u = c_l + diff;
        }
      }
    } else {
      double quad = k_uu + diag[static_cast<size_t>(l)] - 2.0 * row_u[l];
      if (quad <= 0) quad = kTau;
      const double delta = (g_u - g_l) / quad;
      const double sum = a_u + a_l;
      a_u -= delta;
      a_l += delta;
      if (sum > c_u) {
        if (a_u > c_u) {
          a_u = c_u;
          a_l = sum - c_u;
        }
      } else {
        if (a_l < 0) {
          a_l = 0;
          a_u = sum;
        }
      }
      if (sum > c_l) {
        if (a_l > c_l) {
          a_l = c_l;
          a_u = sum - c_l;
        }
      } else {
        if (a_u < 0) {
          a_u = 0;
          a_l = sum;
        }
      }
    }
    executor->Charge(stream, VectorPassCost(1, 20.0, 0.0));

    // Step 3: update all optimality indicators (Equation (8)).
    const double d_au = a_u - old_au;
    const double d_al = a_l - old_al;
    const double yu_dau = y[u] * d_au;
    const double yl_dal = y[l] * d_al;
    for (int32_t i : active) {
      f[static_cast<size_t>(i)] += yu_dau * row_u[i] + yl_dal * row_l[i];
    }
    executor->Charge(stream, VectorPassCost(n_active, 4.0, 3 * sizeof(double)));

    // Shrinking: drop active instances pinned at a bound that cannot be
    // selected (only-up with f above the low extreme, only-low with f below
    // the up extreme).
    if (options_.shrinking && iterations >= next_shrink_check) {
      next_shrink_check = iterations + shrink_interval;
      std::vector<int32_t> kept;
      kept.reserve(active.size());
      for (int32_t i : active) {
        const bool in_up = InUpSet(y[i], alpha[i], cvec[static_cast<size_t>(i)]);
        const bool in_low = InLowSet(y[i], alpha[i], cvec[static_cast<size_t>(i)]);
        const double f_i = f[static_cast<size_t>(i)];
        const bool shrink = (in_up && !in_low && f_i > f_low_max) ||
                            (in_low && !in_up && f_i < f_u);
        if (!shrink) kept.push_back(i);
      }
      if (kept.size() >= 2 && kept.size() < active.size()) active = std::move(kept);
      executor->Charge(stream, VectorPassCost(n_active, 2.0, 2 * sizeof(double)));
    }
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->outer_rounds += iterations;
    stats->phases.Add("kernel_values", kernel_time);
    stats->phases.Add("other", executor->StreamTime(stream) - time_base - kernel_time);
  }

  // Bias (Equation (11)): b = -rho; rho is the mean f over free support
  // vectors, or the midpoint of the violation interval when none are free.
  double sum_free = 0.0;
  int64_t num_free = 0;
  double f_up_min = kInf, f_low_max = -kInf;
  for (int64_t i = 0; i < n; ++i) {
    const double a = alpha[static_cast<size_t>(i)];
    if (a > 0 && a < cvec[static_cast<size_t>(i)]) {
      sum_free += f[static_cast<size_t>(i)];
      ++num_free;
    }
    if (InUpSet(y[i], a, cvec[static_cast<size_t>(i)])) f_up_min = std::min(f_up_min, f[static_cast<size_t>(i)]);
    if (InLowSet(y[i], a, cvec[static_cast<size_t>(i)])) f_low_max = std::max(f_low_max, f[static_cast<size_t>(i)]);
  }
  const double rho =
      num_free > 0 ? sum_free / static_cast<double>(num_free) : (f_up_min + f_low_max) / 2.0;

  // Dual objective of the maximization form of problem (2):
  // sum(alpha) - 0.5*alpha'Q alpha = -0.5 * sum_i alpha_i * (G_i - 1).
  double objective = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double g_i = y[i] * f[static_cast<size_t>(i)];
    objective += alpha[static_cast<size_t>(i)] * (g_i - 1.0);
  }
  objective *= -0.5;

  BinarySolution solution;
  solution.alpha = std::move(alpha);
  solution.bias = -rho;
  solution.objective = objective;
  solution.f = std::move(f);
  return solution;
}

}  // namespace gmpsvm
