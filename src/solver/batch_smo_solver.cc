#include "solver/batch_smo_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "fault/fault_injector.h"
#include "solver/kernel_buffer.h"

namespace gmpsvm {
namespace {

constexpr double kTau = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

TaskCost VectorPassCost(int64_t n, double flops_per_item, double bytes_per_item) {
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = flops_per_item * static_cast<double>(n);
  cost.bytes_read = bytes_per_item * static_cast<double>(n);
  return cost;
}

}  // namespace

SmoPairDelta SmoUpdatePair(int32_t u, int32_t l, std::span<const int8_t> y,
                           double c_u_bound, double c_l_bound, double k_uu,
                           double k_ll, double k_ul, std::span<const double> f,
                           std::span<double> alpha) {
  const double old_au = alpha[u];
  const double old_al = alpha[l];
  const double g_u = y[u] * f[u];
  const double g_l = y[l] * f[l];
  double& a_u = alpha[u];
  double& a_l = alpha[l];
  double quad = k_uu + k_ll - 2.0 * k_ul;
  if (quad <= 0) quad = kTau;
  if (y[u] != y[l]) {
    const double delta = (-g_u - g_l) / quad;
    const double diff = a_u - a_l;
    a_u += delta;
    a_l += delta;
    if (diff > 0) {
      if (a_l < 0) {
        a_l = 0;
        a_u = diff;
      }
    } else {
      if (a_u < 0) {
        a_u = 0;
        a_l = -diff;
      }
    }
    if (diff > c_u_bound - c_l_bound) {
      if (a_u > c_u_bound) {
        a_u = c_u_bound;
        a_l = c_u_bound - diff;
      }
    } else {
      if (a_l > c_l_bound) {
        a_l = c_l_bound;
        a_u = c_l_bound + diff;
      }
    }
  } else {
    const double delta = (g_u - g_l) / quad;
    const double sum = a_u + a_l;
    a_u -= delta;
    a_l += delta;
    if (sum > c_u_bound) {
      if (a_u > c_u_bound) {
        a_u = c_u_bound;
        a_l = sum - c_u_bound;
      }
    } else {
      if (a_l < 0) {
        a_l = 0;
        a_u = sum;
      }
    }
    if (sum > c_l_bound) {
      if (a_l > c_l_bound) {
        a_l = c_l_bound;
        a_u = sum - c_l_bound;
      }
    } else {
      if (a_u < 0) {
        a_u = 0;
        a_l = sum;
      }
    }
  }
  return SmoPairDelta{a_u - old_au, a_l - old_al};
}

Status BatchSmoOptions::Validate() const {
  if (working_set.ws_size < 2) {
    return Status::InvalidArgument(
        StrPrintf("working_set.ws_size must be >= 2, got %d", working_set.ws_size));
  }
  if (working_set.q < 1) {
    return Status::InvalidArgument(
        StrPrintf("working_set.q must be >= 1, got %d", working_set.q));
  }
  // q and ws_size may both exceed the problem size; WorkingSetSelector
  // documents clamping them to the effective (n-limited) working set, and
  // callers rely on that for scaled configurations.
  if (!(eps > 0.0)) {
    return Status::InvalidArgument(StrPrintf("eps must be positive, got %g", eps));
  }
  if (buffer_rows < 0) {
    return Status::InvalidArgument(
        StrPrintf("buffer_rows must be >= 0, got %d", buffer_rows));
  }
  if (max_outer_rounds <= 0) {
    return Status::InvalidArgument(
        StrPrintf("max_outer_rounds must be positive, got %lld",
                  static_cast<long long>(max_outer_rounds)));
  }
  if (max_inner < 0) {
    return Status::InvalidArgument(
        StrPrintf("max_inner must be >= 0, got %d", max_inner));
  }
  if (max_row_batch_retries < 1) {
    return Status::InvalidArgument(StrPrintf(
        "max_row_batch_retries must be >= 1, got %d", max_row_batch_retries));
  }
  if (max_alloc_retries < 1) {
    return Status::InvalidArgument(
        StrPrintf("max_alloc_retries must be >= 1, got %d", max_alloc_retries));
  }
  return Status::OK();
}

Result<BinarySolution> BatchSmoSolver::Solve(const BinaryProblem& problem,
                                             const KernelComputer& computer,
                                             SimExecutor* executor, StreamId stream,
                                             SolverStats* stats) const {
  DirectRowSource source(&problem, &computer);
  return SolveImpl(problem, computer, &source, {}, executor, stream, stats);
}

Result<BinarySolution> BatchSmoSolver::Solve(const BinaryProblem& problem,
                                             const KernelComputer& computer,
                                             KernelRowSource* source,
                                             SimExecutor* executor, StreamId stream,
                                             SolverStats* stats) const {
  return SolveImpl(problem, computer, source, {}, executor, stream, stats);
}

Result<BinarySolution> BatchSmoSolver::SolveWarm(const BinaryProblem& problem,
                                                 const KernelComputer& computer,
                                                 std::span<const double> initial_alpha,
                                                 SimExecutor* executor,
                                                 StreamId stream,
                                                 SolverStats* stats) const {
  DirectRowSource source(&problem, &computer);
  return SolveImpl(problem, computer, &source, initial_alpha, executor, stream,
                   stats);
}

Result<BinarySolution> BatchSmoSolver::SolveWarm(const BinaryProblem& problem,
                                                 const KernelComputer& computer,
                                                 KernelRowSource* source,
                                                 std::span<const double> initial_alpha,
                                                 SimExecutor* executor,
                                                 StreamId stream,
                                                 SolverStats* stats) const {
  return SolveImpl(problem, computer, source, initial_alpha, executor, stream,
                   stats);
}

Result<BinarySolution> BatchSmoSolver::SolveImpl(const BinaryProblem& problem,
                                                 const KernelComputer& computer,
                                                 KernelRowSource* source,
                                                 std::span<const double> initial_alpha,
                                                 SimExecutor* executor,
                                                 StreamId stream,
                                                 SolverStats* stats) const {
  GMP_RETURN_NOT_OK(options_.Validate());
  const int64_t n = problem.n();
  if (n < 2) {
    return Status::InvalidArgument("binary problem needs at least 2 instances");
  }
  if (problem.C <= 0) {
    return Status::InvalidArgument("C must be positive");
  }
  const auto& y = problem.y;
  // Per-instance box constraints (class-weighted C).
  std::vector<double> cvec(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    cvec[static_cast<size_t>(i)] = problem.CFor(y[static_cast<size_t>(i)]);
  }

  WorkingSetSelector selector(options_.working_set, n);
  const int ws_size = selector.ws_size();
  const int64_t buffer_rows =
      std::max<int64_t>(options_.buffer_rows > 0 ? options_.buffer_rows : ws_size,
                        ws_size);

  // Reserve the GPU buffer against the device budget. A transient (injected)
  // allocation failure is retried in place; genuine OOM propagates.
  DeviceAllocation buffer_reservation;
  if (options_.buffer_on_device) {
    const size_t buffer_bytes =
        static_cast<size_t>(buffer_rows * n) * sizeof(double);
    for (int attempt = 1;; ++attempt) {
      auto reservation = executor->Allocate(buffer_bytes);
      if (reservation.ok()) {
        buffer_reservation = std::move(*reservation);
        break;
      }
      if (!reservation.status().IsUnavailable() ||
          attempt >= options_.max_alloc_retries) {
        return reservation.status();
      }
      if (stats != nullptr) ++stats->alloc_retries;
    }
  }
  KernelBuffer buffer(n, buffer_rows, options_.buffer_policy);
  buffer.SetFaultInjector(executor->fault_injector());

  // Solver state.
  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  std::vector<double> f(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) f[static_cast<size_t>(i)] = -static_cast<double>(y[i]);
  executor->Charge(stream, VectorPassCost(n, 1.0, sizeof(double)));

  if (!initial_alpha.empty()) {
    if (static_cast<int64_t>(initial_alpha.size()) != n) {
      return Status::InvalidArgument("initial_alpha size mismatch");
    }
    // Alpha seeding: clamp into this problem's box, repair the equality
    // constraint (clamping can break it), then rebuild f from the seed.
    double drift = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double a = std::clamp(initial_alpha[static_cast<size_t>(i)], 0.0,
                                  cvec[static_cast<size_t>(i)]);
      alpha[static_cast<size_t>(i)] = a;
      drift += a * static_cast<double>(y[i]);
    }
    for (int64_t i = 0; i < n && std::abs(drift) > 1e-12; ++i) {
      double& a = alpha[static_cast<size_t>(i)];
      if (a <= 0.0) continue;
      if ((drift > 0) == (y[i] > 0)) {
        const double reduce = std::min(a, std::abs(drift));
        a -= reduce;
        drift -= static_cast<double>(y[i]) * reduce;
      }
    }
    // f_i = sum_j alpha_j y_j K_ij - y_i via one batched product over seeds.
    std::vector<int32_t> seed_locals;
    for (int64_t j = 0; j < n; ++j) {
      if (alpha[static_cast<size_t>(j)] > 0.0) {
        seed_locals.push_back(static_cast<int32_t>(j));
      }
    }
    if (!seed_locals.empty()) {
      std::vector<int32_t> seed_globals(seed_locals.size());
      for (size_t m = 0; m < seed_locals.size(); ++m) {
        seed_globals[m] = problem.rows[static_cast<size_t>(seed_locals[m])];
      }
      std::vector<double> block(seed_locals.size() * static_cast<size_t>(n));
      computer.ComputeBlock(seed_globals, problem.rows, executor, stream,
                            block.data());
      for (size_t m = 0; m < seed_locals.size(); ++m) {
        const double coef = alpha[static_cast<size_t>(seed_locals[m])] *
                            static_cast<double>(y[seed_locals[m]]);
        const double* row = block.data() + m * static_cast<size_t>(n);
        for (int64_t i = 0; i < n; ++i) f[static_cast<size_t>(i)] += coef * row[i];
      }
      executor->Charge(
          stream, VectorPassCost(n, 2.0 * static_cast<double>(seed_locals.size()),
                                 2 * sizeof(double)));
    }
  }

  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    diag[static_cast<size_t>(i)] =
        computer.SelfKernelA(problem.rows[static_cast<size_t>(i)]);
  }
  executor->Charge(stream, VectorPassCost(n, 2.0, sizeof(double)));

  const int max_inner =
      options_.max_inner > 0 ? options_.max_inner : std::max(2, ws_size / 2);

  const double time_base = executor->StreamTime(stream);
  double kernel_time = 0.0;
  double subproblem_time = 0.0;

  std::vector<int32_t> present, missing;
  std::vector<double*> row_ptr(static_cast<size_t>(n), nullptr);
  std::vector<double> delta_alpha(static_cast<size_t>(n), 0.0);
  std::vector<uint8_t> in_ws(static_cast<size_t>(n), 0);
  int64_t iterations = 0;
  int64_t rounds = 0;
  double delta0 = -1.0;  // first observed global violation

  for (;; ++rounds) {
    if (rounds >= options_.max_outer_rounds) {
      GMP_LOG(Warning) << "batch SMO hit max_outer_rounds";
      break;
    }

    // Global convergence check (one parallel reduction over n).
    double f_up_min = kInf, f_low_max = -kInf;
    for (int64_t i = 0; i < n; ++i) {
      const double fi = f[static_cast<size_t>(i)];
      const double a = alpha[static_cast<size_t>(i)];
      if (InUpSet(y[i], a, cvec[static_cast<size_t>(i)])) f_up_min = std::min(f_up_min, fi);
      if (InLowSet(y[i], a, cvec[static_cast<size_t>(i)])) f_low_max = std::max(f_low_max, fi);
    }
    executor->Charge(stream, VectorPassCost(n, 2.0, 2 * sizeof(double)));
    const double delta = f_low_max - f_up_min;
    if (delta < options_.eps) break;
    if (delta0 < 0) delta0 = delta;

    // Refresh the working set (sorting by f dominates: n log n).
    const std::vector<int32_t>& ws =
        selector.Update(f, alpha, std::span<const int8_t>(y), cvec);
    executor->Charge(stream,
                     VectorPassCost(n, 2.0 * std::log2(static_cast<double>(n) + 2.0),
                                    2 * sizeof(double)));

    // Ensure all working-set rows are buffered; batch-compute the missing
    // ones (this is THE kernel-value computation of Figure 11).
    buffer.Pin(ws);
    buffer.Partition(ws, &present, &missing);
    if (!missing.empty()) {
      const double t0 = executor->StreamTime(stream);
      GMP_ASSIGN_OR_RETURN(std::vector<double*> slots, buffer.InsertBatch(missing));
      // Recovery: under an attached fault injector the batched row launch can
      // fail transiently. Each failed attempt burns a launch slot on the
      // stream; bounded retries either get through (the injector's
      // consecutive cap guarantees progress for well-formed plans) or give up
      // with kUnavailable for the trainer's pair-level retry to handle.
      fault::FaultInjector* injector = executor->fault_injector();
      int failed_attempts = 0;
      while (injector != nullptr &&
             injector->ShouldInject(fault::Site::kKernelRowBatch)) {
        executor->Charge(stream, TaskCost{});  // failed launch overhead
        if (stats != nullptr) ++stats->kernel_row_retries;
        if (++failed_attempts >= options_.max_row_batch_retries) {
          return Status::Unavailable(
              StrPrintf("kernel row batch failed %d times on stream %d",
                        failed_attempts, stream));
        }
      }
      source->ComputeRows(missing, slots, executor, stream);
      kernel_time += executor->StreamTime(stream) - t0;
      if (stats != nullptr) {
        stats->kernel_rows_computed += static_cast<int64_t>(missing.size());
      }
    }
    if (!present.empty()) {
      executor->counters().kernel_values_reused +=
          static_cast<int64_t>(present.size()) * n;
      if (stats != nullptr) {
        stats->kernel_rows_reused += static_cast<int64_t>(present.size());
      }
    }
    std::fill(in_ws.begin(), in_ws.end(), 0);
    for (int32_t w : ws) {
      row_ptr[static_cast<size_t>(w)] = const_cast<double*>(buffer.Lookup(w));
      GMP_DCHECK(row_ptr[static_cast<size_t>(w)] != nullptr);
      in_ws[static_cast<size_t>(w)] = 1;
    }

    // Inner loop: solve SMO subproblems restricted to the working set using
    // only buffered kernel values.
    const double inner_t0 = executor->StreamTime(stream);
    int budget = max_inner;
    if (options_.inner_policy == BatchSmoOptions::InnerPolicy::kDeltaAdaptive) {
      // Large delta (far from optimal) => fewer iterations per working set;
      // near convergence => optimize the set thoroughly.
      const double ratio = std::clamp(delta / delta0, 0.0, 1.0);
      budget = std::max(16, static_cast<int>(max_inner * (1.0 - 0.75 * ratio)));
      budget = std::min(budget, max_inner);
    }
    std::fill(delta_alpha.begin(), delta_alpha.end(), 0.0);
    int inner_done = 0;
    for (; inner_done < budget; ++inner_done) {
      // Selection restricted to the working set.
      int32_t u = -1;
      double f_u = kInf;
      for (int32_t w : ws) {
        if (InUpSet(y[w], alpha[w], cvec[static_cast<size_t>(w)]) && f[static_cast<size_t>(w)] < f_u) {
          f_u = f[static_cast<size_t>(w)];
          u = w;
        }
      }
      if (u < 0) break;
      const double* row_u = row_ptr[static_cast<size_t>(u)];

      int32_t l = -1;
      double best_gain = 0.0;
      double ws_low_max = -kInf;
      for (int32_t w : ws) {
        if (!InLowSet(y[w], alpha[w], cvec[static_cast<size_t>(w)])) continue;
        const double f_w = f[static_cast<size_t>(w)];
        ws_low_max = std::max(ws_low_max, f_w);
        const double grad_diff = f_w - f_u;
        if (grad_diff > 0) {
          double eta = diag[static_cast<size_t>(u)] + diag[static_cast<size_t>(w)] -
                       2.0 * row_u[w];
          if (eta <= 0) eta = kTau;
          const double gain = grad_diff * grad_diff / eta;
          if (gain > best_gain) {
            best_gain = gain;
            l = w;
          }
        }
      }
      // Early termination on the working set: once the local violation falls
      // well under the current global violation, further inner iterations
      // would only locally over-optimize this working set.
      if (l < 0 || ws_low_max - f_u < std::max(options_.eps * 0.5, 0.0)) break;

      const double* row_l = row_ptr[static_cast<size_t>(l)];
      const SmoPairDelta upd =
          SmoUpdatePair(u, l, y, cvec[static_cast<size_t>(u)],
                        cvec[static_cast<size_t>(l)], diag[static_cast<size_t>(u)],
                        diag[static_cast<size_t>(l)], row_u[l], f, alpha);
      delta_alpha[static_cast<size_t>(u)] += upd.d_alpha_u;
      delta_alpha[static_cast<size_t>(l)] += upd.d_alpha_l;

      // Update f for working-set members only (the cheap inner update).
      const double yu_dau = y[u] * upd.d_alpha_u;
      const double yl_dal = y[l] * upd.d_alpha_l;
      for (int32_t w : ws) {
        f[static_cast<size_t>(w)] += yu_dau * row_u[w] + yl_dal * row_l[w];
      }
    }
    // The whole inner solve runs as ONE device kernel (as in ThunderSVM's
    // local SMO): charge its accumulated reductions and updates in a single
    // launch rather than one launch per subproblem — this is precisely the
    // "solving q/2 subproblems in a batch is cheaper" effect.
    if (inner_done > 0) {
      TaskCost inner_cost = VectorPassCost(
          ws_size, 12.0 * static_cast<double>(inner_done),
          4.0 * static_cast<double>(inner_done) * sizeof(double));
      executor->Charge(stream, inner_cost);
    }
    iterations += inner_done;
    subproblem_time += executor->StreamTime(stream) - inner_t0;

    // Propagate the net alpha change to all n optimality indicators
    // (Equation (8) with the batch's aggregate delta; Line 11 of Alg. 2).
    int changed = 0;
    for (int32_t w : ws) {
      const double da = delta_alpha[static_cast<size_t>(w)];
      if (da == 0.0) continue;
      ++changed;
      const double yda = y[w] * da;
      const double* row_w = row_ptr[static_cast<size_t>(w)];
      // Working-set members were already updated incrementally inside the
      // inner loop; only non-members receive the aggregate update.
      for (int64_t i = 0; i < n; ++i) {
        if (!in_ws[static_cast<size_t>(i)]) {
          f[static_cast<size_t>(i)] += yda * row_w[i];
        }
      }
    }
    if (changed > 0) {
      TaskCost cost = VectorPassCost(n, 2.0 * changed,
                                     static_cast<double>(changed) * sizeof(double));
      executor->Charge(stream, cost);
    } else if (inner_done == 0) {
      // The working set admitted no violating pair although the global check
      // saw one; numerically stuck — bail out rather than loop forever.
      GMP_LOG(Warning) << "batch SMO stalled at delta=" << delta;
      break;
    }
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->outer_rounds += rounds;
    stats->rows_poisoned += buffer.rows_poisoned();
    stats->phases.Add("kernel_values", kernel_time);
    stats->phases.Add("subproblem", subproblem_time);
    stats->phases.Add("other", executor->StreamTime(stream) - time_base -
                                   kernel_time - subproblem_time);
  }

  // Bias and objective exactly as in SmoSolver.
  double sum_free = 0.0;
  int64_t num_free = 0;
  double f_up_min = kInf, f_low_max = -kInf;
  for (int64_t i = 0; i < n; ++i) {
    const double a = alpha[static_cast<size_t>(i)];
    const double fi = f[static_cast<size_t>(i)];
    if (a > 0 && a < cvec[static_cast<size_t>(i)]) {
      sum_free += fi;
      ++num_free;
    }
    if (InUpSet(y[i], a, cvec[static_cast<size_t>(i)])) f_up_min = std::min(f_up_min, fi);
    if (InLowSet(y[i], a, cvec[static_cast<size_t>(i)])) f_low_max = std::max(f_low_max, fi);
  }
  const double rho = num_free > 0 ? sum_free / static_cast<double>(num_free)
                                  : (f_up_min + f_low_max) / 2.0;

  double objective = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    objective += alpha[static_cast<size_t>(i)] *
                 (y[i] * f[static_cast<size_t>(i)] - 1.0);
  }
  objective *= -0.5;

  BinarySolution solution;
  solution.alpha = std::move(alpha);
  solution.bias = -rho;
  solution.objective = objective;
  solution.f = std::move(f);
  return solution;
}

}  // namespace gmpsvm
