// A small fixed-size thread pool with a blocking, nest-safe ParallelFor.
// Used by the CPU executor (CMP-SVM / LibSVM-with-OpenMP models) and by the
// host-parallel execution backend (SimExecutor::host_pool) for actual host
// parallelism; the simulated-time accounting lives in the executor layer,
// not here.
//
// Determinism contract: ParallelFor partitions [0, n) into contiguous,
// statically-determined chunks. Which thread executes which chunk is
// scheduling-dependent, so bodies must only write disjoint, index-derived
// locations; any floating-point reduction must be merged by the caller in a
// fixed (index) order after ParallelFor returns. Under that contract the
// results are byte-identical for every pool size, including 1.

#ifndef GMPSVM_COMMON_THREAD_POOL_H_
#define GMPSVM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gmpsvm {

class ThreadPool {
 public:
  // Creates `num_threads` workers (>= 1). A pool of one thread executes
  // tasks inline from Run()/ParallelFor() callers' perspective but still on
  // a worker, preserving identical behaviour regardless of size.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  // Blocks until all scheduled tasks have completed.
  void Wait();

  // Partitions [0, n) into contiguous chunks, runs `body(begin, end)` across
  // the workers *and* the calling thread, and blocks until every chunk has
  // completed. Chunk granularity targets ~4 chunks per thread for load
  // balance; `min_chunk` bounds scheduling overhead on tiny ranges.
  //
  // Each call tracks its own completion (it does not wait for unrelated
  // Schedule()d tasks), and the caller participates in chunk execution, so
  // ParallelFor may be invoked from within a pool worker (nested parallel
  // regions) or concurrently from several external threads without deadlock.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& body,
                   int64_t min_chunk = 1024);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // signals workers: work available / stop
  std::condition_variable idle_cv_;   // signals Wait(): all work drained
  int active_ = 0;                    // tasks currently executing
  bool stop_ = false;
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_THREAD_POOL_H_
