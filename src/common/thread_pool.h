// A small fixed-size thread pool with a blocking ParallelFor. Used by the
// CPU executor (CMP-SVM / LibSVM-with-OpenMP models) for actual host
// parallelism; the simulated-time accounting lives in the executor layer,
// not here.

#ifndef GMPSVM_COMMON_THREAD_POOL_H_
#define GMPSVM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gmpsvm {

class ThreadPool {
 public:
  // Creates `num_threads` workers (>= 1). A pool of one thread executes
  // tasks inline from Run()/ParallelFor() callers' perspective but still on
  // a worker, preserving identical behaviour regardless of size.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  // Blocks until all scheduled tasks have completed.
  void Wait();

  // Partitions [0, n) into contiguous chunks, runs `body(begin, end)` on the
  // workers, and blocks until done. Chunk granularity targets ~4 chunks per
  // thread for load balance; `min_chunk` bounds scheduling overhead on tiny
  // ranges.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& body,
                   int64_t min_chunk = 1024);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;        // signals workers: work available / stop
  std::condition_variable idle_cv_;   // signals Wait(): all work drained
  int active_ = 0;                    // tasks currently executing
  bool stop_ = false;
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_THREAD_POOL_H_
