// Deterministic random number generation. Every stochastic component in the
// library takes an explicit seed and derives its streams from this class, so
// all experiments are reproducible bit-for-bit across runs.

#ifndef GMPSVM_COMMON_RNG_H_
#define GMPSVM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gmpsvm {

// A seeded PRNG wrapper (xoshiro-quality via std::mt19937_64) with the
// sampling helpers the data generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() { return uniform_(engine_); }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  // Standard normal.
  double Normal() { return normal_(engine_); }

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  // Derives an independent child generator; `stream` distinguishes children
  // created from the same parent.
  Rng Fork(uint64_t stream) {
    // SplitMix64 finalizer over (state sample, stream id) decorrelates
    // children even for adjacent stream ids.
    uint64_t x = engine_() ^ (stream * 0x9E3779B97F4A7C15ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return Rng(x);
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_RNG_H_
