// Status and Result<T>: exception-free error propagation for the public API.
//
// Modeled on the conventions used by Apache Arrow and RocksDB: functions that
// can fail return a Status (or a Result<T> when they also produce a value),
// and callers propagate failures with GMP_RETURN_NOT_OK / GMP_ASSIGN_OR_RETURN.
// A Status carries an error code and a human-readable message; the OK status
// is cheap to create and copy.

#ifndef GMPSVM_COMMON_STATUS_H_
#define GMPSVM_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace gmpsvm {

// Broad category of a failure. Kept deliberately small; the message carries
// the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,      // simulated device memory budget exceeded
  kIoError,          // file read/write/parse failures
  kNotImplemented,
  kFailedPrecondition,
  kInternal,           // invariant violation inside the library
  kResourceExhausted,  // bounded queue / admission-control rejection
  kDeadlineExceeded,   // request deadline passed before completion
  kUnavailable,        // transient failure (injected fault); safe to retry
};

// Returns a stable lowercase name for `code`, e.g. "invalid-argument".
const char* StatusCodeToString(StatusCode code);

// A Status is either OK (no payload, no allocation) or an error with a code
// and message. Copyable and movable; moving from a Status leaves it OK.
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk);
    rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
  }

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfMemory(std::string message) {
    return Status(StatusCode::kOutOfMemory, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status NotImplemented(std::string message) {
    return Status(StatusCode::kNotImplemented, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message.
  // OK statuses are returned unchanged.
  Status WithContext(const std::string& context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so copies are cheap; never mutated after construction.
  std::shared_ptr<const Rep> rep_;
};

// Result<T> holds either a value of type T or an error Status. Use
// GMP_ASSIGN_OR_RETURN to unwrap in functions that themselves return
// Status/Result.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> rep_;
};

namespace internal {
// Token-pasting helpers so the macros below create unique temporaries.
#define GMP_CONCAT_IMPL(x, y) x##y
#define GMP_CONCAT(x, y) GMP_CONCAT_IMPL(x, y)
}  // namespace internal

// Evaluates `expr` (a Status expression); returns it from the enclosing
// function if it is not OK.
#define GMP_RETURN_NOT_OK(expr)                        \
  do {                                                 \
    ::gmpsvm::Status gmp_status_ = (expr);             \
    if (!gmp_status_.ok()) return gmp_status_;         \
  } while (false)

// Evaluates `rexpr` (a Result<T> expression); on error returns the Status,
// otherwise moves the value into `lhs` (which may include a declaration,
// e.g. `GMP_ASSIGN_OR_RETURN(auto m, LoadModel(path));`).
#define GMP_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

#define GMP_ASSIGN_OR_RETURN(lhs, rexpr) \
  GMP_ASSIGN_OR_RETURN_IMPL(GMP_CONCAT(gmp_result_, __LINE__), lhs, rexpr)

// Aborts with a message if `expr` is not OK. For use in tests, examples and
// benchmarks where an error is a bug.
#define GMP_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::gmpsvm::Status gmp_status_ = (expr);                              \
    if (!gmp_status_.ok()) {                                            \
      ::gmpsvm::internal::DieOfStatus(gmp_status_, __FILE__, __LINE__); \
    }                                                                   \
  } while (false)

namespace internal {
[[noreturn]] void DieOfStatus(const Status& status, const char* file, int line);
}  // namespace internal

// Unwraps a Result<T> in contexts that cannot propagate (tests, examples).
// Aborts on error.
template <typename T>
T ValueOrDie(Result<T> result, const char* file = __FILE__, int line = __LINE__) {
  if (!result.ok()) internal::DieOfStatus(result.status(), file, line);
  return std::move(result).value();
}

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_STATUS_H_
