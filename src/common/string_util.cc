#include "common/string_util.h"

#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <system_error>

namespace gmpsvm {

std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t begin = 0;
  while (begin < text.size()) {
    const size_t end = text.find_first_of(delims, begin);
    const size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > begin) out.push_back(text.substr(begin, stop - begin));
    begin = stop + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* ws = " \t\r\n";
  const size_t first = text.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

namespace {

template <typename T>
bool ParseWithFromChars(std::string_view text, T* out) {
  T value{};
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

}  // namespace

bool ParseInt32(std::string_view text, int32_t* out) {
  return ParseWithFromChars(text, out);
}

bool ParseInt64(std::string_view text, int64_t* out) {
  return ParseWithFromChars(text, out);
}

bool ParseDouble(std::string_view text, double* out) {
  return ParseWithFromChars(text, out);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 0) return "-" + HumanSeconds(-seconds);
  if (seconds < 1e-3) return StrPrintf("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return StrPrintf("%.0f ms", seconds * 1e3);
  if (seconds < 120.0) return StrPrintf("%.2f s", seconds);
  if (seconds < 7200.0) return StrPrintf("%.1f min", seconds / 60.0);
  return StrPrintf("%.2f h", seconds / 3600.0);
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrPrintf(unit == 0 ? "%.0f %s" : "%.2f %s", bytes, units[unit]);
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace gmpsvm
