#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gmpsvm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfMemory:
      return "out-of-memory";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kNotImplemented:
      return "not-implemented";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code(), context + ": " + message());
}

namespace internal {

void DieOfStatus(const Status& status, const char* file, int line) {
  std::fprintf(stderr, "FATAL %s:%d: %s\n", file, line, status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gmpsvm
