#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace gmpsvm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff) {
  if (enabled_) {
    // Strip the directory part for compact output.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace gmpsvm
