// Wall-clock stopwatch and a phase-accumulating timer used by the trainers
// and predictors to attribute elapsed time to pipeline components (kernel
// values / subproblem / rest, etc. — Figures 11 and 12 of the paper).

#ifndef GMPSVM_COMMON_STOPWATCH_H_
#define GMPSVM_COMMON_STOPWATCH_H_

#include <chrono>
#include <map>
#include <string>

namespace gmpsvm {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates named durations. Not thread-safe; intended for a single
// pipeline driver thread.
class PhaseTimer {
 public:
  // Adds `seconds` to the named phase.
  void Add(const std::string& phase, double seconds) { phases_[phase] += seconds; }

  double Get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  double Total() const {
    double t = 0.0;
    for (const auto& [name, secs] : phases_) t += secs;
    return t;
  }

  const std::map<std::string, double>& phases() const { return phases_; }

  void Clear() { phases_.clear(); }

  // Merges another timer's phases into this one.
  void Merge(const PhaseTimer& other) {
    for (const auto& [name, secs] : other.phases_) phases_[name] += secs;
  }

 private:
  std::map<std::string, double> phases_;
};

// RAII helper: adds the scope's duration to `timer[phase]` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer* timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ~ScopedPhase() {
    if (timer_ != nullptr) timer_->Add(phase_, watch_.ElapsedSeconds());
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_STOPWATCH_H_
