// Small string helpers shared by the I/O layer and the benchmark reporters.

#ifndef GMPSVM_COMMON_STRING_UTIL_H_
#define GMPSVM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gmpsvm {

// Splits on any char in `delims`, dropping empty tokens.
std::vector<std::string_view> SplitTokens(std::string_view text,
                                          std::string_view delims);

// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Non-throwing numeric parsing: the whole token must be a valid in-range
// number. Returns false (leaving *out untouched) otherwise — unlike
// std::stol/std::stod these never throw on malformed or out-of-range input,
// which is what the I/O layer needs to turn arbitrary bytes into an error
// Status instead of a crash.
bool ParseInt32(std::string_view text, int32_t* out);
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);

// Formats seconds with a sensible unit, e.g. "34.10 s", "927 ms", "2.0 h".
std::string HumanSeconds(double seconds);

// Formats byte counts, e.g. "11.9 GB", "512 KB".
std::string HumanBytes(double bytes);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_STRING_UTIL_H_
