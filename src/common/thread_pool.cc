#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"

namespace gmpsvm {
namespace {

// Per-ParallelFor-call completion state. Chunk boundaries are fixed up front
// (static partition); workers and the caller claim chunks with an atomic
// cursor. Helpers hold a shared_ptr so a straggler that wakes after the call
// returned (having claimed nothing) touches only this state, never the
// caller's stack.
struct ParallelForState {
  int64_t n = 0;
  int64_t chunk = 0;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;
  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int64_t done = 0;

  // Claims and runs chunks until none remain. Returns after this thread can
  // no longer contribute; other threads may still be inside `body`.
  void RunChunks() {
    for (;;) {
      const int64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t begin = c * chunk;
      const int64_t end = std::min(begin + chunk, n);
      (*body)(begin, end);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == num_chunks) done_cv.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& body,
                             int64_t min_chunk) {
  if (n <= 0) return;
  min_chunk = std::max<int64_t>(1, min_chunk);
  const int64_t target_chunks = static_cast<int64_t>(num_threads()) * 4;
  const int64_t chunk = std::max(min_chunk, (n + target_chunks - 1) / target_chunks);
  if (chunk >= n) {
    body(0, n);  // Too small to be worth dispatching.
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->chunk = chunk;
  state->num_chunks = (n + chunk - 1) / chunk;
  state->body = &body;
  // The caller runs chunks too, so at most num_chunks - 1 helpers are useful.
  const int64_t helpers = std::min<int64_t>(num_threads(), state->num_chunks - 1);
  for (int64_t i = 0; i < helpers; ++i) {
    Schedule([state] { state->RunChunks(); });
  }
  state->RunChunks();
  // `body` (and the caller's stack) must stay alive until every claimed chunk
  // has finished, not just until no chunks remain unclaimed.
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->done == state->num_chunks; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace gmpsvm
