#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace gmpsvm {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t, int64_t)>& body,
                             int64_t min_chunk) {
  if (n <= 0) return;
  min_chunk = std::max<int64_t>(1, min_chunk);
  const int64_t target_chunks = static_cast<int64_t>(num_threads()) * 4;
  const int64_t chunk = std::max(min_chunk, (n + target_chunks - 1) / target_chunks);
  if (chunk >= n) {
    body(0, n);  // Too small to be worth dispatching.
    return;
  }
  for (int64_t begin = 0; begin < n; begin += chunk) {
    const int64_t end = std::min(begin + chunk, n);
    Schedule([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace gmpsvm
