// Monotonic-clock deadlines for the serving layer. All request timing uses
// std::chrono::steady_clock (never the wall clock, which can jump), matching
// the convention of gRPC-style deadline propagation: a Deadline is an
// absolute point on the monotonic timeline, constructed either from a
// relative timeout (After) or as "no deadline" (Infinite).

#ifndef GMPSVM_COMMON_DEADLINE_H_
#define GMPSVM_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>

namespace gmpsvm {

using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

inline MonotonicTime MonotonicNow() { return MonotonicClock::now(); }

// Seconds between two monotonic time points (b - a).
inline double SecondsBetween(MonotonicTime a, MonotonicTime b) {
  return std::chrono::duration<double>(b - a).count();
}

// t + d, saturating at MonotonicTime::max() instead of overflowing. Needed
// wherever a duration that may be duration::max() (infinite deadline) is
// added to a time_point — naive addition is signed overflow, i.e. UB, and in
// practice produces a time_point in the past that makes waits spin.
inline MonotonicTime SafeTimeAdd(MonotonicTime t, MonotonicClock::duration d) {
  if (d.count() > 0 && d > MonotonicTime::max() - t) {
    return MonotonicTime::max();
  }
  return t + d;
}

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() : time_(MonotonicTime::max()) {}

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(MonotonicTime time) { return Deadline(time); }

  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> timeout) {
    return Deadline(MonotonicNow() +
                    std::chrono::duration_cast<MonotonicClock::duration>(timeout));
  }

  bool is_infinite() const { return time_ == MonotonicTime::max(); }

  bool Expired() const { return !is_infinite() && MonotonicNow() >= time_; }

  MonotonicTime time() const { return time_; }

  // Time left before expiry, clamped to zero; infinite deadlines report the
  // clock's maximum duration.
  MonotonicClock::duration Remaining() const {
    if (is_infinite()) return MonotonicClock::duration::max();
    const MonotonicTime now = MonotonicNow();
    return now >= time_ ? MonotonicClock::duration::zero() : time_ - now;
  }

  // Remaining() clamped to `max_slice`. Use this (never raw Remaining()) to
  // feed condition_variable/future wait_for calls: an infinite deadline's
  // duration::max() overflows when the wait implementation adds it to
  // steady_clock::now(). Waiters loop on bounded slices instead.
  MonotonicClock::duration BoundedRemaining(
      MonotonicClock::duration max_slice) const {
    return std::min(Remaining(), max_slice);
  }

 private:
  explicit Deadline(MonotonicTime time) : time_(time) {}

  MonotonicTime time_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_DEADLINE_H_
