// Monotonic-clock deadlines for the serving layer. All request timing uses
// std::chrono::steady_clock (never the wall clock, which can jump), matching
// the convention of gRPC-style deadline propagation: a Deadline is an
// absolute point on the monotonic timeline, constructed either from a
// relative timeout (After) or as "no deadline" (Infinite).

#ifndef GMPSVM_COMMON_DEADLINE_H_
#define GMPSVM_COMMON_DEADLINE_H_

#include <chrono>

namespace gmpsvm {

using MonotonicClock = std::chrono::steady_clock;
using MonotonicTime = MonotonicClock::time_point;

inline MonotonicTime MonotonicNow() { return MonotonicClock::now(); }

// Seconds between two monotonic time points (b - a).
inline double SecondsBetween(MonotonicTime a, MonotonicTime b) {
  return std::chrono::duration<double>(b - a).count();
}

class Deadline {
 public:
  // Default-constructed deadlines never expire.
  Deadline() : time_(MonotonicTime::max()) {}

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(MonotonicTime time) { return Deadline(time); }

  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> timeout) {
    return Deadline(MonotonicNow() +
                    std::chrono::duration_cast<MonotonicClock::duration>(timeout));
  }

  bool is_infinite() const { return time_ == MonotonicTime::max(); }

  bool Expired() const { return !is_infinite() && MonotonicNow() >= time_; }

  MonotonicTime time() const { return time_; }

  // Time left before expiry, clamped to zero; infinite deadlines report the
  // clock's maximum duration.
  MonotonicClock::duration Remaining() const {
    if (is_infinite()) return MonotonicClock::duration::max();
    const MonotonicTime now = MonotonicNow();
    return now >= time_ ? MonotonicClock::duration::zero() : time_ - now;
  }

 private:
  explicit Deadline(MonotonicTime time) : time_(time) {}

  MonotonicTime time_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_DEADLINE_H_
