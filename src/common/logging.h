// Minimal leveled logging. Off by default for Info and below so benchmarks
// stay quiet; the level is process-global and settable from tests/tools.

#ifndef GMPSVM_COMMON_LOGGING_H_
#define GMPSVM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gmpsvm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Sets / reads the process-global minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GMP_LOG(level)                                                \
  ::gmpsvm::internal::LogMessage(::gmpsvm::LogLevel::k##level, __FILE__, __LINE__)

// GMP_DCHECK: assertion that logs and aborts; compiled out in NDEBUG builds.
#ifndef NDEBUG
#define GMP_DCHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      GMP_LOG(Error) << "DCHECK failed: " #cond;                             \
      std::abort();                                                          \
    }                                                                        \
  } while (false)
#else
#define GMP_DCHECK(cond) \
  do {                   \
  } while (false)
#endif

}  // namespace gmpsvm

#endif  // GMPSVM_COMMON_LOGGING_H_
