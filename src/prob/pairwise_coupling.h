// Multi-class probability estimation by pairwise coupling (Section 2.2.2,
// Wu, Lin & Weng 2004). Given the k*k matrix of pairwise probability
// estimates r_st = P(y = s | y in {s,t}, x), solves problem (14):
//
//   min_p sum_s sum_{t != s} (r_ts p_s - r_st p_t)^2   s.t.  sum p_s = 1
//
// Two solution methods are provided:
//   * kGaussianElimination — the paper's choice (Equation 15): form Q and
//     solve the KKT system directly. This is what GMP-SVM runs on the GPU
//     (the paper uses cuSPARSE; we run it through the device substrate).
//   * kIterative — LibSVM's fixed-point iteration, used by the LibSVM
//     reference implementation. Produces the same argmax and near-identical
//     probabilities; tests cross-validate the two.

#ifndef GMPSVM_PROB_PAIRWISE_COUPLING_H_
#define GMPSVM_PROB_PAIRWISE_COUPLING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "device/executor.h"
#include "simd/simd.h"

namespace gmpsvm {

enum class CouplingMethod { kGaussianElimination, kIterative };

struct CouplingOptions {
  CouplingMethod method = CouplingMethod::kGaussianElimination;
  // Iterative method controls (LibSVM defaults).
  int max_iterations = 100;
  double eps = 0.005;  // scaled by 1/k internally, as in LibSVM
  // SIMD tier for the solve's inner loops (kAuto = process-wide active
  // tier). Every tier is byte-identical — a speed knob only.
  simd::SimdTier simd = simd::SimdTier::kAuto;
};

// Couples one instance. `r` is k*k row-major; r[s*k + t] = P(s | {s,t}, x)
// for s != t (the diagonal is ignored). Returns p of length k, nonnegative,
// summing to 1. Host-only (uncharged) — used by reference code and tests.
Result<std::vector<double>> CoupleProbabilities(std::span<const double> r, int k,
                                                const CouplingOptions& options);

// Couples `count` instances, r laid out instance-major (count blocks of
// k*k), writing `count` rows of k probabilities to `out`. Charges the work
// as one batch task: instances are independent, so parallelism scales with
// the batch (this is Phase (iii)-(3) of the GPU baseline and GMP-SVM).
Status CoupleBatch(std::span<const double> r, int k, int64_t count,
                   const CouplingOptions& options, SimExecutor* executor,
                   StreamId stream, double* out);

}  // namespace gmpsvm

#endif  // GMPSVM_PROB_PAIRWISE_COUPLING_H_
