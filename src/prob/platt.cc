#include "prob/platt.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace gmpsvm {
namespace {

// Stable negative log-likelihood of the sigmoid fit (Lin et al. 2007 form).
double Objective(std::span<const double> dec, std::span<const double> t, double a,
                 double b) {
  double fval = 0.0;
  for (size_t i = 0; i < dec.size(); ++i) {
    const double f_apb = dec[i] * a + b;
    if (f_apb >= 0) {
      fval += t[i] * f_apb + std::log1p(std::exp(-f_apb));
    } else {
      fval += (t[i] - 1.0) * f_apb + std::log1p(std::exp(f_apb));
    }
  }
  return fval;
}

TaskCost PassCost(int64_t n, double flops_per_item, int64_t concurrent_copies = 1) {
  TaskCost cost;
  cost.parallel_items = n * concurrent_copies;
  cost.flops = flops_per_item * static_cast<double>(n * concurrent_copies);
  cost.bytes_read = static_cast<double>(n * concurrent_copies) * sizeof(double);
  return cost;
}

}  // namespace

double SigmoidParams::Probability(double v) const {
  const double f_apb = v * a + b;
  if (f_apb >= 0) {
    const double e = std::exp(-f_apb);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(f_apb));
}

Result<SigmoidParams> FitSigmoid(std::span<const double> decision_values,
                                 std::span<const int8_t> labels,
                                 const PlattOptions& options, SimExecutor* executor,
                                 StreamId stream, int parallel_candidates) {
  const size_t n = decision_values.size();
  if (n == 0 || labels.size() != n) {
    return Status::InvalidArgument("empty or mismatched decision values / labels");
  }
  parallel_candidates = std::max(1, parallel_candidates);

  // Regularized targets of Equation (13).
  double prior1 = 0, prior0 = 0;
  for (int8_t y : labels) (y > 0 ? prior1 : prior0) += 1.0;
  const double hi_target = (prior1 + 1.0) / (prior1 + 2.0);
  const double lo_target = 1.0 / (prior0 + 2.0);
  std::vector<double> t(n);
  for (size_t i = 0; i < n; ++i) t[i] = labels[i] > 0 ? hi_target : lo_target;

  SigmoidParams params;
  params.a = 0.0;
  params.b = std::log((prior0 + 1.0) / (prior1 + 1.0));
  double fval = Objective(decision_values, t, params.a, params.b);
  executor->Charge(stream, PassCost(static_cast<int64_t>(n), 15.0));

  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    // Gradient and Hessian of F(A, B): three parallel reductions over n.
    double h11 = options.sigma, h22 = options.sigma, h21 = 0.0;
    double g1 = 0.0, g2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double f_apb = decision_values[i] * params.a + params.b;
      double p, q;
      if (f_apb >= 0) {
        const double e = std::exp(-f_apb);
        p = e / (1.0 + e);
        q = 1.0 / (1.0 + e);
      } else {
        const double e = std::exp(f_apb);
        p = 1.0 / (1.0 + e);
        q = e / (1.0 + e);
      }
      const double d2 = p * q;
      h11 += decision_values[i] * decision_values[i] * d2;
      h22 += d2;
      h21 += decision_values[i] * d2;
      const double d1 = t[i] - p;
      g1 += decision_values[i] * d1;
      g2 += d1;
    }
    executor->Charge(stream, PassCost(static_cast<int64_t>(n), 25.0));

    if (std::abs(g1) < options.eps && std::abs(g2) < options.eps) break;

    // Newton direction.
    const double det = h11 * h22 - h21 * h21;
    const double d_a = -(h22 * g1 - h21 * g2) / det;
    const double d_b = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * d_a + g2 * d_b;

    // Backtracking line search. GMP-SVM evaluates `parallel_candidates`
    // step sizes concurrently; the cost model charges evaluations in groups
    // of that width.
    double stepsize = 1.0;
    int evals_pending = 0;
    bool accepted = false;
    while (stepsize >= options.min_step) {
      const double new_a = params.a + stepsize * d_a;
      const double new_b = params.b + stepsize * d_b;
      const double new_f = Objective(decision_values, t, new_a, new_b);
      ++evals_pending;
      if (evals_pending == parallel_candidates) {
        executor->Charge(stream,
                         PassCost(static_cast<int64_t>(n), 15.0, evals_pending));
        evals_pending = 0;
      }
      if (new_f < fval + 1e-4 * stepsize * gd) {
        params.a = new_a;
        params.b = new_b;
        fval = new_f;
        accepted = true;
        break;
      }
      stepsize /= 2.0;
    }
    if (evals_pending > 0) {
      executor->Charge(stream,
                       PassCost(static_cast<int64_t>(n), 15.0, evals_pending));
    }
    if (!accepted) {
      GMP_LOG(Warning) << "sigmoid fit: line search failed at iteration " << iter;
      break;
    }
  }
  if (iter >= options.max_iterations) {
    GMP_LOG(Warning) << "sigmoid fit reached max iterations";
  }
  return params;
}

}  // namespace gmpsvm
