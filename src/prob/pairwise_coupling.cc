#include "prob/pairwise_coupling.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace gmpsvm {
namespace {

// Builds the Q matrix of Equation (15):
//   Q_ss = sum_{u != s} r_us^2,   Q_st = -r_st * r_ts (s != t).
// No transpose scratch: every off-diagonal entry is a single rounded product
// (IEEE multiplication commutes, so Q_st and Q_ts are the same bits), and
// one pass over the upper triangle fills both symmetric halves. The diagonal
// accumulates column sums of r ⊙ r row-by-row through the tier's elementwise
// ops: lane s only ever touches column s and the row order u = 0..k-1 is
// fixed, so every tier adds in the identical per-lane sequence (mul_neg
// rounds each square once; axpy_neg with factor 1.0 subtracts the negated
// square, an exact sign flip). Callers leave r's diagonal at zero (it has no
// meaning in Equation 15), which makes the accumulated r_ss^2 term and its
// subtraction exact no-ops; a nonzero diagonal would still cancel up to one
// rounding.
void BuildQ(std::span<const double> r, int k, const simd::SimdOps& ops,
            std::vector<double>* q) {
  q->resize(static_cast<size_t>(k) * k);
  std::vector<double> diag(static_cast<size_t>(k), 0.0);
  std::vector<double> sq(static_cast<size_t>(k));
  for (int u = 0; u < k; ++u) {
    const double* r_row = r.data() + static_cast<size_t>(u) * k;
    ops.mul_neg(sq.data(), r_row, r_row, k);       // sq[s] = -(r_us^2)
    ops.axpy_neg(diag.data(), sq.data(), k, 1.0);  // diag[s] += r_us^2
  }
  for (int s = 0; s < k; ++s) {
    const double* r_row = r.data() + static_cast<size_t>(s) * k;
    double* q_row = q->data() + static_cast<size_t>(s) * k;
    for (int t = s + 1; t < k; ++t) {
      const double v = -(r_row[t] * r[static_cast<size_t>(t) * k + s]);
      q_row[t] = v;
      (*q)[static_cast<size_t>(t) * k + s] = v;
    }
    const double r_ss = r_row[s];
    q_row[s] = diag[static_cast<size_t>(s)] - r_ss * r_ss;
  }
}

// Solves Q x = e by Gaussian elimination with partial pivoting, adding a
// ridge and retrying if a pivot vanishes ("a small value is added to Q when
// its inversion does not exist"). Returns p = x / sum(x), clamped
// nonnegative. Row updates and the back-substitution dot run on the SIMD
// tier (axpy is per-lane exact; the dot uses the canonical blocked tree),
// so every tier solves bit-identically.
Result<std::vector<double>> SolveDirect(std::span<const double> r, int k,
                                        const simd::SimdOps& ops) {
  std::vector<double> q;
  BuildQ(r, k, ops, &q);
  const double kRidge0 = 0.0;
  for (double ridge = kRidge0;; ridge = (ridge == 0.0 ? 1e-10 : ridge * 100)) {
    std::vector<double> m = q;
    for (int s = 0; s < k; ++s) m[static_cast<size_t>(s) * k + s] += ridge;
    std::vector<double> x(static_cast<size_t>(k), 1.0);  // rhs e

    bool singular = false;
    std::vector<int> perm(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) perm[static_cast<size_t>(i)] = i;
    for (int col = 0; col < k && !singular; ++col) {
      // Partial pivot.
      int pivot = col;
      double best = std::abs(m[static_cast<size_t>(perm[col]) * k + col]);
      for (int row = col + 1; row < k; ++row) {
        const double v = std::abs(m[static_cast<size_t>(perm[row]) * k + col]);
        if (v > best) {
          best = v;
          pivot = row;
        }
      }
      if (best < 1e-12) {
        singular = true;
        break;
      }
      std::swap(perm[static_cast<size_t>(col)], perm[static_cast<size_t>(pivot)]);
      const size_t prow = static_cast<size_t>(perm[col]);
      const double inv_pivot = 1.0 / m[prow * k + col];
      for (int row = col + 1; row < k; ++row) {
        const size_t rrow = static_cast<size_t>(perm[row]);
        const double factor = m[rrow * k + col] * inv_pivot;
        if (factor == 0.0) continue;
        ops.axpy_neg(&m[rrow * k + col], &m[prow * k + col], k - col, factor);
        x[rrow] -= factor * x[prow];
      }
    }
    if (singular) {
      if (ridge > 1.0) {
        return Status::Internal("pairwise coupling: Q remained singular");
      }
      continue;  // retry with a larger ridge
    }
    // Back substitution. The row-times-solution product runs through the
    // tier's canonical dot so the subtraction order is lane-independent.
    std::vector<double> sol(static_cast<size_t>(k));
    for (int col = k - 1; col >= 0; --col) {
      const size_t prow = static_cast<size_t>(perm[col]);
      const double v =
          x[prow] - ops.dot(m.data() + prow * k + col + 1,
                            sol.data() + col + 1, k - col - 1);
      sol[static_cast<size_t>(col)] = v / m[prow * k + col];
    }
    // Normalize; clamp tiny negatives from finite precision.
    double sum = 0.0;
    for (double& v : sol) {
      v = std::max(v, 0.0);
      sum += v;
    }
    if (sum <= 0.0) {
      if (ridge > 1.0) {
        return Status::Internal("pairwise coupling produced a zero vector");
      }
      continue;
    }
    for (double& v : sol) v /= sum;
    return sol;
  }
}

// LibSVM's multiclass_probability fixed-point iteration. The Q·p matvec and
// the elementwise rescaling update run on the SIMD tier: the matvec uses the
// canonical blocked-tree dot, and the update is per-lane exact, so every
// tier iterates bit-identically.
Result<std::vector<double>> SolveIterative(std::span<const double> r, int k,
                                           const CouplingOptions& options,
                                           const simd::SimdOps& ops) {
  std::vector<double> q;
  BuildQ(r, k, ops, &q);
  std::vector<double> p(static_cast<size_t>(k), 1.0 / k);
  std::vector<double> qp(static_cast<size_t>(k), 0.0);
  const double eps = options.eps / k;

  // The per-t serial work below runs 3k divisions per sweep if written
  // naively (diff, the pqp rescale, and the elementwise update); at ~10x the
  // latency of a multiply they rival the vectorized dot/update work. Hoist
  // the diagonal reciprocals once and rescale pqp by a squared reciprocal.
  // This is shared scalar code, so every tier sees the identical sequence.
  std::vector<double> inv_diag(static_cast<size_t>(k));
  for (int t = 0; t < k; ++t) {
    inv_diag[static_cast<size_t>(t)] = 1.0 / q[static_cast<size_t>(t) * k + t];
  }

  int iter = 0;
  for (; iter < std::max(100, options.max_iterations); ++iter) {
    double pqp = 0.0;
    for (int t = 0; t < k; ++t) {
      const double v = ops.dot(q.data() + static_cast<size_t>(t) * k,
                               p.data(), k);
      qp[static_cast<size_t>(t)] = v;
      pqp += p[static_cast<size_t>(t)] * v;
    }
    double max_error = 0.0;
    for (int t = 0; t < k; ++t) {
      max_error = std::max(max_error, std::abs(qp[static_cast<size_t>(t)] - pqp));
    }
    if (max_error < eps) break;

    for (int t = 0; t < k; ++t) {
      const double diff = (-qp[static_cast<size_t>(t)] + pqp) *
                          inv_diag[static_cast<size_t>(t)];
      p[static_cast<size_t>(t)] += diff;
      const double inv_opd = 1.0 / (1.0 + diff);
      pqp = (pqp + diff * (diff * q[static_cast<size_t>(t) * k + t] +
                           2.0 * qp[static_cast<size_t>(t)])) *
            (inv_opd * inv_opd);
      ops.coupling_update(qp.data(), p.data(),
                          q.data() + static_cast<size_t>(t) * k, k, diff);
    }
  }
  if (iter >= std::max(100, options.max_iterations)) {
    GMP_LOG(Warning) << "pairwise coupling iteration limit reached";
  }
  return p;
}

}  // namespace

Result<std::vector<double>> CoupleProbabilities(std::span<const double> r, int k,
                                                const CouplingOptions& options) {
  if (k < 2) return Status::InvalidArgument("coupling needs k >= 2 classes");
  if (r.size() != static_cast<size_t>(k) * k) {
    return Status::InvalidArgument(
        StrPrintf("r has %zu entries; expected %d", r.size(), k * k));
  }
  const simd::SimdOps& ops = simd::OpsFor(options.simd);
  // Counters only: this runs inside CoupleBatch's parallel loop, which adds
  // the wall time for the whole batch via RecordPathNanos.
  simd::RecordPath(simd::SimdPath::kCoupling,
                   static_cast<int64_t>(k) * k,
                   (2.0 / 3.0) * static_cast<double>(k) * k * k);
  if (options.method == CouplingMethod::kGaussianElimination) {
    return SolveDirect(r, k, ops);
  }
  return SolveIterative(r, k, options, ops);
}

Status CoupleBatch(std::span<const double> r, int k, int64_t count,
                   const CouplingOptions& options, SimExecutor* executor,
                   StreamId stream, double* out) {
  if (count < 0 || r.size() != static_cast<size_t>(count) * k * k) {
    return Status::InvalidArgument("coupling batch size mismatch");
  }
  // Instances are independent and write disjoint k-blocks of `out`. Failures
  // are exceptional (the ridge retries almost always converge), so the
  // parallel pass only flags them; a serial rerun reproduces the exact
  // first-failing status a sequential loop would have returned.
  std::atomic<bool> any_failed{false};
  const int64_t t_start = simd::NowNanos();
  executor->HostParallelFor(
      count, /*min_chunk=*/32, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Result<std::vector<double>> p = CoupleProbabilities(
              r.subspan(static_cast<size_t>(i) * k * k,
                        static_cast<size_t>(k) * k),
              k, options);
          if (!p.ok()) {
            any_failed.store(true, std::memory_order_relaxed);
            continue;
          }
          std::copy(p.value().begin(), p.value().end(), out + i * k);
        }
      });
  if (any_failed.load(std::memory_order_relaxed)) {
    for (int64_t i = 0; i < count; ++i) {
      GMP_ASSIGN_OR_RETURN(
          std::vector<double> p,
          CoupleProbabilities(r.subspan(static_cast<size_t>(i) * k * k,
                                        static_cast<size_t>(k) * k),
                              k, options));
      std::copy(p.begin(), p.end(), out + i * k);
    }
  }
  simd::RecordPathNanos(simd::SimdPath::kCoupling, simd::NowNanos() - t_start);
  // One Gaussian elimination is O(k^3); instances are independent.
  TaskCost cost;
  cost.parallel_items = count;
  cost.flops = static_cast<double>(count) * (2.0 / 3.0) *
               static_cast<double>(k) * k * k;
  cost.bytes_read = static_cast<double>(r.size()) * sizeof(double);
  cost.bytes_written = static_cast<double>(count * k) * sizeof(double);
  executor->Charge(stream, cost);
  return Status::OK();
}

}  // namespace gmpsvm
