#include "prob/pairwise_coupling.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace gmpsvm {
namespace {

// Builds the Q matrix of Equation (15):
//   Q_ss = sum_{u != s} r_us^2,   Q_st = -r_st * r_ts (s != t).
void BuildQ(std::span<const double> r, int k, std::vector<double>* q) {
  q->assign(static_cast<size_t>(k) * k, 0.0);
  for (int s = 0; s < k; ++s) {
    double diag = 0.0;
    for (int u = 0; u < k; ++u) {
      if (u == s) continue;
      const double r_us = r[static_cast<size_t>(u) * k + s];
      diag += r_us * r_us;
      (*q)[static_cast<size_t>(s) * k + u] =
          -r[static_cast<size_t>(s) * k + u] * r[static_cast<size_t>(u) * k + s];
    }
    (*q)[static_cast<size_t>(s) * k + s] = diag;
  }
}

// Solves Q x = e by Gaussian elimination with partial pivoting, adding a
// ridge and retrying if a pivot vanishes ("a small value is added to Q when
// its inversion does not exist"). Returns p = x / sum(x), clamped
// nonnegative.
Result<std::vector<double>> SolveDirect(std::span<const double> r, int k) {
  std::vector<double> q;
  BuildQ(r, k, &q);
  const double kRidge0 = 0.0;
  for (double ridge = kRidge0;; ridge = (ridge == 0.0 ? 1e-10 : ridge * 100)) {
    std::vector<double> m = q;
    for (int s = 0; s < k; ++s) m[static_cast<size_t>(s) * k + s] += ridge;
    std::vector<double> x(static_cast<size_t>(k), 1.0);  // rhs e

    bool singular = false;
    std::vector<int> perm(static_cast<size_t>(k));
    for (int i = 0; i < k; ++i) perm[static_cast<size_t>(i)] = i;
    for (int col = 0; col < k && !singular; ++col) {
      // Partial pivot.
      int pivot = col;
      double best = std::abs(m[static_cast<size_t>(perm[col]) * k + col]);
      for (int row = col + 1; row < k; ++row) {
        const double v = std::abs(m[static_cast<size_t>(perm[row]) * k + col]);
        if (v > best) {
          best = v;
          pivot = row;
        }
      }
      if (best < 1e-12) {
        singular = true;
        break;
      }
      std::swap(perm[static_cast<size_t>(col)], perm[static_cast<size_t>(pivot)]);
      const size_t prow = static_cast<size_t>(perm[col]);
      const double inv_pivot = 1.0 / m[prow * k + col];
      for (int row = col + 1; row < k; ++row) {
        const size_t rrow = static_cast<size_t>(perm[row]);
        const double factor = m[rrow * k + col] * inv_pivot;
        if (factor == 0.0) continue;
        for (int c2 = col; c2 < k; ++c2) m[rrow * k + c2] -= factor * m[prow * k + c2];
        x[rrow] -= factor * x[prow];
      }
    }
    if (singular) {
      if (ridge > 1.0) {
        return Status::Internal("pairwise coupling: Q remained singular");
      }
      continue;  // retry with a larger ridge
    }
    // Back substitution.
    std::vector<double> sol(static_cast<size_t>(k));
    for (int col = k - 1; col >= 0; --col) {
      const size_t prow = static_cast<size_t>(perm[col]);
      double v = x[prow];
      for (int c2 = col + 1; c2 < k; ++c2) {
        v -= m[prow * k + c2] * sol[static_cast<size_t>(c2)];
      }
      sol[static_cast<size_t>(col)] = v / m[prow * k + col];
    }
    // Normalize; clamp tiny negatives from finite precision.
    double sum = 0.0;
    for (double& v : sol) {
      v = std::max(v, 0.0);
      sum += v;
    }
    if (sum <= 0.0) {
      if (ridge > 1.0) {
        return Status::Internal("pairwise coupling produced a zero vector");
      }
      continue;
    }
    for (double& v : sol) v /= sum;
    return sol;
  }
}

// LibSVM's multiclass_probability fixed-point iteration.
Result<std::vector<double>> SolveIterative(std::span<const double> r, int k,
                                           const CouplingOptions& options) {
  std::vector<double> q;
  BuildQ(r, k, &q);
  std::vector<double> p(static_cast<size_t>(k), 1.0 / k);
  std::vector<double> qp(static_cast<size_t>(k), 0.0);
  const double eps = options.eps / k;

  int iter = 0;
  for (; iter < std::max(100, options.max_iterations); ++iter) {
    double pqp = 0.0;
    for (int t = 0; t < k; ++t) {
      double v = 0.0;
      for (int j = 0; j < k; ++j) {
        v += q[static_cast<size_t>(t) * k + j] * p[static_cast<size_t>(j)];
      }
      qp[static_cast<size_t>(t)] = v;
      pqp += p[static_cast<size_t>(t)] * v;
    }
    double max_error = 0.0;
    for (int t = 0; t < k; ++t) {
      max_error = std::max(max_error, std::abs(qp[static_cast<size_t>(t)] - pqp));
    }
    if (max_error < eps) break;

    for (int t = 0; t < k; ++t) {
      const double diff = (-qp[static_cast<size_t>(t)] + pqp) /
                          q[static_cast<size_t>(t) * k + t];
      p[static_cast<size_t>(t)] += diff;
      pqp = (pqp + diff * (diff * q[static_cast<size_t>(t) * k + t] +
                           2.0 * qp[static_cast<size_t>(t)])) /
            ((1.0 + diff) * (1.0 + diff));
      for (int j = 0; j < k; ++j) {
        qp[static_cast<size_t>(j)] =
            (qp[static_cast<size_t>(j)] + diff * q[static_cast<size_t>(t) * k + j]) /
            (1.0 + diff);
        p[static_cast<size_t>(j)] /= (1.0 + diff);
      }
    }
  }
  if (iter >= std::max(100, options.max_iterations)) {
    GMP_LOG(Warning) << "pairwise coupling iteration limit reached";
  }
  return p;
}

}  // namespace

Result<std::vector<double>> CoupleProbabilities(std::span<const double> r, int k,
                                                const CouplingOptions& options) {
  if (k < 2) return Status::InvalidArgument("coupling needs k >= 2 classes");
  if (r.size() != static_cast<size_t>(k) * k) {
    return Status::InvalidArgument(
        StrPrintf("r has %zu entries; expected %d", r.size(), k * k));
  }
  if (options.method == CouplingMethod::kGaussianElimination) {
    return SolveDirect(r, k);
  }
  return SolveIterative(r, k, options);
}

Status CoupleBatch(std::span<const double> r, int k, int64_t count,
                   const CouplingOptions& options, SimExecutor* executor,
                   StreamId stream, double* out) {
  if (count < 0 || r.size() != static_cast<size_t>(count) * k * k) {
    return Status::InvalidArgument("coupling batch size mismatch");
  }
  // Instances are independent and write disjoint k-blocks of `out`. Failures
  // are exceptional (the ridge retries almost always converge), so the
  // parallel pass only flags them; a serial rerun reproduces the exact
  // first-failing status a sequential loop would have returned.
  std::atomic<bool> any_failed{false};
  executor->HostParallelFor(
      count, /*min_chunk=*/32, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Result<std::vector<double>> p = CoupleProbabilities(
              r.subspan(static_cast<size_t>(i) * k * k,
                        static_cast<size_t>(k) * k),
              k, options);
          if (!p.ok()) {
            any_failed.store(true, std::memory_order_relaxed);
            continue;
          }
          std::copy(p.value().begin(), p.value().end(), out + i * k);
        }
      });
  if (any_failed.load(std::memory_order_relaxed)) {
    for (int64_t i = 0; i < count; ++i) {
      GMP_ASSIGN_OR_RETURN(
          std::vector<double> p,
          CoupleProbabilities(r.subspan(static_cast<size_t>(i) * k * k,
                                        static_cast<size_t>(k) * k),
                              k, options));
      std::copy(p.begin(), p.end(), out + i * k);
    }
  }
  // One Gaussian elimination is O(k^3); instances are independent.
  TaskCost cost;
  cost.parallel_items = count;
  cost.flops = static_cast<double>(count) * (2.0 / 3.0) *
               static_cast<double>(k) * k * k;
  cost.bytes_read = static_cast<double>(r.size()) * sizeof(double);
  cost.bytes_written = static_cast<double>(count * k) * sizeof(double);
  executor->Charge(stream, cost);
  return Status::OK();
}

}  // namespace gmpsvm
