// Platt scaling (Section 2.1.2): fits the sigmoid
//   P(y=1 | x) = 1 / (1 + exp(A*v + B))
// to a binary SVM's decision values by maximizing the regularized log
// likelihood (Equation 13) with Newton's method plus backtracking line
// search, using the numerically-stable formulation of Lin, Lin & Weng (2007)
// — the same algorithm LibSVM implements in sigmoid_train().
//
// On the GMP-SVM side, the candidate step evaluations of the backtracking
// search are charged as parallel work (the paper evaluates multiple
// candidate values for A and B concurrently).

#ifndef GMPSVM_PROB_PLATT_H_
#define GMPSVM_PROB_PLATT_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "device/executor.h"

namespace gmpsvm {

struct SigmoidParams {
  double a = 0.0;
  double b = 0.0;

  // P(y=1 | decision value v) under this sigmoid, computed in the
  // numerically stable split form.
  double Probability(double v) const;
};

struct PlattOptions {
  int max_iterations = 100;
  double min_step = 1e-10;   // backtracking floor
  double sigma = 1e-12;      // Hessian ridge
  double eps = 1e-5;         // gradient stopping tolerance
};

// Fits A and B from decision values and ±1 labels. Work is charged to
// `stream`; pass the number of concurrently evaluated backtracking
// candidates in `parallel_candidates` (1 = GPU baseline, >1 = GMP-SVM).
Result<SigmoidParams> FitSigmoid(std::span<const double> decision_values,
                                 std::span<const int8_t> labels,
                                 const PlattOptions& options, SimExecutor* executor,
                                 StreamId stream, int parallel_candidates = 1);

}  // namespace gmpsvm

#endif  // GMPSVM_PROB_PLATT_H_
