// OHD-SVM stand-in (Vanek, Michalek & Psutka 2017) for Figure 9.
//
// OHD-SVM is a binary-only GPU trainer using hierarchical decomposition:
// an outer working set optimized by an inner cached solver. Its structural
// profile relative to GMP-SVM's binary level: a smaller working set (so the
// batched kernel computation amortizes less), wholesale working-set refresh
// (no keep-half, no FIFO buffer reuse across rounds), and a fixed inner
// budget. Binary only: it appears only in the two-class benchmarks.

#ifndef GMPSVM_BASELINES_OHD_SVM_LIKE_H_
#define GMPSVM_BASELINES_OHD_SVM_LIKE_H_

#include "core/dataset.h"
#include "device/executor.h"
#include "solver/batch_smo_solver.h"

namespace gmpsvm {

struct OhdSvmLikeOptions {
  double c = 1.0;
  KernelParams kernel;
  double eps = 1e-3;
  // The hierarchical inner working set is small (tens of instances).
  int working_set_size = 64;
};

class OhdSvmLikeTrainer {
 public:
  explicit OhdSvmLikeTrainer(const OhdSvmLikeOptions& options)
      : options_(options) {}

  // Trains the single binary SVM of a 2-class dataset.
  Result<BinarySolution> Train(const Dataset& dataset, SimExecutor* executor,
                               SolverStats* stats) const;

 private:
  OhdSvmLikeOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_BASELINES_OHD_SVM_LIKE_H_
