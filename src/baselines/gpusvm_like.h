// GPUSVM stand-in (Catanzaro, Sundaram & Keutzer 2008) for Figure 10.
//
// The first GPU SVM trainer: binary-only classic SMO with first-order
// working-set selection and, critically, a DENSE instance representation —
// the trait the paper identifies as its downfall on sparse data ("GPUSVM
// uses the dense data representation, which leads to higher computation cost
// for large datasets and also requires more memory"; RCV1 is the worst
// case). The stand-in densifies the data at load, pays dense kernel-row
// costs, and counts the dense matrix against the device memory budget.

#ifndef GMPSVM_BASELINES_GPUSVM_LIKE_H_
#define GMPSVM_BASELINES_GPUSVM_LIKE_H_

#include "core/dataset.h"
#include "device/executor.h"
#include "solver/solver_stats.h"
#include "solver/svm_problem.h"

namespace gmpsvm {

struct GpuSvmLikeOptions {
  double c = 1.0;
  KernelParams kernel;
  double eps = 1e-3;
  int64_t max_iterations = 50'000'000;
  // Device bytes for the kernel-row cache.
  size_t cache_bytes = 1ull << 30;
};

class GpuSvmLikeTrainer {
 public:
  explicit GpuSvmLikeTrainer(const GpuSvmLikeOptions& options)
      : options_(options) {}

  // Trains the single binary SVM of a 2-class dataset on the densified data.
  Result<BinarySolution> Train(const Dataset& dataset, SimExecutor* executor,
                               SolverStats* stats) const;

 private:
  GpuSvmLikeOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_BASELINES_GPUSVM_LIKE_H_
