// LibSVM reference implementation: the paper's CPU comparator and the
// ground truth for the Table 4 classifier-identity claim.
//
// This is a faithful reimplementation of LibSVM's C-SVC pipeline on the CPU
// substrate: classic SMO with the Fan-et-al. second-order working-set
// heuristic and an LRU kernel-row cache (100 MB default), pairwise one-vs-one
// decomposition, Platt sigmoid fitting (single candidate per Newton step),
// and Wu et al. ITERATIVE pairwise coupling. "LibSVM with OpenMP" is the
// same algorithm on a multi-threaded CPU executor model (kernel-row
// computation is what LibSVM parallelizes).
//
// Deviation from stock LibSVM, shared by every implementation here so the
// comparison stays apples-to-apples (documented in DESIGN.md): sigmoids are
// fitted on the training-set decision values, as the paper's Algorithm 2
// describes, not on 5-fold cross-validated values.

#ifndef GMPSVM_BASELINES_LIBSVM_REF_H_
#define GMPSVM_BASELINES_LIBSVM_REF_H_

#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "device/executor.h"

namespace gmpsvm {

// CPU executor model for LibSVM with `num_threads` OpenMP threads (1 =
// the single-threaded build).
SimExecutor MakeLibsvmExecutor(int num_threads);

// Training options replicating LibSVM's defaults for C-SVC.
MpTrainOptions LibsvmTrainOptions(double c, const KernelParams& kernel,
                                  double eps = 1e-3);

// Prediction options replicating LibSVM's svm_predict_probability path.
PredictOptions LibsvmPredictOptions();

class LibsvmRefTrainer {
 public:
  LibsvmRefTrainer(double c, const KernelParams& kernel, double eps = 1e-3)
      : trainer_(LibsvmTrainOptions(c, kernel, eps)) {}

  Result<MpSvmModel> Train(const Dataset& dataset, SimExecutor* executor,
                           MpTrainReport* report) const {
    return trainer_.Train(dataset, executor, report);
  }

 private:
  SequentialMpTrainer trainer_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_BASELINES_LIBSVM_REF_H_
