#include "baselines/gpusvm_like.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"
#include "kernel/kernel_computer.h"
#include "solver/kernel_cache.h"
#include "solver/working_set.h"

namespace gmpsvm {
namespace {

constexpr double kTau = 1e-12;
constexpr double kInf = std::numeric_limits<double>::infinity();

TaskCost VectorPassCost(int64_t n, double flops_per_item, double bytes_per_item) {
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = flops_per_item * static_cast<double>(n);
  cost.bytes_read = bytes_per_item * static_cast<double>(n);
  return cost;
}

}  // namespace

Result<BinarySolution> GpuSvmLikeTrainer::Train(const Dataset& dataset,
                                                SimExecutor* executor,
                                                SolverStats* stats) const {
  if (dataset.num_classes() != 2) {
    return Status::InvalidArgument("GPUSVM supports binary problems only");
  }
  const int64_t n = dataset.size();
  const double c = options_.c;

  // Densify: the defining representational choice. The dense matrix (and
  // its transfer) are charged at full O(n * dim) size.
  DenseMatrix dense(dataset.features().rows(), dataset.features().cols(),
                    dataset.features().ToDense());
  GMP_ASSIGN_OR_RETURN(DeviceAllocation data_reservation,
                       executor->Allocate(dense.ByteSize()));
  executor->Transfer(kDefaultStream, static_cast<double>(dense.ByteSize()),
                     TransferDirection::kHostToDevice);
  DenseKernelComputer computer(&dense, options_.kernel);

  // Labels: class 0 plays +1, as in MakePairProblem.
  std::vector<int8_t> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    y[static_cast<size_t>(i)] =
        dataset.labels()[static_cast<size_t>(i)] == 0 ? int8_t{1} : int8_t{-1};
  }

  size_t cache_bytes = options_.cache_bytes;
  DeviceAllocation cache_reservation;
  while (cache_bytes > (1u << 20)) {
    auto reservation = executor->Allocate(cache_bytes);
    if (reservation.ok()) {
      cache_reservation = std::move(reservation).value();
      break;
    }
    cache_bytes /= 2;
  }
  KernelCache cache(n, cache_bytes, /*max_rows=*/n);
  std::vector<int32_t> batch_one(1);
  std::vector<int32_t> all_rows(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) all_rows[static_cast<size_t>(i)] = static_cast<int32_t>(i);

  const auto get_row = [&](int32_t i) -> const double* {
    if (const double* row = cache.Lookup(i)) {
      executor->Charge(kDefaultStream, VectorPassCost(n, 0.0, sizeof(double)));
      executor->counters().kernel_values_reused += n;
      if (stats != nullptr) ++stats->kernel_rows_reused;
      return row;
    }
    double* slot = cache.Insert(i);
    batch_one[0] = i;
    computer.ComputeBlock(batch_one, all_rows, executor, kDefaultStream, slot);
    if (stats != nullptr) ++stats->kernel_rows_computed;
    return slot;
  };

  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  std::vector<double> f(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) f[static_cast<size_t>(i)] = -static_cast<double>(y[i]);
  std::vector<double> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = computer.SelfKernel(i);
  executor->Charge(kDefaultStream, VectorPassCost(n, 3.0, sizeof(double)));

  int64_t iterations = 0;
  for (;; ++iterations) {
    if (iterations >= options_.max_iterations) {
      GMP_LOG(Warning) << "GPUSVM-like hit max_iterations";
      break;
    }
    // First-order selection (the original GPUSVM heuristic): most violating
    // pair by plain optimality indicators.
    int32_t u = -1, l = -1;
    double f_u = kInf, f_l = -kInf;
    for (int64_t i = 0; i < n; ++i) {
      const double fi = f[static_cast<size_t>(i)];
      if (InUpSet(y[i], alpha[i], c) && fi < f_u) {
        f_u = fi;
        u = static_cast<int32_t>(i);
      }
      if (InLowSet(y[i], alpha[i], c) && fi > f_l) {
        f_l = fi;
        l = static_cast<int32_t>(i);
      }
    }
    executor->Charge(kDefaultStream, VectorPassCost(n, 2.0, 2 * sizeof(double)));
    if (u < 0 || l < 0 || f_l - f_u < options_.eps) break;

    const double* row_u = get_row(u);
    const double* row_l = get_row(l);

    // Alpha update (same box/equality algebra as SMO; first-order pairs are
    // always feasible ascent directions).
    const double old_au = alpha[static_cast<size_t>(u)];
    const double old_al = alpha[static_cast<size_t>(l)];
    double quad = diag[static_cast<size_t>(u)] + diag[static_cast<size_t>(l)] -
                  2.0 * row_u[l];
    if (quad <= 0) quad = kTau;
    const double g_u = y[u] * f_u;
    const double g_l = y[l] * f[static_cast<size_t>(l)];
    double& a_u = alpha[static_cast<size_t>(u)];
    double& a_l = alpha[static_cast<size_t>(l)];
    if (y[u] != y[l]) {
      const double delta = (-g_u - g_l) / quad;
      const double diff = a_u - a_l;
      a_u += delta;
      a_l += delta;
      if (diff > 0 && a_l < 0) {
        a_l = 0;
        a_u = diff;
      } else if (diff <= 0 && a_u < 0) {
        a_u = 0;
        a_l = -diff;
      }
      if (diff > 0 && a_u > c) {
        a_u = c;
        a_l = c - diff;
      } else if (diff <= 0 && a_l > c) {
        a_l = c;
        a_u = c + diff;
      }
    } else {
      const double delta = (g_u - g_l) / quad;
      const double sum = a_u + a_l;
      a_u -= delta;
      a_l += delta;
      if (sum > c && a_u > c) {
        a_u = c;
        a_l = sum - c;
      } else if (sum <= c && a_l < 0) {
        a_l = 0;
        a_u = sum;
      }
      if (sum > c && a_l > c) {
        a_l = c;
        a_u = sum - c;
      } else if (sum <= c && a_u < 0) {
        a_u = 0;
        a_l = sum;
      }
    }
    executor->Charge(kDefaultStream, VectorPassCost(1, 20.0, 0.0));

    const double yu_dau = y[u] * (a_u - old_au);
    const double yl_dal = y[l] * (a_l - old_al);
    for (int64_t i = 0; i < n; ++i) {
      f[static_cast<size_t>(i)] += yu_dau * row_u[i] + yl_dal * row_l[i];
    }
    executor->Charge(kDefaultStream, VectorPassCost(n, 4.0, 3 * sizeof(double)));
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->outer_rounds += iterations;
  }

  // Bias and objective as in the main solvers.
  double sum_free = 0.0;
  int64_t num_free = 0;
  double f_up_min = kInf, f_low_max = -kInf;
  for (int64_t i = 0; i < n; ++i) {
    const double a = alpha[static_cast<size_t>(i)];
    const double fi = f[static_cast<size_t>(i)];
    if (a > 0 && a < c) {
      sum_free += fi;
      ++num_free;
    }
    if (InUpSet(y[i], a, c)) f_up_min = std::min(f_up_min, fi);
    if (InLowSet(y[i], a, c)) f_low_max = std::max(f_low_max, fi);
  }
  const double rho = num_free > 0 ? sum_free / static_cast<double>(num_free)
                                  : (f_up_min + f_low_max) / 2.0;
  double objective = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    objective += alpha[static_cast<size_t>(i)] *
                 (y[i] * f[static_cast<size_t>(i)] - 1.0);
  }

  BinarySolution solution;
  solution.alpha = std::move(alpha);
  solution.bias = -rho;
  solution.objective = -0.5 * objective;
  solution.f = std::move(f);
  return solution;
}

}  // namespace gmpsvm
