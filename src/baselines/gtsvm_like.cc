#include "baselines/gtsvm_like.h"

#include "solver/batch_smo_solver.h"

namespace gmpsvm {

Result<MpSvmModel> GtsvmLikeTrainer::Train(const Dataset& dataset,
                                           SimExecutor* executor,
                                           MpTrainReport* report) const {
  Stopwatch wall;
  executor->SynchronizeAll();
  const double sim_base = executor->NowSeconds();
  const ExecutorCounters counters_base = executor->counters();

  executor->Transfer(kDefaultStream,
                     static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);

  KernelComputer computer(&dataset.features(), options_.kernel);

  BatchSmoOptions solver_options;
  solver_options.working_set.ws_size = options_.working_set_size;
  solver_options.working_set.q = options_.working_set_size;  // full refresh
  solver_options.eps = options_.eps;
  solver_options.inner_policy = BatchSmoOptions::InnerPolicy::kFixed;
  BatchSmoSolver solver(solver_options);

  MpSvmModel model;
  model.num_classes = dataset.num_classes();
  model.c = options_.c;
  model.kernel = options_.kernel;
  std::vector<int32_t> pool_rows;

  for (const auto& [s, t] : dataset.ClassPairs()) {
    BinaryProblem problem =
        dataset.MakePairProblem(s, t, options_.c, options_.kernel);
    SolverStats stats;
    GMP_ASSIGN_OR_RETURN(
        BinarySolution solution,
        solver.Solve(problem, computer, executor, kDefaultStream, &stats));
    if (report != nullptr) {
      report->solver.Merge(stats);
      report->phases.Merge(stats.phases);
    }

    BinarySvmEntry entry;
    entry.class_s = s;
    entry.class_t = t;
    entry.bias = solution.bias;
    for (int64_t i = 0; i < problem.n(); ++i) {
      const double a = solution.alpha[static_cast<size_t>(i)];
      if (a <= 0.0) continue;
      entry.sv_pool_index.push_back(static_cast<int32_t>(pool_rows.size()));
      entry.sv_coef.push_back(a * problem.y[static_cast<size_t>(i)]);
      pool_rows.push_back(problem.rows[static_cast<size_t>(i)]);
    }
    model.svms.push_back(std::move(entry));
  }

  model.support_vectors = dataset.features().SelectRows(pool_rows);
  model.pool_source_rows = std::move(pool_rows);

  executor->SynchronizeAll();
  if (report != nullptr) {
    report->sim_seconds = executor->NowSeconds() - sim_base;
    report->wall_seconds = wall.ElapsedSeconds();
    report->kernel_values_computed = executor->counters().kernel_values_computed -
                                     counters_base.kernel_values_computed;
    report->kernel_values_reused = executor->counters().kernel_values_reused -
                                   counters_base.kernel_values_reused;
    report->peak_device_bytes = executor->counters().peak_bytes_in_use;
  }
  return model;
}

}  // namespace gmpsvm
