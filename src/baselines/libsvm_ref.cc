#include "baselines/libsvm_ref.h"

namespace gmpsvm {

SimExecutor MakeLibsvmExecutor(int num_threads) {
  return SimExecutor(ExecutorModel::XeonCpu(num_threads));
}

MpTrainOptions LibsvmTrainOptions(double c, const KernelParams& kernel,
                                  double eps) {
  MpTrainOptions options;
  options.c = c;
  options.kernel = kernel;
  options.smo.eps = eps;
  options.smo.cache_bytes = 100ull << 20;  // LibSVM's -m 100 default
  options.smo.cache_on_device = false;     // host RAM
  options.platt_parallel_candidates = 1;
  options.share_support_vectors = true;  // LibSVM model files store SVs once
  return options;
}

PredictOptions LibsvmPredictOptions() {
  PredictOptions options;
  // LibSVM computes each test instance's kernel values against the SV pool
  // once (k_function per SV), shared across the k(k-1)/2 decision values.
  options.share_kernel_values = true;
  options.concurrent_svms = false;
  options.coupling.method = CouplingMethod::kIterative;
  return options;
}

}  // namespace gmpsvm
