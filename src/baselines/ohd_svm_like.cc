#include "baselines/ohd_svm_like.h"

namespace gmpsvm {

Result<BinarySolution> OhdSvmLikeTrainer::Train(const Dataset& dataset,
                                                SimExecutor* executor,
                                                SolverStats* stats) const {
  if (dataset.num_classes() != 2) {
    return Status::InvalidArgument("OHD-SVM supports binary problems only");
  }
  executor->Transfer(kDefaultStream,
                     static_cast<double>(dataset.features().ByteSize()),
                     TransferDirection::kHostToDevice);
  KernelComputer computer(&dataset.features(), options_.kernel);
  BinaryProblem problem = dataset.MakePairProblem(0, 1, options_.c, options_.kernel);

  BatchSmoOptions solver_options;
  solver_options.working_set.ws_size = options_.working_set_size;
  solver_options.working_set.q = options_.working_set_size;  // full refresh
  solver_options.eps = options_.eps;
  solver_options.inner_policy = BatchSmoOptions::InnerPolicy::kFixed;
  BatchSmoSolver solver(solver_options);
  return solver.Solve(problem, computer, executor, kDefaultStream, stats);
}

}  // namespace gmpsvm
