// GTSVM stand-in (Cotter, Srebro & Keshet 2011) for the Figure 8 comparison.
//
// GTSVM is a GPU SVM trainer with sparse (CSR) data support and a large
// fixed working set, but — as the paper notes — no multi-class probability
// support and no cross-SVM resource sharing. The stand-in reproduces its
// structural profile on the same substrate GMP-SVM runs on:
//   * one-vs-one binary SVMs trained strictly sequentially, each getting the
//     whole device (no MP-level concurrency);
//   * a working set refreshed wholesale every round (q == ws: no keep-half
//     reuse, so every round recomputes its full set of kernel rows);
//   * a fixed inner-iteration budget (no delta-adaptive early termination);
//   * no kernel-block sharing between binary SVMs;
//   * no sigmoid fitting (GTSVM cannot produce probabilities).

#ifndef GMPSVM_BASELINES_GTSVM_LIKE_H_
#define GMPSVM_BASELINES_GTSVM_LIKE_H_

#include "core/dataset.h"
#include "core/model.h"
#include "core/mp_trainer.h"
#include "device/executor.h"

namespace gmpsvm {

struct GtsvmLikeOptions {
  double c = 1.0;
  KernelParams kernel;
  double eps = 1e-3;
  // GTSVM's working-set size (its default is in the low hundreds).
  int working_set_size = 128;
};

class GtsvmLikeTrainer {
 public:
  explicit GtsvmLikeTrainer(const GtsvmLikeOptions& options) : options_(options) {}

  // Trains the k(k-1)/2 binary SVMs (no sigmoids) and reports timing/stats.
  // The returned model has probability-free entries (sigmoid = identity-ish
  // defaults) and is meant for timing comparisons only.
  Result<MpSvmModel> Train(const Dataset& dataset, SimExecutor* executor,
                           MpTrainReport* report) const;

 private:
  GtsvmLikeOptions options_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_BASELINES_GTSVM_LIKE_H_
