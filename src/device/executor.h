// SimExecutor: the simulated execution substrate shared by every compared
// implementation (GMP-SVM, GPU baseline, CMP-SVM, LibSVM reference, and the
// third-party-library stand-ins).
//
// Usage model, mirroring CUDA:
//   * CreateStream(sm_share) creates a logical stream that owns a static
//     fraction of the device's compute units (the paper's MP-SVM level caps
//     the SMs each concurrently-trained binary SVM may use; this models that
//     directly).
//   * Submit(stream, cost, fn) runs `fn` on the host immediately (results are
//     real), and advances the stream's simulated timeline by a duration
//     derived from `cost` under the executor's ExecutorModel. Tasks on
//     different streams overlap in simulated time; tasks on one stream are
//     ordered.
//   * Transfer(stream, bytes, dir) charges PCIe time (free on CPU models).
//   * Allocate(bytes) returns an RAII token counted against the device-memory
//     budget; exceeding the budget fails, which is what forces the tiled /
//     batched designs of Section 3.
//   * SynchronizeAll() joins every stream: simulated now() becomes the
//     makespan. ElapsedSeconds() between two sync points is what benchmarks
//     report as "sim-sec".
//
// Determinism: no wall clocks feed the accounting. Simulated time is charged
// in submission order regardless of how task bodies execute on the host.
// When ExecutorModel::host_threads > 1 the executor owns a ThreadPool and
// HostParallelFor()/SubmitParallelFor() run bodies across real threads — but
// only over statically-chunked, disjoint-write index ranges, so every numeric
// output, counter, and simulated timestamp is byte-identical for any thread
// count (see docs/performance.md for the full determinism rules).

#ifndef GMPSVM_DEVICE_EXECUTOR_H_
#define GMPSVM_DEVICE_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "device/counters.h"
#include "device/sim_model.h"
#include "obs/span.h"

namespace gmpsvm {

class ExecEventLog;
class ThreadPool;

namespace fault {
class FaultInjector;
}  // namespace fault

// Cost of one submitted task, in units of actual work performed by the task
// body. Callers compute these from the real data they process.
struct TaskCost {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  // Number of independent work items (e.g. output elements). Determines how
  // many compute units the task can occupy.
  int64_t parallel_items = 1;
};

enum class TransferDirection { kHostToDevice, kDeviceToHost };

class SimExecutor;

// RAII token for simulated device memory. Releases its reservation when
// destroyed. Movable, not copyable. The executor must outlive the allocation.
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(DeviceAllocation&& other) noexcept { *this = std::move(other); }
  DeviceAllocation& operator=(DeviceAllocation&& other) noexcept;
  ~DeviceAllocation();

  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  size_t bytes() const { return bytes_; }
  bool valid() const { return executor_ != nullptr; }

  // Releases the reservation early.
  void Release();

 private:
  friend class SimExecutor;
  DeviceAllocation(SimExecutor* executor, size_t bytes)
      : executor_(executor), bytes_(bytes) {}

  SimExecutor* executor_ = nullptr;
  size_t bytes_ = 0;
};

// Identifies a stream created on a SimExecutor. Stream 0 (kDefaultStream)
// always exists and owns the whole device.
using StreamId = int;
inline constexpr StreamId kDefaultStream = 0;

class SimExecutor {
 public:
  explicit SimExecutor(ExecutorModel model);
  SimExecutor(SimExecutor&& other) noexcept;
  SimExecutor& operator=(SimExecutor&& other) noexcept;
  ~SimExecutor();

  const ExecutorModel& model() const { return model_; }

  // Creates a stream owning `unit_share` of the compute units (clamped to
  // (0, 1]). Streams are never destroyed; executors are per-experiment.
  StreamId CreateStream(double unit_share);

  // Number of streams including the default stream.
  int num_streams() const { return static_cast<int>(streams_.size()); }

  // Runs `fn` now and charges `cost` to `stream`'s simulated timeline.
  void Submit(StreamId stream, const TaskCost& cost, const std::function<void()>& fn);

  // Fallible Submit for fault-aware callers: with an attached FaultInjector
  // the launch may fail transiently (kUnavailable) — the body is NOT run,
  // but the stream is still charged `cost` (a failed launch burns its slot).
  // Without an injector this is Submit() returning OK.
  Status TrySubmit(StreamId stream, const TaskCost& cost,
                   const std::function<void()>& fn);

  // Charges `cost` without a body (for work already performed by the caller).
  void Charge(StreamId stream, const TaskCost& cost);

  // Charges a host<->device transfer on `stream`.
  void Transfer(StreamId stream, double bytes, TransferDirection dir);

  // Fallible Transfer: may fail transiently under an attached FaultInjector
  // (the transfer time is still charged — the wire was busy). Without an
  // injector this is Transfer() returning OK.
  Status TryTransfer(StreamId stream, double bytes, TransferDirection dir);

  // Advances `stream`'s timeline by `seconds` without doing work — used for
  // simulated retry backoff. Records a phase span named `label` when a span
  // recorder is attached and `label` is non-null.
  void AdvanceStream(StreamId stream, double seconds,
                     const char* label = nullptr);

  // Makes `stream` wait (in simulated time) until `other` has drained, i.e.
  // a cross-stream event dependency.
  void StreamWait(StreamId stream, StreamId other);

  // Joins all streams: after this, NowSeconds() is the makespan.
  void SynchronizeAll();

  // Simulated time: max over stream timelines.
  double NowSeconds() const;

  // Simulated time at which `stream` drains. Deltas of this around a section
  // attribute simulated time to pipeline phases (Figures 11/12).
  double StreamTime(StreamId stream) const {
    return streams_[static_cast<size_t>(stream)].ready_at;
  }

  // Reserves simulated device memory. Fails with kOutOfMemory past budget.
  Result<DeviceAllocation> Allocate(size_t bytes);

  // Bytes currently reserved / high-water mark.
  size_t bytes_in_use() const { return counters_.bytes_in_use; }
  size_t memory_budget() const { return model_.memory_budget_bytes; }

  ExecutorCounters& counters() { return counters_; }
  const ExecutorCounters& counters() const { return counters_; }

  // Attaches (or detaches, with nullptr) a span sink recording every charged
  // task and transfer as device-origin spans. `lane_base` offsets the lane of
  // every emitted span so that several executors (e.g. per-serve-worker
  // devices) can share one recorder without their stream rows colliding. A
  // positive `lane_width` additionally wraps stream ids into
  // [lane_base, lane_base + lane_width): long-lived executors keep creating
  // streams (each PredictRows call adds some), and the wrap keeps their rows
  // inside the assigned band instead of creeping into a neighbor's. The
  // recorder must outlive its attachment.
  void SetSpanRecorder(obs::SpanRecorder* recorder, int lane_base = 0,
                       int lane_width = 0) {
    recorder_ = recorder;
    lane_base_ = lane_base;
    lane_width_ = lane_width;
  }
  obs::SpanRecorder* span_recorder() const { return recorder_; }
  int lane_base() const { return lane_base_; }

  // Attaches (or detaches, with nullptr) a fault injector. While attached,
  // TrySubmit/TryTransfer may fail transiently, Allocate may fail with
  // kUnavailable, and every Charge may suffer a latency spike. The injector
  // must outlive its attachment. Training determinism is preserved because
  // the injector itself is deterministic.
  void SetFaultInjector(fault::FaultInjector* injector) { fault_ = injector; }
  fault::FaultInjector* fault_injector() const { return fault_; }

  // The trace lane a stream's spans land on under the configured base/width.
  int SpanLane(StreamId stream) const {
    return lane_base_ + (lane_width_ > 0 ? stream % lane_width_ : stream);
  }

  // Computes the simulated duration of a task under this executor's model
  // given a static compute-unit share. Exposed for tests and the ablation
  // benches.
  double TaskDuration(const TaskCost& cost, double unit_share) const;

  // --- Host parallelism ----------------------------------------------------

  // The pool running task bodies across real threads, or nullptr when the
  // executor is single-threaded (model().host_threads <= 1 and no shared
  // pool). Created lazily; the first call must come from the thread that owns
  // the executor.
  ThreadPool* host_pool();

  // Runs `body` over [0, n): inline when no host pool is configured,
  // otherwise distributed across the pool. Bodies must write disjoint,
  // index-derived locations only (see ThreadPool::ParallelFor), which keeps
  // results byte-identical for every thread count.
  void HostParallelFor(int64_t n, int64_t min_chunk,
                       const std::function<void(int64_t, int64_t)>& body);

  // --- Fork-join accounting (see device/fork_join.h) -----------------------

  // While a log is attached, every Charge/Transfer/AdvanceStream appends a
  // replayable event to it instead of emitting spans itself (direct client
  // RecordSpan calls still reach span_recorder()). Used by satellite
  // executors in pair-parallel training; incompatible with a fault injector.
  void SetEventLog(ExecEventLog* log) { event_log_ = log; }
  ExecEventLog* event_log() const { return event_log_; }

 private:
  friend class DeviceAllocation;
  friend SimExecutor ForkSatellite(SimExecutor* main, StreamId main_stream,
                                   ExecEventLog* log, ThreadPool* host_pool);
  void ReleaseBytes(size_t bytes);

  struct Stream {
    double unit_share = 1.0;
    double ready_at = 0.0;  // simulated time when the stream drains
  };

  ExecutorModel model_;
  std::vector<Stream> streams_;
  ExecutorCounters counters_;
  obs::SpanRecorder* recorder_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  ExecEventLog* event_log_ = nullptr;
  int lane_base_ = 0;
  int lane_width_ = 0;
  // Owned pool (lazily created from model_.host_threads) or a borrowed one
  // (satellite executors share their parent's pool instead of spawning
  // threads per binary problem).
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* external_pool_ = nullptr;
};

// Convenience: submits a task that processes `n` items with `flops_per_item`
// and `bytes_per_item` average cost. The simulated cost is charged once for
// the whole range; the body runs via HostParallelFor — across real host
// threads when the executor has a pool, inline otherwise — so it must only
// write disjoint, index-derived locations.
void SubmitParallelFor(SimExecutor* executor, StreamId stream, int64_t n,
                       double flops_per_item, double bytes_per_item,
                       const std::function<void(int64_t, int64_t)>& body,
                       int64_t min_chunk = 1);

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_EXECUTOR_H_
