// Execution tracing for the simulated device: records every charged task
// (stream, simulated start/end, work) and exports Chrome trace-event JSON
// (load chrome://tracing or https://ui.perfetto.dev) so stream overlap and
// the makespan effects of MP-level concurrency can be inspected visually.

#ifndef GMPSVM_DEVICE_TRACE_H_
#define GMPSVM_DEVICE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gmpsvm {

struct TraceEvent {
  int stream = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  bool is_transfer = false;
};

class ExecutionTrace {
 public:
  void Record(TraceEvent event) { events_.push_back(event); }

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Total busy simulated time per stream.
  std::vector<double> BusyTimePerStream() const;

  // Chrome trace-event format ("traceEvents" array of X events; one row per
  // stream, microsecond timestamps).
  std::string ToChromeJson() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_TRACE_H_
