// Execution tracing for the simulated device: records every charged task
// (stream, simulated start/end, work) and exports Chrome trace-event JSON
// (load chrome://tracing or https://ui.perfetto.dev) so stream overlap and
// the makespan effects of MP-level concurrency can be inspected visually.
//
// DEPRECATED: ExecutionTrace is now a thin shim over the obs::SpanRecorder
// interface (obs/span.h). It keeps only leaf device spans — named phase
// envelopes and host spans are dropped — so its BusyTimePerStream and event
// counts behave exactly as before. New code should attach an
// obs::TraceRecorder via SimExecutor::SetSpanRecorder to get the merged
// device + host trace.

#ifndef GMPSVM_DEVICE_TRACE_H_
#define GMPSVM_DEVICE_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/span.h"

namespace gmpsvm {

struct TraceEvent {
  int stream = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  bool is_transfer = false;
};

class ExecutionTrace : public obs::SpanRecorder {
 public:
  void Record(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  // SpanRecorder hook: keeps leaf device spans, drops phase envelopes and
  // host spans (they have no representation in the legacy event model).
  void RecordSpan(const obs::SpanEvent& event) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

  // Total busy simulated time per stream.
  std::vector<double> BusyTimePerStream() const;

  // Chrome trace-event format ("traceEvents" array of X events; one row per
  // stream, microsecond timestamps).
  std::string ToChromeJson() const;

 private:
  std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_TRACE_H_
