#include "device/counters.h"

namespace gmpsvm {
namespace {

// Advances `counter` so its value mirrors `value` (registry counters are
// monotonic: Add ignores non-positive deltas, so stale republishes are no-ops).
void MirrorCounter(obs::Counter* counter, double value) {
  if (counter == nullptr) return;
  counter->Add(value - counter->Value());
}

}  // namespace

void ExecutorCounters::PublishTo(obs::MetricsRegistry* registry,
                                 const obs::Labels& labels) const {
  if (registry == nullptr) return;
  MirrorCounter(registry->GetCounter("gmpsvm_device_launches_total",
                                     "Simulated kernel launches.", labels),
                static_cast<double>(launches));
  MirrorCounter(registry->GetCounter("gmpsvm_device_flops_total",
                                     "Arithmetic operations charged to the device.",
                                     labels),
                flops);
  MirrorCounter(registry->GetCounter("gmpsvm_device_bytes_read_total",
                                     "Global-memory bytes read by tasks.", labels),
                bytes_read);
  MirrorCounter(registry->GetCounter("gmpsvm_device_bytes_written_total",
                                     "Global-memory bytes written by tasks.", labels),
                bytes_written);
  MirrorCounter(registry->GetCounter("gmpsvm_device_bytes_h2d_total",
                                     "Host-to-device transfer bytes.", labels),
                bytes_h2d);
  MirrorCounter(registry->GetCounter("gmpsvm_device_bytes_d2h_total",
                                     "Device-to-host transfer bytes.", labels),
                bytes_d2h);
  MirrorCounter(
      registry->GetCounter("gmpsvm_kernel_values_computed_total",
                           "Kernel-function evaluations actually computed.",
                           labels),
      static_cast<double>(kernel_values_computed));
  MirrorCounter(
      registry->GetCounter("gmpsvm_kernel_values_reused_total",
                           "Kernel values served from a buffer instead of recomputed.",
                           labels),
      static_cast<double>(kernel_values_reused));
  MirrorCounter(registry->GetCounter("gmpsvm_device_allocation_failures_total",
                                     "Simulated device allocations rejected by the "
                                     "memory budget.",
                                     labels),
                static_cast<double>(allocation_failures));
  obs::Gauge* in_use = registry->GetGauge(
      "gmpsvm_device_bytes_in_use", "Simulated device bytes currently reserved.",
      labels);
  if (in_use != nullptr) in_use->Set(static_cast<double>(bytes_in_use));
  obs::Gauge* peak = registry->GetGauge(
      "gmpsvm_device_peak_bytes", "High-water mark of simulated device memory.",
      labels);
  if (peak != nullptr) peak->SetMax(static_cast<double>(peak_bytes_in_use));
}

}  // namespace gmpsvm
