#include "device/fork_join.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace gmpsvm {

SimExecutor ForkSatellite(SimExecutor* main, StreamId main_stream,
                          ExecEventLog* log, ThreadPool* host_pool) {
  GMP_DCHECK(main->fault_injector() == nullptr);
  ExecutorModel model = main->model();
  // The satellite borrows the caller's pool (or runs inline); it must never
  // spawn its own threads per binary problem.
  model.host_threads = 1;
  SimExecutor satellite(std::move(model));
  satellite.external_pool_ = host_pool;
  satellite.streams_[0].unit_share = main->streams_[static_cast<size_t>(main_stream)].unit_share;
  satellite.streams_[0].ready_at = main->StreamTime(main_stream);
  // Seed the memory ledger so budget checks and the local peak see the same
  // occupancy a serial run would.
  satellite.counters_.bytes_in_use = main->bytes_in_use();
  satellite.counters_.peak_bytes_in_use = main->bytes_in_use();
  satellite.event_log_ = log;
  if (main->span_recorder() != nullptr) {
    // Client phase spans compute their lane as lane_base() + stream; with the
    // satellite's single stream 0, this base reproduces the mirrored
    // stream's lane on the main recorder.
    satellite.SetSpanRecorder(log, main->SpanLane(main_stream), 0);
  }
  return satellite;
}

void JoinSatellite(const ExecEventLog& log, const SimExecutor& satellite,
                   double satellite_base, SimExecutor* main,
                   StreamId main_stream) {
  const double offset = main->StreamTime(main_stream) - satellite_base;
  for (const ExecEvent& e : log.events()) {
    switch (e.kind) {
      case ExecEvent::Kind::kCharge:
        main->Charge(main_stream, e.cost);
        break;
      case ExecEvent::Kind::kTransfer:
        main->Transfer(main_stream, e.bytes, e.dir);
        break;
      case ExecEvent::Kind::kAdvance:
        main->AdvanceStream(main_stream, e.seconds,
                            e.label.empty() ? nullptr : e.label.c_str());
        break;
      case ExecEvent::Kind::kSpan:
        if (main->span_recorder() != nullptr) {
          obs::SpanEvent span = e.span;
          span.start_seconds += offset;
          span.end_seconds += offset;
          main->span_recorder()->RecordSpan(span);
        }
        break;
    }
  }
  ExecutorCounters& counters = main->counters();
  const ExecutorCounters& sat = satellite.counters();
  counters.kernel_values_computed += sat.kernel_values_computed;
  counters.kernel_values_reused += sat.kernel_values_reused;
  counters.allocation_failures += sat.allocation_failures;
  counters.peak_bytes_in_use =
      std::max(counters.peak_bytes_in_use, sat.peak_bytes_in_use);
}

}  // namespace gmpsvm
