// Resource counters accumulated by a SimExecutor. These are the ground truth
// behind every benchmark table: they are incremented by the actual work each
// algorithm performs, so "kernel values computed" really is the number of
// kernel-function evaluations executed on the host.

#ifndef GMPSVM_DEVICE_COUNTERS_H_
#define GMPSVM_DEVICE_COUNTERS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace gmpsvm {

struct ExecutorCounters {
  // Tasks submitted (kernel launches on the GPU substrate).
  int64_t launches = 0;

  // Arithmetic operations charged by tasks.
  double flops = 0.0;

  // Global-memory traffic charged by tasks.
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  // Host<->device transfer volume.
  double bytes_h2d = 0.0;
  double bytes_d2h = 0.0;

  // Kernel-function evaluations (K(x_i, x_j) values actually computed).
  // Maintained by the kernel module; stored here so reuse/sharing savings are
  // visible per executor.
  int64_t kernel_values_computed = 0;

  // Kernel values served from a buffer/cache instead of recomputed.
  int64_t kernel_values_reused = 0;

  // Memory accounting.
  size_t bytes_in_use = 0;
  size_t peak_bytes_in_use = 0;
  int64_t allocation_failures = 0;

  void Reset() { *this = ExecutorCounters(); }

  // Multi-line human-readable dump.
  std::string ToString() const;

  // Publishes a snapshot of these counters into `registry` under the
  // gmpsvm_device_* metric names, optionally labeled (e.g. per serve worker).
  // Counter metrics are advanced by the delta from the last published value
  // for the same series, so repeated publication is idempotent for a
  // monotonically growing ExecutorCounters; gauges are set to current /
  // high-water values.
  void PublishTo(obs::MetricsRegistry* registry,
                 const obs::Labels& labels = {}) const;
};

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_COUNTERS_H_
