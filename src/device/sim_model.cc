#include "device/sim_model.h"

#include <algorithm>

namespace gmpsvm {

ExecutorModel ExecutorModel::TeslaP100() {
  ExecutorModel m;
  m.name = "tesla-p100";
  m.compute_units = 56;           // SMs
  m.flops_per_unit = 2.6e9;       // sustained per SM on sparse SVM kernels
  m.mem_bandwidth = 5.0e11;       // 732 GB/s peak HBM2, ~68% sustained
  m.min_bw_fraction = 0.05;
  m.launch_overhead_sec = 5.0e-6;
  m.transfer_bandwidth = 1.2e10;  // PCIe 3.0 x16 sustained
  m.transfers_are_free = false;
  m.memory_budget_bytes = 12ull << 30;
  m.block_size = 256;
  return m;
}

ExecutorModel ExecutorModel::XeonCpu(int num_threads) {
  num_threads = std::max(1, num_threads);
  ExecutorModel m;
  m.name = "xeon-e5-2640v4-t" + std::to_string(num_threads);
  // 20 physical cores; hyper-threads beyond that add nothing for this
  // workload. Multi-threaded runs pay synchronization/imbalance overhead.
  const double capped = std::min(num_threads, 20);
  m.compute_units = (num_threads == 1) ? 1.0 : std::max(1.0, capped * 0.5);
  m.flops_per_unit = 2.4e9;       // scalar-ish sparse code at ~2.4 GHz
  m.mem_bandwidth = 6.0e10;       // dual-socket DDR4 sustained
  m.min_bw_fraction = 0.2;
  m.launch_overhead_sec = 2.0e-7; // entering an OpenMP region
  m.transfer_bandwidth = 0.0;     // unused
  m.transfers_are_free = true;
  m.memory_budget_bytes = 256ull << 30;
  m.block_size = 1;
  return m;
}

}  // namespace gmpsvm
