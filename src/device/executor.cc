#include "device/executor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "device/fork_join.h"
#include "fault/fault_injector.h"

namespace gmpsvm {

std::string ExecutorCounters::ToString() const {
  std::string out;
  out += StrPrintf("launches:               %lld\n", static_cast<long long>(launches));
  out += StrPrintf("flops:                  %.3e\n", flops);
  out += StrPrintf("bytes read/written:     %s / %s\n", HumanBytes(bytes_read).c_str(),
                   HumanBytes(bytes_written).c_str());
  out += StrPrintf("bytes h2d/d2h:          %s / %s\n", HumanBytes(bytes_h2d).c_str(),
                   HumanBytes(bytes_d2h).c_str());
  out += StrPrintf("kernel values computed: %lld\n",
                   static_cast<long long>(kernel_values_computed));
  out += StrPrintf("kernel values reused:   %lld\n",
                   static_cast<long long>(kernel_values_reused));
  out += StrPrintf("peak device memory:     %s\n",
                   HumanBytes(static_cast<double>(peak_bytes_in_use)).c_str());
  out += StrPrintf("allocation failures:    %lld\n",
                   static_cast<long long>(allocation_failures));
  return out;
}

DeviceAllocation& DeviceAllocation::operator=(DeviceAllocation&& other) noexcept {
  if (this != &other) {
    Release();
    executor_ = other.executor_;
    bytes_ = other.bytes_;
    other.executor_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

DeviceAllocation::~DeviceAllocation() { Release(); }

void DeviceAllocation::Release() {
  if (executor_ != nullptr) {
    executor_->ReleaseBytes(bytes_);
    executor_ = nullptr;
    bytes_ = 0;
  }
}

SimExecutor::SimExecutor(ExecutorModel model) : model_(std::move(model)) {
  streams_.push_back(Stream{/*unit_share=*/1.0, /*ready_at=*/0.0});
}

SimExecutor::SimExecutor(SimExecutor&& other) noexcept = default;
SimExecutor& SimExecutor::operator=(SimExecutor&& other) noexcept = default;
SimExecutor::~SimExecutor() = default;

ThreadPool* SimExecutor::host_pool() {
  if (external_pool_ != nullptr) return external_pool_;
  if (owned_pool_ == nullptr && model_.host_threads > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(model_.host_threads);
  }
  return owned_pool_.get();
}

void SimExecutor::HostParallelFor(
    int64_t n, int64_t min_chunk,
    const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  ThreadPool* pool = host_pool();
  if (pool == nullptr || pool->num_threads() <= 1) {
    body(0, n);
    return;
  }
  pool->ParallelFor(n, body, min_chunk);
}

StreamId SimExecutor::CreateStream(double unit_share) {
  unit_share = std::clamp(unit_share, 1.0 / model_.compute_units, 1.0);
  // New streams start at the current makespan so work submitted to them
  // cannot begin "in the past" relative to already-submitted work.
  streams_.push_back(Stream{unit_share, NowSeconds()});
  return static_cast<StreamId>(streams_.size() - 1);
}

double SimExecutor::TaskDuration(const TaskCost& cost, double unit_share) const {
  const double allocated_units = std::max(1.0, model_.compute_units * unit_share);
  // A task with few independent items cannot occupy all allocated units.
  const double waves =
      std::ceil(static_cast<double>(std::max<int64_t>(1, cost.parallel_items)) /
                static_cast<double>(model_.block_size));
  const double usable_units = std::min(allocated_units, waves);

  const double compute_time =
      cost.flops / (model_.flops_per_unit * usable_units);
  const double bw_share = std::max(model_.min_bw_fraction,
                                   usable_units / model_.compute_units);
  const double mem_time =
      (cost.bytes_read + cost.bytes_written) / (model_.mem_bandwidth * bw_share);
  // Roofline: the task is bound by the slower of compute and memory.
  return model_.launch_overhead_sec + std::max(compute_time, mem_time);
}

void SimExecutor::Submit(StreamId stream, const TaskCost& cost,
                         const std::function<void()>& fn) {
  if (fn) fn();
  Charge(stream, cost);
}

Status SimExecutor::TrySubmit(StreamId stream, const TaskCost& cost,
                              const std::function<void()>& fn) {
  if (fault_ != nullptr && fault_->ShouldInject(fault::Site::kDeviceSubmit)) {
    // A failed launch still occupies the stream for the task's duration.
    Charge(stream, cost);
    return Status::Unavailable(
        StrPrintf("injected launch failure on stream %d", stream));
  }
  Submit(stream, cost, fn);
  return Status::OK();
}

void SimExecutor::Charge(StreamId stream, const TaskCost& cost) {
  GMP_DCHECK(stream >= 0 && stream < num_streams());
  Stream& s = streams_[static_cast<size_t>(stream)];
  const double start = s.ready_at;
  s.ready_at += TaskDuration(cost, s.unit_share);
  if (fault_ != nullptr) {
    const double spike = fault_->MaybeLatencySpike();
    if (spike > 0.0) {
      const double spike_start = s.ready_at;
      s.ready_at += spike;
      if (recorder_ != nullptr) {
        obs::SpanEvent span;
        span.name = "fault_latency_spike";
        span.origin = obs::SpanEvent::Origin::kDevice;
        span.lane = SpanLane(stream);
        span.start_seconds = spike_start;
        span.end_seconds = s.ready_at;
        span.is_phase = true;  // excluded from busy-time math
        recorder_->RecordSpan(span);
      }
    }
  }
  ++counters_.launches;
  counters_.flops += cost.flops;
  counters_.bytes_read += cost.bytes_read;
  counters_.bytes_written += cost.bytes_written;
  if (event_log_ != nullptr) {
    // Satellite mode: the charge is captured for ordered replay on the main
    // executor, which re-emits the leaf span there.
    ExecEvent e;
    e.kind = ExecEvent::Kind::kCharge;
    e.cost = cost;
    event_log_->Append(std::move(e));
  } else if (recorder_ != nullptr) {
    obs::SpanEvent span;
    span.origin = obs::SpanEvent::Origin::kDevice;
    span.lane = SpanLane(stream);
    span.start_seconds = start;
    span.end_seconds = s.ready_at;
    span.flops = cost.flops;
    span.bytes = cost.bytes_read + cost.bytes_written;
    recorder_->RecordSpan(span);
  }
}

void SimExecutor::Transfer(StreamId stream, double bytes, TransferDirection dir) {
  GMP_DCHECK(stream >= 0 && stream < num_streams());
  if (dir == TransferDirection::kHostToDevice) {
    counters_.bytes_h2d += bytes;
  } else {
    counters_.bytes_d2h += bytes;
  }
  if (model_.transfers_are_free) {
    if (event_log_ != nullptr) {
      ExecEvent e;
      e.kind = ExecEvent::Kind::kTransfer;
      e.bytes = bytes;
      e.dir = dir;
      event_log_->Append(std::move(e));
    }
    return;
  }
  Stream& s = streams_[static_cast<size_t>(stream)];
  const double start = s.ready_at;
  s.ready_at += bytes / model_.transfer_bandwidth;
  if (event_log_ != nullptr) {
    ExecEvent e;
    e.kind = ExecEvent::Kind::kTransfer;
    e.bytes = bytes;
    e.dir = dir;
    event_log_->Append(std::move(e));
  } else if (recorder_ != nullptr) {
    obs::SpanEvent span;
    span.origin = obs::SpanEvent::Origin::kDevice;
    span.lane = SpanLane(stream);
    span.start_seconds = start;
    span.end_seconds = s.ready_at;
    span.bytes = bytes;
    span.is_transfer = true;
    recorder_->RecordSpan(span);
  }
}

Status SimExecutor::TryTransfer(StreamId stream, double bytes,
                                TransferDirection dir) {
  if (fault_ != nullptr && fault_->ShouldInject(fault::Site::kDeviceTransfer)) {
    // The wire was busy for the full duration even though the copy failed.
    Transfer(stream, bytes, dir);
    return Status::Unavailable(
        StrPrintf("injected transfer failure on stream %d", stream));
  }
  Transfer(stream, bytes, dir);
  return Status::OK();
}

void SimExecutor::AdvanceStream(StreamId stream, double seconds,
                                const char* label) {
  GMP_DCHECK(stream >= 0 && stream < num_streams());
  if (seconds <= 0.0) return;
  Stream& s = streams_[static_cast<size_t>(stream)];
  const double start = s.ready_at;
  s.ready_at += seconds;
  if (event_log_ != nullptr) {
    ExecEvent e;
    e.kind = ExecEvent::Kind::kAdvance;
    e.seconds = seconds;
    if (label != nullptr) e.label = label;
    event_log_->Append(std::move(e));
    return;
  }
  if (recorder_ != nullptr && label != nullptr) {
    obs::SpanEvent span;
    span.name = label;
    span.origin = obs::SpanEvent::Origin::kDevice;
    span.lane = SpanLane(stream);
    span.start_seconds = start;
    span.end_seconds = s.ready_at;
    span.is_phase = true;
    recorder_->RecordSpan(span);
  }
}

void SimExecutor::StreamWait(StreamId stream, StreamId other) {
  GMP_DCHECK(stream >= 0 && stream < num_streams());
  GMP_DCHECK(other >= 0 && other < num_streams());
  Stream& s = streams_[static_cast<size_t>(stream)];
  s.ready_at = std::max(s.ready_at, streams_[static_cast<size_t>(other)].ready_at);
}

void SimExecutor::SynchronizeAll() {
  const double makespan = NowSeconds();
  for (Stream& s : streams_) s.ready_at = makespan;
}

double SimExecutor::NowSeconds() const {
  double makespan = 0.0;
  for (const Stream& s : streams_) makespan = std::max(makespan, s.ready_at);
  return makespan;
}

Result<DeviceAllocation> SimExecutor::Allocate(size_t bytes) {
  if (fault_ != nullptr && fault_->ShouldInject(fault::Site::kDeviceAlloc)) {
    ++counters_.allocation_failures;
    return Status::Unavailable(StrPrintf(
        "injected allocation failure (%s)",
        HumanBytes(static_cast<double>(bytes)).c_str()));
  }
  if (counters_.bytes_in_use + bytes > model_.memory_budget_bytes) {
    ++counters_.allocation_failures;
    return Status::OutOfMemory(StrPrintf(
        "allocation of %s exceeds device budget (%s in use of %s)",
        HumanBytes(static_cast<double>(bytes)).c_str(),
        HumanBytes(static_cast<double>(counters_.bytes_in_use)).c_str(),
        HumanBytes(static_cast<double>(model_.memory_budget_bytes)).c_str()));
  }
  counters_.bytes_in_use += bytes;
  counters_.peak_bytes_in_use =
      std::max(counters_.peak_bytes_in_use, counters_.bytes_in_use);
  return DeviceAllocation(this, bytes);
}

void SimExecutor::ReleaseBytes(size_t bytes) {
  GMP_DCHECK(counters_.bytes_in_use >= bytes);
  counters_.bytes_in_use -= bytes;
}

void SubmitParallelFor(SimExecutor* executor, StreamId stream, int64_t n,
                       double flops_per_item, double bytes_per_item,
                       const std::function<void(int64_t, int64_t)>& body,
                       int64_t min_chunk) {
  if (n <= 0) return;
  TaskCost cost;
  cost.parallel_items = n;
  cost.flops = flops_per_item * static_cast<double>(n);
  cost.bytes_read = bytes_per_item * static_cast<double>(n);
  executor->Submit(stream, cost, [executor, &body, n, min_chunk] {
    executor->HostParallelFor(n, min_chunk, body);
  });
}

}  // namespace gmpsvm
