// Deterministic fork-join accounting for host-parallel pair training.
//
// The trainers run k(k-1)/2 independent binary problems. To put them on
// worker threads without losing byte-identical simulated time, counters, and
// traces, each problem runs on a *satellite* executor — a private SimExecutor
// mirroring one stream of the main executor — that records every accounting
// action (Charge / Transfer / AdvanceStream / direct span recordings) into an
// ExecEventLog while the real numeric work executes concurrently. After the
// workers join, the logs are replayed onto the main executor serially, in
// pair order. Replay re-executes each charge, so stream timelines, the
// floating-point counter accumulation order, and leaf trace spans come out
// bitwise-identical to a serial run; only the numeric results themselves were
// computed in parallel (on disjoint outputs).
//
// Satellites never carry a fault injector: chaos runs take the serial path,
// which keeps fault/RNG streams per-pair and trivially thread-count
// invariant.

#ifndef GMPSVM_DEVICE_FORK_JOIN_H_
#define GMPSVM_DEVICE_FORK_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "device/executor.h"
#include "obs/span.h"

namespace gmpsvm {

class ThreadPool;

// One accounting action captured on a satellite executor.
struct ExecEvent {
  enum class Kind : uint8_t { kCharge, kTransfer, kAdvance, kSpan };
  Kind kind = Kind::kCharge;
  TaskCost cost;   // kCharge
  double bytes = 0.0;  // kTransfer
  TransferDirection dir = TransferDirection::kHostToDevice;  // kTransfer
  double seconds = 0.0;  // kAdvance
  std::string label;     // kAdvance (empty = unlabeled)
  obs::SpanEvent span;   // kSpan: a direct client RecordSpan (phase span)
};

// Ordered log of a satellite's accounting actions. Doubles as the
// satellite's SpanRecorder so client phase spans land in the same ordered
// stream as the charges they wrap. Used by one thread at a time; the
// fork/join protocol provides the cross-thread synchronization.
class ExecEventLog : public obs::SpanRecorder {
 public:
  void RecordSpan(const obs::SpanEvent& event) override {
    ExecEvent e;
    e.kind = ExecEvent::Kind::kSpan;
    e.span = event;
    events_.push_back(std::move(e));
  }

  void Append(ExecEvent event) { events_.push_back(std::move(event)); }
  const std::vector<ExecEvent>& events() const { return events_; }

 private:
  std::vector<ExecEvent> events_;
};

// Forks a satellite executor mirroring `main_stream` of `main`: same cost
// model, one stream (id 0) carrying the mirrored stream's unit share and
// current timeline position, the live bytes_in_use ledger (so allocation
// decisions match a serial run), `host_pool` borrowed for data-parallel op
// bodies (may be nullptr), and `log` attached. If `main` has a span
// recorder, the satellite forwards client phase spans into `log` with the
// lane already resolved to the mirrored stream's lane. The satellite must
// not outlive `main`, `log`, or `host_pool`, and must be used by a single
// thread. `main` must not have a fault injector attached.
SimExecutor ForkSatellite(SimExecutor* main, StreamId main_stream,
                          ExecEventLog* log, ThreadPool* host_pool);

// Replays `log` onto `main_stream` of `main` in recorded order, then merges
// the satellite-local counters that replay does not reconstruct (kernel
// values computed/reused, allocation failures, peak device memory). Client
// phase spans are re-emitted shifted by the difference between the live
// stream time and `satellite_base` — exactly zero when the stream has not
// advanced since the fork, as in per-stream trainer groups.
void JoinSatellite(const ExecEventLog& log, const SimExecutor& satellite,
                   double satellite_base, SimExecutor* main,
                   StreamId main_stream);

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_FORK_JOIN_H_
