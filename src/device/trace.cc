#include "device/trace.h"

#include <algorithm>

#include "common/string_util.h"

namespace gmpsvm {

void ExecutionTrace::RecordSpan(const obs::SpanEvent& event) {
  if (event.origin != obs::SpanEvent::Origin::kDevice || event.is_phase) return;
  TraceEvent legacy;
  legacy.stream = event.lane;
  legacy.start_seconds = event.start_seconds;
  legacy.end_seconds = event.end_seconds;
  legacy.flops = event.flops;
  legacy.bytes = event.bytes;
  legacy.is_transfer = event.is_transfer;
  Record(legacy);
}

std::vector<double> ExecutionTrace::BusyTimePerStream() const {
  int max_stream = -1;
  for (const TraceEvent& e : events_) max_stream = std::max(max_stream, e.stream);
  std::vector<double> busy(static_cast<size_t>(max_stream + 1), 0.0);
  for (const TraceEvent& e : events_) {
    busy[static_cast<size_t>(e.stream)] += e.end_seconds - e.start_seconds;
  }
  return busy;
}

std::string ExecutionTrace::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    out += StrPrintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"flops\":%.3e,\"bytes\":%.3e}}",
        e.is_transfer ? "transfer" : "kernel", e.stream, e.start_seconds * 1e6,
        (e.end_seconds - e.start_seconds) * 1e6, e.flops, e.bytes);
    if (i + 1 < events_.size()) out += ",";
  }
  out += "]}";
  return out;
}

}  // namespace gmpsvm
