// Cost models for the simulated execution substrate.
//
// The paper runs on an NVIDIA Tesla P100 (56 SMs, 12 GB) and a dual Xeon
// E5-2640 v4 (2x10 cores) host. This repository has neither, so — per the
// substitution policy in DESIGN.md — algorithms execute on the host through a
// SimExecutor that (a) runs the real computation, (b) counts the resources it
// actually consumed (flops, bytes, launches, resident bytes), and (c) converts
// those counts into simulated seconds with the calibrated linear model below.
//
// The calibration constants are derived from the public P100/Xeon datasheets
// de-rated to the sustained throughput sparse SVM workloads achieve (SVM
// kernels are memory-bound and irregular, so peak numbers are irrelevant):
// they are fixed, published here, and shared by every compared implementation.
// Relative orderings between algorithms therefore come from the measured
// resource counts, not from per-algorithm fudge factors.

#ifndef GMPSVM_DEVICE_SIM_MODEL_H_
#define GMPSVM_DEVICE_SIM_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gmpsvm {

// Describes one execution substrate (a GPU or a CPU configuration).
struct ExecutorModel {
  std::string name;

  // Number of independent compute units: SMs on the GPU, effective cores on
  // the CPU (thread count de-rated by parallel efficiency).
  double compute_units = 1.0;

  // Sustained arithmetic throughput of one unit (flops/sec).
  double flops_per_unit = 3.0e9;

  // Aggregate sustained memory bandwidth (bytes/sec) across all units.
  double mem_bandwidth = 6.0e10;

  // Fraction of aggregate bandwidth a single unit can pull on its own.
  double min_bw_fraction = 0.15;

  // Fixed cost charged per submitted task (kernel-launch overhead on the
  // GPU, parallel-region fork/join on the CPU).
  double launch_overhead_sec = 5.0e-6;

  // Host<->device transfer bandwidth (PCIe). Transfers on the CPU substrate
  // are free (data is already in host memory).
  double transfer_bandwidth = 1.2e10;
  bool transfers_are_free = false;

  // Device-memory budget; Allocate() fails beyond this, which is what forces
  // the batched/tiled designs in the paper. (12 GB on the P100.)
  size_t memory_budget_bytes = 12ull << 30;

  // Work items that one unit processes per "wave" (GPU thread-block size; 1
  // for a CPU core). A task with fewer than compute_units * block_size items
  // cannot occupy the whole device — this is the underutilization effect the
  // paper's MP-SVM-level concurrency exploits.
  int64_t block_size = 256;

  // Real host threads the executor may use to run task bodies (wall-clock
  // parallelism only — simulated-time accounting and every numeric output are
  // byte-identical for any value; see docs/performance.md). 1 = today's
  // single-threaded execution.
  int host_threads = 1;

  // --- Presets -------------------------------------------------------------

  // Tesla P100-like device. 56 SMs; sustained (not peak) throughput for
  // sparse, irregular SVM kernels.
  static ExecutorModel TeslaP100();

  // Xeon E5-2640 v4 (2 sockets x 10 cores) with `num_threads` OpenMP-style
  // threads. Parallel efficiency de-rates threads to effective cores:
  // 40 threads on 20 physical cores behave like ~10 dedicated cores for
  // LibSVM-style workloads (matching the 5-10x OpenMP speedups in Table 3).
  static ExecutorModel XeonCpu(int num_threads);
};

}  // namespace gmpsvm

#endif  // GMPSVM_DEVICE_SIM_MODEL_H_
