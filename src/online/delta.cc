#include "online/delta.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "sparse/csr_matrix.h"

namespace gmpsvm::online {
namespace {

constexpr char kDeltaMagic[] = "gmpsvm_delta_v1";

inline uint64_t Fnv1aBytes(const void* data, size_t len, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << text;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = kFnvOffset;
  const int32_t k = dataset.num_classes();
  const int64_t rows = dataset.size();
  const int64_t cols = dataset.dim();
  h = Fnv1aBytes(&k, sizeof(k), h);
  h = Fnv1aBytes(&rows, sizeof(rows), h);
  h = Fnv1aBytes(&cols, sizeof(cols), h);
  const auto& labels = dataset.labels();
  h = Fnv1aBytes(labels.data(), labels.size() * sizeof(int32_t), h);
  const CsrMatrix& m = dataset.features();
  h = Fnv1aBytes(m.row_ptr().data(), m.row_ptr().size() * sizeof(int64_t), h);
  h = Fnv1aBytes(m.col_idx().data(), m.col_idx().size() * sizeof(int32_t), h);
  h = Fnv1aBytes(m.values().data(), m.values().size() * sizeof(double), h);
  return h;
}

std::string SerializeDelta(const DatasetDelta& delta) {
  std::ostringstream out;
  out.precision(17);
  out << kDeltaMagic << "\n";
  out << "base_fingerprint " << delta.base_fingerprint << "\n";
  out << "num_classes " << delta.num_classes << "\n";
  out << "ops " << delta.ops.size() << "\n";
  for (const DeltaOp& op : delta.ops) {
    if (op.kind == DeltaOp::Kind::kAdd) {
      out << "add " << op.label << " " << op.indices.size();
      for (size_t p = 0; p < op.indices.size(); ++p) {
        out << " " << op.indices[p] << ":" << op.values[p];
      }
      out << "\n";
    } else {
      out << "relabel " << op.row << " " << op.old_label << " " << op.new_label
          << "\n";
    }
  }
  return out.str();
}

Result<DatasetDelta> ParseDelta(const std::string& text) {
  std::istringstream in(text);
  std::string line, word;
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("delta parse error: " + what);
  };
  if (!std::getline(in, line) || StripWhitespace(line) != kDeltaMagic) {
    return fail("bad magic");
  }
  DatasetDelta delta;
  size_t num_ops = 0;
  if (!(in >> word >> delta.base_fingerprint) || word != "base_fingerprint") {
    return fail("base_fingerprint");
  }
  if (!(in >> word >> delta.num_classes) || word != "num_classes" ||
      delta.num_classes < 2) {
    return fail("num_classes");
  }
  if (!(in >> word >> num_ops) || word != "ops" || num_ops > text.size()) {
    return fail("ops count");
  }
  delta.ops.reserve(num_ops);
  for (size_t i = 0; i < num_ops; ++i) {
    if (!(in >> word)) return fail(StrPrintf("op %zu", i));
    DeltaOp op;
    if (word == "add") {
      op.kind = DeltaOp::Kind::kAdd;
      size_t nnz = 0;
      if (!(in >> op.label >> nnz) || nnz > text.size()) {
        return fail(StrPrintf("add header %zu", i));
      }
      if (op.label < 0 || op.label >= delta.num_classes) {
        return fail("add label out of range");
      }
      op.indices.reserve(nnz);
      op.values.reserve(nnz);
      int32_t prev = -1;
      for (size_t p = 0; p < nnz; ++p) {
        std::string token;
        if (!(in >> token)) return fail("add feature");
        const auto kv = SplitTokens(token, ":");
        if (kv.size() != 2) return fail("add feature format");
        int32_t index = 0;
        double value = 0.0;
        if (!ParseInt32(kv[0], &index) || !ParseDouble(kv[1], &value)) {
          return fail("add feature value");
        }
        if (index <= prev) return fail("add feature indices not increasing");
        prev = index;
        op.indices.push_back(index);
        op.values.push_back(value);
      }
    } else if (word == "relabel") {
      op.kind = DeltaOp::Kind::kRelabel;
      if (!(in >> op.row >> op.old_label >> op.new_label)) {
        return fail(StrPrintf("relabel %zu", i));
      }
      if (op.row < 0) return fail("relabel row negative");
      if (op.old_label < 0 || op.old_label >= delta.num_classes ||
          op.new_label < 0 || op.new_label >= delta.num_classes ||
          op.old_label == op.new_label) {
        return fail("relabel labels out of range");
      }
    } else {
      return fail("unknown op " + word);
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

Status SaveDelta(const DatasetDelta& delta, const std::string& path) {
  return WriteFile(SerializeDelta(delta), path);
}

Result<DatasetDelta> LoadDelta(const std::string& path) {
  GMP_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return ParseDelta(text);
}

std::vector<int> AffectedClasses(const DatasetDelta& delta) {
  std::vector<int> classes;
  for (const DeltaOp& op : delta.ops) {
    if (op.kind == DeltaOp::Kind::kAdd) {
      classes.push_back(op.label);
    } else {
      classes.push_back(op.old_label);
      classes.push_back(op.new_label);
    }
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

Result<Dataset> ApplyDelta(const Dataset& base, const DatasetDelta& delta) {
  if (delta.num_classes != base.num_classes()) {
    return Status::InvalidArgument(StrPrintf(
        "delta num_classes %d does not match base %d", delta.num_classes,
        base.num_classes()));
  }
  const uint64_t base_fp = DatasetFingerprint(base);
  if (delta.base_fingerprint != base_fp) {
    return Status::InvalidArgument(StrPrintf(
        "delta base fingerprint %llu does not match dataset %llu",
        static_cast<unsigned long long>(delta.base_fingerprint),
        static_cast<unsigned long long>(base_fp)));
  }

  std::vector<int32_t> labels = base.labels();
  CsrBuilder builder(base.dim());
  const CsrMatrix& features = base.features();
  for (int64_t r = 0; r < features.rows(); ++r) {
    builder.AddRow(features.RowIndices(r), features.RowValues(r));
  }
  for (const DeltaOp& op : delta.ops) {
    if (op.kind == DeltaOp::Kind::kAdd) {
      for (int32_t index : op.indices) {
        if (index >= base.dim()) {
          return Status::InvalidArgument(StrPrintf(
              "added row feature index %d exceeds base dim %lld", index,
              static_cast<long long>(base.dim())));
        }
      }
      builder.AddRow(op.indices, op.values);
      labels.push_back(op.label);
    } else {
      if (op.row >= static_cast<int32_t>(labels.size())) {
        return Status::InvalidArgument(
            StrPrintf("relabel row %d out of range", op.row));
      }
      if (labels[static_cast<size_t>(op.row)] != op.old_label) {
        return Status::InvalidArgument(StrPrintf(
            "relabel row %d has label %d, delta expected %d", op.row,
            labels[static_cast<size_t>(op.row)], op.old_label));
      }
      labels[static_cast<size_t>(op.row)] = op.new_label;
    }
  }
  GMP_ASSIGN_OR_RETURN(CsrMatrix merged, builder.Finish());
  return Dataset::Create(std::move(merged), std::move(labels),
                         base.num_classes(), base.name() + "+delta");
}

}  // namespace gmpsvm::online
