// Warm-start incremental retraining (ROADMAP item 4).
//
// A dataset delta touching class c invalidates only the k-1 pairwise
// problems involving c; the other (k-1)(k-2)/2 pairs saw no change to their
// rows or labels (deltas are append-only and row ids never move), so their
// previous solutions are still optimal. WarmRetrain therefore retrains only
// the affected pairs — seeded from the previous model's per-pair alphas
// through BatchSmoSolver::SolveWarm, the classic SMO incremental-restart
// pattern — and carries every untouched PairCheckpoint into the assembled
// model byte for byte.
//
// Retrained pairs are sharded across the cluster with the same LPT scheduler
// and per-pair fault-injector seeding the cluster trainer uses, so the
// result is byte-identical at any device count, with or without chaos.

#ifndef GMPSVM_ONLINE_WARM_RETRAIN_H_
#define GMPSVM_ONLINE_WARM_RETRAIN_H_

#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/pair_scheduler.h"
#include "core/mp_trainer.h"
#include "fault/fault_injector.h"

namespace gmpsvm::online {

struct WarmRetrainOptions {
  // Trainer configuration for the retrained pairs; checkpoint/interrupt are
  // rejected (cluster semantics, same as ClusterTrainOptions).
  MpTrainOptions train;

  // Pair-to-device scheduling of the retrained pairs.
  cluster::ScheduleOptions schedule;

  // Optional chaos plan for the retrained pairs: each pair gets an injector
  // seeded from (plan seed, pair index) only, so fault sequences are
  // device-count invariant. Device loss is not consulted here — warm
  // retrains are short; device-loss recovery lives in the cluster trainer.
  std::optional<fault::FaultPlan> fault;

  // Registry for the pair injectors' fault counters; nullptr disables.
  obs::MetricsRegistry* fault_metrics = nullptr;

  Status Validate(int num_classes = 0) const;
};

struct WarmRetrainReport {
  int64_t pairs_retrained = 0;
  int64_t pairs_carried = 0;
  int64_t pair_retries = 0;
  int64_t pairs_degraded = 0;
  // Problem rows that received a non-zero alpha seed across retrained pairs.
  int64_t warm_seeded_rows = 0;
  // Max over devices of sim-time spent on this retrain (the makespan).
  double makespan_sim_seconds = 0.0;
  // Per retrained pair index, the outcome statistics in global pair order.
  std::vector<PairTrainOutcome> retrained;
};

// Reconstructs the per-pair checkpoints of a trained model: global SV rows
// come from pool_source_rows, coefficients/bias/sigmoid from each entry.
// A pair with no support vectors is marked degraded (the neutral entry the
// skip-degraded policy emits), so a warm retrain re-trains it.
std::vector<PairCheckpoint> CheckpointsFromModel(const MpSvmModel& model);

// Pair indices (into dataset.ClassPairs()) that must be retrained: every
// pair touching a class in `affected_classes` plus every degraded previous
// pair. Sorted ascending.
std::vector<size_t> AffectedPairIndices(
    const Dataset& dataset, const std::vector<int>& affected_classes,
    const std::vector<PairCheckpoint>& previous);

// Retrains the affected pairs of `dataset` across `cluster`, warm-seeded
// from `previous` (the pre-delta model's checkpoints in ClassPairs() order),
// carries the rest over unchanged, and assembles the new model. `previous`
// must have one checkpoint per dataset pair with matching class labels.
Result<MpSvmModel> WarmRetrain(const Dataset& dataset,
                               const std::vector<PairCheckpoint>& previous,
                               const std::vector<int>& affected_classes,
                               const WarmRetrainOptions& options,
                               cluster::SimCluster* cluster,
                               WarmRetrainReport* report = nullptr);

}  // namespace gmpsvm::online

#endif  // GMPSVM_ONLINE_WARM_RETRAIN_H_
