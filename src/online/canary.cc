#include "online/canary.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gmpsvm::online {

Status CanaryOptions::Validate() const {
  if (!(traffic_fraction >= 0.0 && traffic_fraction <= 1.0)) {
    return Status::InvalidArgument(StrPrintf(
        "traffic_fraction must be in [0, 1], got %g", traffic_fraction));
  }
  if (!(tolerance >= 0.0)) {
    return Status::InvalidArgument(
        StrPrintf("tolerance must be >= 0, got %g", tolerance));
  }
  if (min_requests < 1) {
    return Status::InvalidArgument(
        StrPrintf("min_requests must be >= 1, got %lld",
                  static_cast<long long>(min_requests)));
  }
  return Status::OK();
}

CanaryComparator::CanaryComparator(int num_classes,
                                   const CanaryOptions& options, uint64_t seed)
    : num_classes_(num_classes), options_(options), rng_(Rng(seed).Fork(1)) {}

bool CanaryComparator::ShouldSample() {
  return rng_.Bernoulli(options_.traffic_fraction);
}

void CanaryComparator::Record(std::span<const double> incumbent,
                              std::span<const double> candidate,
                              int32_t truth) {
  double linf = 0.0;
  double incumbent_brier = 0.0;
  double candidate_brier = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    const double po = incumbent[static_cast<size_t>(c)];
    const double pn = candidate[static_cast<size_t>(c)];
    linf = std::max(linf, std::fabs(pn - po));
    if (truth >= 0) {
      const double target = (c == truth) ? 1.0 : 0.0;
      incumbent_brier += (po - target) * (po - target);
      candidate_brier += (pn - target) * (pn - target);
    }
  }
  ++sampled_;
  sum_disagreement_ += linf;
  max_disagreement_ = std::max(max_disagreement_, linf);
  if (truth >= 0) {
    ++labeled_;
    incumbent_brier_sum_ += incumbent_brier;
    candidate_brier_sum_ += candidate_brier;
  }
}

CanaryVerdict CanaryComparator::Verdict() const {
  CanaryVerdict verdict;
  verdict.requests_sampled = sampled_;
  verdict.labeled_requests = labeled_;
  verdict.max_disagreement = max_disagreement_;
  verdict.mean_disagreement =
      sampled_ > 0 ? sum_disagreement_ / static_cast<double>(sampled_) : 0.0;
  if (labeled_ > 0) {
    verdict.incumbent_brier =
        incumbent_brier_sum_ / static_cast<double>(labeled_);
    verdict.candidate_brier =
        candidate_brier_sum_ / static_cast<double>(labeled_);
  }

  if (sampled_ < options_.min_requests) {
    verdict.passed = false;
    verdict.reason = StrPrintf(
        "sampled %lld requests, need %lld",
        static_cast<long long>(sampled_),
        static_cast<long long>(options_.min_requests));
    return verdict;
  }
  if (max_disagreement_ > options_.tolerance) {
    verdict.passed = false;
    verdict.reason = StrPrintf(
        "max disagreement %g exceeds tolerance %g", max_disagreement_,
        options_.tolerance);
    return verdict;
  }
  if (options_.brier_slack >= 0.0 && labeled_ > 0 &&
      verdict.candidate_brier > verdict.incumbent_brier + options_.brier_slack) {
    verdict.passed = false;
    verdict.reason = StrPrintf(
        "candidate Brier %g worse than incumbent %g + slack %g",
        verdict.candidate_brier, verdict.incumbent_brier, options_.brier_slack);
    return verdict;
  }
  verdict.passed = true;
  verdict.reason = "ok";
  return verdict;
}

}  // namespace gmpsvm::online
