#include "online/warm_retrain.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "common/string_util.h"

namespace gmpsvm::online {
namespace {

// Same construction as the cluster trainer's pair-injector seeding: a pure
// function of (plan seed, pair index), never of the device assignment.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t PairFaultSeed(uint64_t plan_seed, size_t pair_index) {
  return SplitMix64(plan_seed ^ SplitMix64(0x70A1Bull + pair_index));
}

}  // namespace

Status WarmRetrainOptions::Validate(int num_classes) const {
  GMP_RETURN_NOT_OK(train.Validate(num_classes));
  if (!train.checkpoint.dir.empty() || train.checkpoint.resume) {
    return Status::InvalidArgument(
        "warm retraining does not support checkpoint/resume");
  }
  if (fault.has_value()) {
    GMP_RETURN_NOT_OK(fault->Validate());
    if (fault->interrupt_after_pairs > 0) {
      return Status::InvalidArgument(
          "warm retraining does not support interrupt_after_pairs");
    }
  }
  return Status::OK();
}

std::vector<PairCheckpoint> CheckpointsFromModel(const MpSvmModel& model) {
  std::vector<PairCheckpoint> checkpoints;
  checkpoints.reserve(model.svms.size());
  for (const BinarySvmEntry& entry : model.svms) {
    PairCheckpoint pair;
    pair.class_s = entry.class_s;
    pair.class_t = entry.class_t;
    pair.bias = entry.bias;
    pair.sigmoid = entry.sigmoid;
    pair.degraded = entry.num_svs() == 0;
    pair.sv_rows.reserve(entry.sv_pool_index.size());
    for (int32_t pool_index : entry.sv_pool_index) {
      pair.sv_rows.push_back(
          model.pool_source_rows[static_cast<size_t>(pool_index)]);
    }
    pair.sv_coef = entry.sv_coef;
    checkpoints.push_back(std::move(pair));
  }
  return checkpoints;
}

std::vector<size_t> AffectedPairIndices(
    const Dataset& dataset, const std::vector<int>& affected_classes,
    const std::vector<PairCheckpoint>& previous) {
  const auto pairs = dataset.ClassPairs();
  std::vector<bool> affected(static_cast<size_t>(dataset.num_classes()), false);
  for (int cls : affected_classes) {
    if (cls >= 0 && cls < dataset.num_classes()) {
      affected[static_cast<size_t>(cls)] = true;
    }
  }
  std::vector<size_t> indices;
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& [s, t] = pairs[p];
    const bool touched = affected[static_cast<size_t>(s)] ||
                         affected[static_cast<size_t>(t)];
    const bool degraded = p < previous.size() && previous[p].degraded;
    if (touched || degraded) indices.push_back(p);
  }
  return indices;
}

Result<MpSvmModel> WarmRetrain(const Dataset& dataset,
                               const std::vector<PairCheckpoint>& previous,
                               const std::vector<int>& affected_classes,
                               const WarmRetrainOptions& options,
                               cluster::SimCluster* cluster,
                               WarmRetrainReport* report) {
  GMP_RETURN_NOT_OK(options.Validate(dataset.num_classes()));
  if (cluster == nullptr || cluster->num_devices() < 1) {
    return Status::InvalidArgument("cluster must have at least one device");
  }
  const auto pairs = dataset.ClassPairs();
  if (previous.size() != pairs.size()) {
    return Status::InvalidArgument(
        StrPrintf("got %zu previous checkpoints, dataset has %zu pairs",
                  previous.size(), pairs.size()));
  }
  for (size_t p = 0; p < pairs.size(); ++p) {
    if (previous[p].class_s != pairs[p].first ||
        previous[p].class_t != pairs[p].second) {
      return Status::InvalidArgument(StrPrintf(
          "previous checkpoint %zu is %dv%d, expected %dv%d", p,
          previous[p].class_s, previous[p].class_t, pairs[p].first,
          pairs[p].second));
    }
  }

  const std::vector<size_t> retrain_indices =
      AffectedPairIndices(dataset, affected_classes, previous);

  int64_t warm_seeded_rows = 0;

  PairFaultInjectorFactory injector_factory;
  if (options.fault.has_value()) {
    const fault::FaultPlan base_plan = *options.fault;
    obs::MetricsRegistry* fault_metrics = options.fault_metrics;
    injector_factory = [base_plan, fault_metrics](size_t pair_index)
        -> std::unique_ptr<fault::FaultInjector> {
      fault::FaultPlan plan = base_plan;
      plan.seed = PairFaultSeed(base_plan.seed, pair_index);
      return std::make_unique<fault::FaultInjector>(plan, fault_metrics);
    };
  }

  const int n_devices = cluster->num_devices();
  const cluster::PairAssignment assignment = cluster::SchedulePairs(
      dataset, retrain_indices, cluster->speeds(), {}, options.schedule);

  std::vector<double> base_seconds(static_cast<size_t>(n_devices), 0.0);
  for (int d = 0; d < n_devices; ++d) {
    SimExecutor* dev = cluster->device(d);
    dev->SynchronizeAll();
    base_seconds[static_cast<size_t>(d)] = dev->NowSeconds();
  }

  // One thread per device — wall-clock parallelism only, each device is an
  // independent simulator (same contract as ClusterTrainer). Each device
  // gets its own warm provider so the seeded-row counter never races;
  // totals are aggregated after the join.
  using DeviceResult = Result<std::vector<PairTrainOutcome>>;
  std::vector<DeviceResult> device_results(
      static_cast<size_t>(n_devices),
      DeviceResult(std::vector<PairTrainOutcome>{}));
  std::vector<int64_t> device_seeded(static_cast<size_t>(n_devices), 0);
  const auto run_device = [&](int d) {
    // Warm seeds: the previous pair's alphas keyed by global row. sv_coef
    // stores alpha * y with alpha >= 0, so |sv_coef| recovers alpha
    // regardless of which side the row sat on — which also makes relabeled
    // rows legal seeds (SolveWarm clamps into the box and repairs the
    // equality constraint).
    int64_t local_seeded = 0;
    PairWarmStartProvider local_provider =
        [&previous, &local_seeded](size_t pair_index,
                                   const BinaryProblem& problem) {
          const PairCheckpoint& prev = previous[pair_index];
          if (prev.degraded || prev.sv_rows.empty()) {
            return std::vector<double>{};
          }
          std::unordered_map<int32_t, double> alpha_by_row;
          alpha_by_row.reserve(prev.sv_rows.size());
          for (size_t m = 0; m < prev.sv_rows.size(); ++m) {
            alpha_by_row.emplace(prev.sv_rows[m], std::fabs(prev.sv_coef[m]));
          }
          std::vector<double> seed(static_cast<size_t>(problem.n()), 0.0);
          for (size_t i = 0; i < seed.size(); ++i) {
            const auto it = alpha_by_row.find(problem.rows[i]);
            if (it != alpha_by_row.end()) {
              seed[i] = it->second;
              ++local_seeded;
            }
          }
          return seed;
        };
    device_results[static_cast<size_t>(d)] = TrainGmpPairSubset(
        dataset, options.train, cluster->device(d),
        assignment.device_pairs[static_cast<size_t>(d)], injector_factory,
        local_provider);
    device_seeded[static_cast<size_t>(d)] = local_seeded;
  };
  if (n_devices == 1) {
    run_device(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(n_devices));
    for (int d = 0; d < n_devices; ++d) threads.emplace_back(run_device, d);
    for (std::thread& th : threads) th.join();
  }

  for (int d = 0; d < n_devices; ++d) {
    if (!device_results[static_cast<size_t>(d)].ok()) {
      return device_results[static_cast<size_t>(d)].status();
    }
    warm_seeded_rows += device_seeded[static_cast<size_t>(d)];
  }

  // Stitch: retrained outcomes replace their slots, everything else carries
  // the previous checkpoint verbatim (byte identity by construction).
  std::vector<PairCheckpoint> checkpoints(previous);
  std::vector<PairTrainOutcome> retrained(pairs.size());
  std::vector<bool> have_outcome(pairs.size(), false);
  for (int d = 0; d < n_devices; ++d) {
    for (PairTrainOutcome& outcome : *device_results[static_cast<size_t>(d)]) {
      const size_t p = outcome.pair_index;
      checkpoints[p] = outcome.checkpoint;
      have_outcome[p] = true;
      retrained[p] = std::move(outcome);
    }
  }
  for (size_t p : retrain_indices) {
    if (!have_outcome[p]) {
      return Status::Internal(
          StrPrintf("retrained pair %zu was scheduled on no device", p));
    }
  }

  if (report != nullptr) {
    report->pairs_retrained = static_cast<int64_t>(retrain_indices.size());
    report->pairs_carried =
        static_cast<int64_t>(pairs.size() - retrain_indices.size());
    report->warm_seeded_rows = warm_seeded_rows;
    double makespan = 0.0;
    for (int d = 0; d < n_devices; ++d) {
      makespan = std::max(makespan, cluster->device(d)->NowSeconds() -
                                        base_seconds[static_cast<size_t>(d)]);
    }
    report->makespan_sim_seconds = makespan;
    report->retrained.clear();
    for (size_t p : retrain_indices) {
      report->pair_retries += retrained[p].retries;
      if (retrained[p].degraded) ++report->pairs_degraded;
      report->retrained.push_back(std::move(retrained[p]));
    }
  }

  return AssembleModelFromPairs(dataset, options.train, checkpoints);
}

}  // namespace gmpsvm::online
