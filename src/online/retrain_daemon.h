// RetrainDaemon: the end-to-end continual-learning loop (ROADMAP item 4).
//
//   watch delta dir -> apply delta -> serve traffic + drift check
//     -> warm-start retrain (affected pairs only, across the cluster)
//     -> canary on a traffic fraction -> validator + fault-gated hot-swap
//     -> rollback on any failure, with the fleet still answering.
//
// The loop is fully deterministic: delta files are processed in sorted
// filename order, traffic is drawn from seeded Rng forks keyed by round
// index, canary sampling and fault decisions come from seeded streams, and
// warm retraining shards pairs with device-invariant per-pair injectors — so
// the same deltas and the same chaos seed produce byte-identical swapped
// models, drift counters, and canary verdicts at any devices x host-threads
// topology.
//
// Failure handling ("the fleet never stops answering"):
//   * delta-parse faults (site kDeltaParse) and canary faults (kCanary) are
//     transient: retried with sim-time backoff under the retry policy; a
//     delta that stays unreadable is skipped, a canary that cannot complete
//     rolls the candidate back;
//   * injected swap failures (kModelSwap) are retried the same way;
//   * validator rejections and canary verdict failures roll back terminally
//     — the previous version keeps serving (rollback is "never commit").

#ifndef GMPSVM_ONLINE_RETRAIN_DAEMON_H_
#define GMPSVM_ONLINE_RETRAIN_DAEMON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/predictor.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "online/canary.h"
#include "online/delta.h"
#include "online/drift.h"
#include "online/warm_retrain.h"
#include "serve/model_registry.h"

namespace gmpsvm::online {

struct RetrainDaemonOptions {
  // Directory of delta files (*.delta), processed in sorted filename order.
  std::string delta_dir;

  // Registry name the daemon serves and swaps.
  std::string model_name = "online";

  DriftOptions drift;
  CanaryOptions canary;
  WarmRetrainOptions retrain;

  // Retry policy for transient daemon-phase faults (delta parse, canary,
  // model swap); backoff is charged as simulated time on device 0.
  fault::RetryPolicy retry;

  // Optional daemon-level fault plan (sites kDeltaParse, kCanary,
  // kModelSwap). Pair-training chaos is configured separately through
  // retrain.fault so its per-pair seeding stays device-invariant.
  std::optional<fault::FaultPlan> fault;

  // Prediction options for served and canaried traffic.
  PredictOptions predict;

  // Deterministic traffic: requests are drawn from Rng(traffic_seed) forks
  // keyed by serve-round index.
  uint64_t traffic_seed = 1;

  // Labeled requests served (and drift-observed) per round. One round runs
  // after every applied delta; canary phases serve one further round.
  int64_t requests_per_round = 96;

  // Registry for gmpsvm_drift_* / gmpsvm_online_* series; nullptr disables.
  obs::MetricsRegistry* metrics = nullptr;

  Status Validate(int num_classes = 0) const;
};

struct RetrainDaemonReport {
  int64_t deltas_applied = 0;
  int64_t deltas_skipped = 0;  // unreadable or inapplicable delta files
  int64_t drift_arms = 0;
  int64_t retrains = 0;
  int64_t swaps_committed = 0;
  int64_t rollbacks = 0;

  // Every request is answered by the registered model of the moment —
  // candidate failures never drop traffic. requests_dropped exists so tests
  // and CI can assert the zero.
  int64_t requests_served = 0;
  int64_t requests_dropped = 0;
  int64_t canary_sampled = 0;

  // Transient-fault retries by daemon phase.
  int64_t delta_parse_retries = 0;
  int64_t canary_retries = 0;
  int64_t swap_retries = 0;

  // Aggregated over all warm retrains.
  int64_t pairs_retrained = 0;
  int64_t pairs_carried = 0;
  int64_t pair_retries = 0;

  // Canary verdicts in the order they were reached.
  std::vector<CanaryVerdict> verdicts;

  int64_t final_model_version = 0;
  double final_window_brier = 0.0;
};

class RetrainDaemon {
 public:
  // `registry` and `cluster` must outlive the daemon. Serving and daemon-
  // phase sim-time run on cluster device 0; retrains shard across all
  // devices.
  RetrainDaemon(const RetrainDaemonOptions& options, ModelRegistry* registry,
                cluster::SimCluster* cluster);

  RetrainDaemon(const RetrainDaemon&) = delete;
  RetrainDaemon& operator=(const RetrainDaemon&) = delete;

  // Registers `initial` (trained on `base`) under options.model_name, then
  // processes every delta file in options.delta_dir: apply, serve a round,
  // and when drift arms, warm-retrain / canary / swap. Returns the report;
  // the registry is left serving the final committed version.
  Result<RetrainDaemonReport> Run(const Dataset& base, MpSvmModel initial);

 private:
  struct ServedRound {
    std::vector<int64_t> rows;
    std::vector<int32_t> truth;
    PredictResult result;
  };

  Result<DatasetDelta> LoadDeltaWithRetry(const std::string& path,
                                          RetrainDaemonReport* report);
  Result<ServedRound> ServeRound(const Dataset& dataset,
                                 const MpSvmModel& model, uint64_t round,
                                 RetrainDaemonReport* report);

  RetrainDaemonOptions options_;
  ModelRegistry* registry_;
  cluster::SimCluster* cluster_;
  std::optional<fault::FaultInjector> injector_;
};

}  // namespace gmpsvm::online

#endif  // GMPSVM_ONLINE_RETRAIN_DAEMON_H_
