#include "online/retrain_daemon.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace gmpsvm::online {
namespace {

// Phase seeds for the daemon's deterministic streams, spread through
// SplitMix64 so traffic, canary sampling, and fault decisions never share a
// sequence.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Status RetrainDaemonOptions::Validate(int num_classes) const {
  if (delta_dir.empty()) {
    return Status::InvalidArgument("delta_dir must be set");
  }
  if (model_name.empty()) {
    return Status::InvalidArgument("model_name must be set");
  }
  GMP_RETURN_NOT_OK(drift.Validate());
  GMP_RETURN_NOT_OK(canary.Validate());
  GMP_RETURN_NOT_OK(retrain.Validate(num_classes));
  GMP_RETURN_NOT_OK(retry.Validate());
  if (fault.has_value()) GMP_RETURN_NOT_OK(fault->Validate());
  GMP_RETURN_NOT_OK(predict.Validate());
  if (requests_per_round < 1) {
    return Status::InvalidArgument(
        StrPrintf("requests_per_round must be >= 1, got %lld",
                  static_cast<long long>(requests_per_round)));
  }
  return Status::OK();
}

RetrainDaemon::RetrainDaemon(const RetrainDaemonOptions& options,
                             ModelRegistry* registry,
                             cluster::SimCluster* cluster)
    : options_(options), registry_(registry), cluster_(cluster) {
  if (options_.fault.has_value()) {
    injector_.emplace(*options_.fault, options_.metrics);
  }
}

Result<DatasetDelta> RetrainDaemon::LoadDeltaWithRetry(
    const std::string& path, RetrainDaemonReport* report) {
  SimExecutor* dev = cluster_->device(0);
  for (int att = 1;; ++att) {
    Status injected = Status::OK();
    if (injector_.has_value() &&
        injector_->ShouldInject(fault::Site::kDeltaParse)) {
      injected = Status::Unavailable("injected delta-parse fault: " + path);
    }
    if (injected.ok()) return LoadDelta(path);
    if (att >= options_.retry.max_attempts) return injected;
    ++report->delta_parse_retries;
    const uint64_t seed = SplitMix64(0xDE17Aull ^ options_.traffic_seed);
    dev->AdvanceStream(kDefaultStream,
                       fault::BackoffSeconds(options_.retry, att, seed),
                       "delta_parse_backoff");
  }
}

Result<RetrainDaemon::ServedRound> RetrainDaemon::ServeRound(
    const Dataset& dataset, const MpSvmModel& model, uint64_t round,
    RetrainDaemonReport* report) {
  ServedRound served;
  Rng rng = Rng(options_.traffic_seed).Fork(SplitMix64(0x5E54Eull + round));
  served.rows.reserve(static_cast<size_t>(options_.requests_per_round));
  served.truth.reserve(static_cast<size_t>(options_.requests_per_round));
  std::vector<SparseRowView> views;
  views.reserve(static_cast<size_t>(options_.requests_per_round));
  for (int64_t i = 0; i < options_.requests_per_round; ++i) {
    const int64_t row = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(dataset.size())));
    served.rows.push_back(row);
    served.truth.push_back(dataset.labels()[static_cast<size_t>(row)]);
    views.push_back(SparseRowView{dataset.features().RowIndices(row),
                                  dataset.features().RowValues(row)});
  }
  MpSvmPredictor predictor(&model);
  GMP_ASSIGN_OR_RETURN(
      served.result,
      predictor.PredictRows(views, cluster_->device(0), options_.predict));
  report->requests_served += options_.requests_per_round;
  return served;
}

Result<RetrainDaemonReport> RetrainDaemon::Run(const Dataset& base,
                                               MpSvmModel initial) {
  GMP_RETURN_NOT_OK(options_.Validate(base.num_classes()));
  if (registry_ == nullptr || cluster_ == nullptr ||
      cluster_->num_devices() < 1) {
    return Status::InvalidArgument(
        "daemon needs a registry and a cluster with at least one device");
  }
  RetrainDaemonReport report;
  const int num_classes = base.num_classes();

  obs::Counter* deltas_counter = nullptr;
  obs::Counter* swaps_counter = nullptr;
  obs::Counter* rollbacks_counter = nullptr;
  obs::Counter* requests_counter = nullptr;
  obs::Counter* canary_counter = nullptr;
  obs::Counter* retrains_counter = nullptr;
  if (options_.metrics != nullptr) {
    deltas_counter = options_.metrics->GetCounter(
        "gmpsvm_online_deltas_applied_total", "Dataset deltas applied.");
    swaps_counter = options_.metrics->GetCounter(
        "gmpsvm_online_swaps_total", "Canary-approved hot-swaps committed.");
    rollbacks_counter = options_.metrics->GetCounter(
        "gmpsvm_online_rollbacks_total",
        "Retrained candidates rolled back before commit.");
    requests_counter = options_.metrics->GetCounter(
        "gmpsvm_online_requests_total", "Requests answered by the daemon's "
        "serving loop.");
    canary_counter = options_.metrics->GetCounter(
        "gmpsvm_online_canary_sampled_total",
        "Requests shadowed onto a canary candidate.");
    retrains_counter = options_.metrics->GetCounter(
        "gmpsvm_online_retrains_total", "Warm-start retrains triggered by "
        "drift.");
  }

  // Initial registration is unconditional: there is nothing to canary
  // against, and a daemon that refuses to start serves nobody.
  GMP_ASSIGN_OR_RETURN(report.final_model_version,
                       registry_->Register(options_.model_name,
                                           std::move(initial)));
  if (injector_.has_value()) {
    registry_->SetFaultInjector(&*injector_);
  }

  GMP_ASSIGN_OR_RETURN(ModelHandle handle,
                       registry_->Get(options_.model_name));
  Dataset current = base;  // value copy; deltas replace it wholesale
  std::vector<PairCheckpoint> checkpoints = CheckpointsFromModel(*handle.model);

  DriftDetector drift(num_classes, options_.drift);
  // Classes touched since the last committed swap: a rollback keeps them
  // pending so the next armed retrain covers everything still unabsorbed.
  std::vector<int> pending_affected;
  uint64_t round = 0;

  // Delta files in sorted filename order — the daemon's deterministic
  // substitute for arrival order.
  std::vector<std::string> delta_files;
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(options_.delta_dir, ec);
    if (ec) {
      return Status::IoError("cannot read delta dir " + options_.delta_dir);
    }
    for (const auto& entry : it) {
      if (entry.is_regular_file() && entry.path().extension() == ".delta") {
        delta_files.push_back(entry.path().string());
      }
    }
    std::sort(delta_files.begin(), delta_files.end());
  }

  for (const std::string& path : delta_files) {
    // --- Delta phase (site kDeltaParse, transient, retried) ---------------
    Result<DatasetDelta> delta = LoadDeltaWithRetry(path, &report);
    if (delta.ok()) {
      Result<Dataset> applied = ApplyDelta(current, *delta);
      if (applied.ok()) {
        current = std::move(applied).value();
        ++report.deltas_applied;
        if (deltas_counter != nullptr) deltas_counter->Increment();
        for (int cls : AffectedClasses(*delta)) {
          pending_affected.push_back(cls);
        }
        std::sort(pending_affected.begin(), pending_affected.end());
        pending_affected.erase(
            std::unique(pending_affected.begin(), pending_affected.end()),
            pending_affected.end());
      } else {
        GMP_LOG(Warning) << "skipping delta " << path << ": "
                         << applied.status().message();
        ++report.deltas_skipped;
      }
    } else {
      GMP_LOG(Warning) << "skipping delta " << path << ": "
                       << delta.status().message();
      ++report.deltas_skipped;
    }

    // --- Serve + drift phase ----------------------------------------------
    GMP_ASSIGN_OR_RETURN(handle, registry_->Get(options_.model_name));
    GMP_ASSIGN_OR_RETURN(
        ServedRound served,
        ServeRound(current, *handle.model, round++, &report));
    if (requests_counter != nullptr) {
      requests_counter->Add(static_cast<double>(options_.requests_per_round));
    }
    for (int64_t i = 0; i < served.result.num_instances; ++i) {
      drift.Observe(
          std::span<const double>(
              served.result.probabilities.data() +
                  static_cast<size_t>(i) * static_cast<size_t>(num_classes),
              static_cast<size_t>(num_classes)),
          served.truth[static_cast<size_t>(i)]);
    }
    if (!drift.armed()) continue;

    // --- Retrain phase -----------------------------------------------------
    ++report.drift_arms;
    ++report.retrains;
    if (retrains_counter != nullptr) retrains_counter->Increment();
    WarmRetrainReport retrain_report;
    Result<MpSvmModel> candidate =
        WarmRetrain(current, checkpoints, pending_affected, options_.retrain,
                    cluster_, &retrain_report);
    report.pairs_retrained += retrain_report.pairs_retrained;
    report.pairs_carried += retrain_report.pairs_carried;
    report.pair_retries += retrain_report.pair_retries;
    if (!candidate.ok()) {
      GMP_LOG(Warning) << "retrain failed, rolling back: "
                       << candidate.status().message();
      ++report.rollbacks;
      if (rollbacks_counter != nullptr) rollbacks_counter->Increment();
      drift.Disarm();
      continue;
    }

    // --- Canary phase (site kCanary, transient, retried) -------------------
    // The incumbent answers every request; the sampled fraction is also
    // predicted under the candidate and compared side by side. A retried
    // canary round re-serves the same drawn traffic, so retries change
    // nothing but injected-fault counters.
    GMP_ASSIGN_OR_RETURN(handle, registry_->Get(options_.model_name));
    GMP_ASSIGN_OR_RETURN(
        ServedRound canary_round,
        ServeRound(current, *handle.model, round++, &report));
    if (requests_counter != nullptr) {
      requests_counter->Add(static_cast<double>(options_.requests_per_round));
    }
    for (int64_t i = 0; i < canary_round.result.num_instances; ++i) {
      drift.Observe(
          std::span<const double>(
              canary_round.result.probabilities.data() +
                  static_cast<size_t>(i) * static_cast<size_t>(num_classes),
              static_cast<size_t>(num_classes)),
          canary_round.truth[static_cast<size_t>(i)]);
    }

    bool canary_completed = false;
    CanaryVerdict verdict;
    {
      SimExecutor* dev = cluster_->device(0);
      for (int att = 1; att <= options_.retry.max_attempts; ++att) {
        if (injector_.has_value() &&
            injector_->ShouldInject(fault::Site::kCanary)) {
          if (att >= options_.retry.max_attempts) break;
          ++report.canary_retries;
          const uint64_t seed = SplitMix64(0xCA9A1ull ^ options_.traffic_seed);
          dev->AdvanceStream(kDefaultStream,
                             fault::BackoffSeconds(options_.retry, att, seed),
                             "canary_backoff");
          continue;
        }
        CanaryComparator comparator(
            num_classes, options_.canary,
            SplitMix64(options_.traffic_seed ^ (0xCAFEull + round)));
        std::vector<size_t> sampled;
        for (size_t i = 0; i < canary_round.rows.size(); ++i) {
          if (comparator.ShouldSample()) sampled.push_back(i);
        }
        std::vector<SparseRowView> views;
        views.reserve(sampled.size());
        for (size_t i : sampled) {
          const int64_t row = canary_round.rows[i];
          views.push_back(
              SparseRowView{current.features().RowIndices(row),
                            current.features().RowValues(row)});
        }
        MpSvmPredictor candidate_predictor(&*candidate);
        GMP_ASSIGN_OR_RETURN(
            PredictResult shadow,
            candidate_predictor.PredictRows(views, dev, options_.predict));
        for (size_t j = 0; j < sampled.size(); ++j) {
          const size_t i = sampled[j];
          comparator.Record(
              std::span<const double>(
                  canary_round.result.probabilities.data() +
                      i * static_cast<size_t>(num_classes),
                  static_cast<size_t>(num_classes)),
              std::span<const double>(
                  shadow.probabilities.data() +
                      j * static_cast<size_t>(num_classes),
                  static_cast<size_t>(num_classes)),
              canary_round.truth[i]);
        }
        report.canary_sampled += static_cast<int64_t>(sampled.size());
        if (canary_counter != nullptr) {
          canary_counter->Add(static_cast<double>(sampled.size()));
        }
        verdict = comparator.Verdict();
        canary_completed = true;
        break;
      }
    }
    if (!canary_completed) {
      verdict.passed = false;
      verdict.reason = "canary aborted by injected faults";
    }
    report.verdicts.push_back(verdict);

    if (!verdict.passed) {
      GMP_LOG(Warning) << "canary rejected candidate: " << verdict.reason;
      ++report.rollbacks;
      if (rollbacks_counter != nullptr) rollbacks_counter->Increment();
      drift.Disarm();
      continue;
    }

    // --- Swap phase (validator + site kModelSwap inside the registry) ------
    bool committed = false;
    Status swap_status = Status::OK();
    {
      SimExecutor* dev = cluster_->device(0);
      for (int att = 1; att <= options_.retry.max_attempts; ++att) {
        Result<int64_t> version =
            registry_->Register(options_.model_name, *candidate);
        if (version.ok()) {
          report.final_model_version = *version;
          committed = true;
          break;
        }
        swap_status = version.status();
        if (!fault::IsTransientFault(swap_status) ||
            att >= options_.retry.max_attempts) {
          break;
        }
        ++report.swap_retries;
        const uint64_t seed = SplitMix64(0x54A9ull ^ options_.traffic_seed);
        dev->AdvanceStream(kDefaultStream,
                           fault::BackoffSeconds(options_.retry, att, seed),
                           "swap_backoff");
      }
    }
    if (!committed) {
      GMP_LOG(Warning) << "swap rejected, rolling back: "
                       << swap_status.message();
      ++report.rollbacks;
      if (rollbacks_counter != nullptr) rollbacks_counter->Increment();
      drift.Disarm();
      continue;
    }

    ++report.swaps_committed;
    if (swaps_counter != nullptr) swaps_counter->Increment();
    checkpoints = CheckpointsFromModel(*candidate);
    pending_affected.clear();
    drift.Disarm();
  }

  if (injector_.has_value()) registry_->SetFaultInjector(nullptr);
  report.final_window_brier = drift.WindowBrier();
  return report;
}

}  // namespace gmpsvm::online
