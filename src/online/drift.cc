#include "online/drift.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gmpsvm::online {

Status DriftOptions::Validate() const {
  if (window < 1) {
    return Status::InvalidArgument(
        StrPrintf("window must be >= 1, got %lld",
                  static_cast<long long>(window)));
  }
  if (min_observations < 1 || min_observations > window) {
    return Status::InvalidArgument(StrPrintf(
        "min_observations must be in [1, window], got %lld",
        static_cast<long long>(min_observations)));
  }
  if (!(brier_threshold >= 0.0)) {
    return Status::InvalidArgument(StrPrintf(
        "brier_threshold must be >= 0, got %g", brier_threshold));
  }
  if (!(log_loss_threshold >= 0.0)) {
    return Status::InvalidArgument(StrPrintf(
        "log_loss_threshold must be >= 0, got %g", log_loss_threshold));
  }
  return Status::OK();
}

DriftDetector::DriftDetector(int num_classes, const DriftOptions& options)
    : num_classes_(num_classes), options_(options) {
  if (options_.metrics != nullptr) {
    brier_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_drift_brier", "Windowed Brier score of served responses "
        "against delayed labels.");
    log_loss_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_drift_log_loss", "Windowed log loss of served responses "
        "against delayed labels.");
    window_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_drift_window", "Labeled responses currently in the drift "
        "window.");
    armed_gauge_ = options_.metrics->GetGauge(
        "gmpsvm_drift_armed", "1 while a drift-triggered retrain is armed.");
    armed_counter_ = options_.metrics->GetCounter(
        "gmpsvm_drift_armed_total", "Drift threshold crossings that armed a "
        "retrain.");
    PublishLocked();
  }
}

void DriftDetector::Observe(std::span<const double> probabilities,
                            int32_t truth) {
  // Clamp mirrors metrics/calibration.cc so the windowed log loss agrees
  // with LogLoss() over the same responses.
  constexpr double kEps = 1e-15;
  Observation obs;
  for (int c = 0; c < num_classes_; ++c) {
    const double p = probabilities[static_cast<size_t>(c)];
    const double target = (c == truth) ? 1.0 : 0.0;
    obs.brier += (p - target) * (p - target);
  }
  const double p_truth =
      truth >= 0 && truth < num_classes_
          ? std::max(probabilities[static_cast<size_t>(truth)], kEps)
          : kEps;
  obs.log_loss = -std::log(p_truth);

  window_.push_back(obs);
  brier_sum_ += obs.brier;
  log_loss_sum_ += obs.log_loss;
  ++total_observed_;
  while (static_cast<int64_t>(window_.size()) > options_.window) {
    brier_sum_ -= window_.front().brier;
    log_loss_sum_ -= window_.front().log_loss;
    window_.pop_front();
  }

  if (!armed_ &&
      static_cast<int64_t>(window_.size()) >= options_.min_observations) {
    const bool brier_hit = WindowBrier() >= options_.brier_threshold;
    const bool log_loss_hit = options_.log_loss_threshold > 0.0 &&
                              WindowLogLoss() >= options_.log_loss_threshold;
    if (brier_hit || log_loss_hit) {
      armed_ = true;
      ++times_armed_;
      if (armed_counter_ != nullptr) armed_counter_->Increment();
    }
  }
  PublishLocked();
}

double DriftDetector::WindowBrier() const {
  return window_.empty() ? 0.0
                         : brier_sum_ / static_cast<double>(window_.size());
}

double DriftDetector::WindowLogLoss() const {
  return window_.empty() ? 0.0
                         : log_loss_sum_ / static_cast<double>(window_.size());
}

void DriftDetector::Disarm() {
  armed_ = false;
  window_.clear();
  brier_sum_ = 0.0;
  log_loss_sum_ = 0.0;
  PublishLocked();
}

void DriftDetector::PublishLocked() {
  if (brier_gauge_ != nullptr) brier_gauge_->Set(WindowBrier());
  if (log_loss_gauge_ != nullptr) log_loss_gauge_->Set(WindowLogLoss());
  if (window_gauge_ != nullptr) {
    window_gauge_->Set(static_cast<double>(window_.size()));
  }
  if (armed_gauge_ != nullptr) armed_gauge_->Set(armed_ ? 1.0 : 0.0);
}

}  // namespace gmpsvm::online
