// Drift detection over served probabilities (ROADMAP item 4).
//
// The fleet serves calibrated class probabilities; when the data drifts, the
// first observable casualty is probability quality, not accuracy (Zeng &
// Zhang — monitor class-probability estimates, not raw labels). The detector
// keeps a rolling window of (served probabilities, delayed true label) pairs,
// maintains the windowed Brier score and log loss incrementally, publishes
// them as gmpsvm_drift_* gauges, and arms a retrain when a configured
// threshold is crossed.
//
// Everything is a pure function of the observation sequence: the same served
// responses in the same order produce the same windowed metrics, armed
// transitions, and counters on any topology, which is what lets the retrain
// daemon claim end-to-end determinism.

#ifndef GMPSVM_ONLINE_DRIFT_H_
#define GMPSVM_ONLINE_DRIFT_H_

#include <cstdint>
#include <deque>
#include <span>

#include "common/status.h"
#include "obs/metrics.h"

namespace gmpsvm::online {

struct DriftOptions {
  // Rolling window size in labeled responses; older observations slide out.
  int64_t window = 256;

  // Observations required before the detector may arm (a near-empty window
  // is noise, not signal).
  int64_t min_observations = 64;

  // Arm when the windowed Brier score reaches this value. Brier ranges
  // [0, 2]; a k-class uniform predictor scores (k-1)/k.
  double brier_threshold = 0.5;

  // Arm when the windowed log loss reaches this value; 0 disables the
  // log-loss trigger.
  double log_loss_threshold = 0.0;

  // Optional registry for the gmpsvm_drift_* series; nullptr disables.
  obs::MetricsRegistry* metrics = nullptr;

  // kInvalidArgument naming the offending field, or OK.
  Status Validate() const;
};

class DriftDetector {
 public:
  DriftDetector(int num_classes, const DriftOptions& options);

  DriftDetector(const DriftDetector&) = delete;
  DriftDetector& operator=(const DriftDetector&) = delete;

  // Records one served response against its delayed true label.
  // `probabilities` holds the k coupled class probabilities the fleet
  // answered with. Updates the windowed metrics and the armed state.
  void Observe(std::span<const double> probabilities, int32_t truth);

  // Windowed metrics (0 while the window is empty).
  double WindowBrier() const;
  double WindowLogLoss() const;
  int64_t window_size() const { return static_cast<int64_t>(window_.size()); }
  int64_t total_observed() const { return total_observed_; }

  // Whether a threshold crossing has armed a retrain. Stays armed until
  // Disarm() (called by the daemon once a retrain round resolves).
  bool armed() const { return armed_; }
  int64_t times_armed() const { return times_armed_; }

  // Clears the armed flag and the window: after a hot-swap the old model's
  // served responses say nothing about the new one.
  void Disarm();

 private:
  struct Observation {
    double brier = 0.0;
    double log_loss = 0.0;
  };

  void PublishLocked();

  int num_classes_;
  DriftOptions options_;

  std::deque<Observation> window_;
  double brier_sum_ = 0.0;
  double log_loss_sum_ = 0.0;
  int64_t total_observed_ = 0;
  bool armed_ = false;
  int64_t times_armed_ = 0;

  obs::Gauge* brier_gauge_ = nullptr;
  obs::Gauge* log_loss_gauge_ = nullptr;
  obs::Gauge* window_gauge_ = nullptr;
  obs::Gauge* armed_gauge_ = nullptr;
  obs::Counter* armed_counter_ = nullptr;
};

}  // namespace gmpsvm::online

#endif  // GMPSVM_ONLINE_DRIFT_H_
