// Canary-gated model comparison for hot-swaps.
//
// Before a retrained model replaces the serving one, a configurable fraction
// of live traffic is shadowed onto the candidate: the old model's answer is
// what the client receives (the fleet never stops answering), and the
// candidate's probabilities for the same request are compared side by side.
// The canary passes when enough requests were sampled, no per-request
// disagreement exceeded the tolerance, and — when delayed labels are
// available — the candidate's Brier score over the sampled requests is not
// worse than the incumbent's by more than the allowed slack.
//
// Sampling is a deterministic seeded Bernoulli draw per request, so the same
// traffic and seed canary the same requests — and produce the same verdict —
// on any devices x host-threads topology.

#ifndef GMPSVM_ONLINE_CANARY_H_
#define GMPSVM_ONLINE_CANARY_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace gmpsvm::online {

struct CanaryOptions {
  // Fraction of live traffic shadowed onto the candidate, in [0, 1].
  double traffic_fraction = 0.25;

  // Maximum allowed per-request probability disagreement, measured as the
  // L-infinity distance between the two models' class-probability vectors.
  // Drift-correcting retrains legitimately move probabilities, so this is a
  // guard against a broken candidate (degraded pairs, corrupted pool), not a
  // similarity requirement — the default tolerates real model movement.
  double tolerance = 0.9;

  // Minimum sampled requests before a verdict can pass; a canary that saw
  // fewer requests fails closed.
  int64_t min_requests = 8;

  // When labeled canary traffic is recorded, reject a candidate whose Brier
  // score over the sampled requests exceeds the incumbent's by more than
  // this slack. < 0 disables the quality gate.
  double brier_slack = 0.1;

  // kInvalidArgument naming the offending field, or OK.
  Status Validate() const;
};

struct CanaryVerdict {
  bool passed = false;
  int64_t requests_sampled = 0;
  double max_disagreement = 0.0;   // max per-request L-inf distance
  double mean_disagreement = 0.0;  // mean per-request L-inf distance
  // Brier scores over the labeled sampled requests (0 when none carried
  // labels).
  double incumbent_brier = 0.0;
  double candidate_brier = 0.0;
  int64_t labeled_requests = 0;
  std::string reason;  // human-readable pass/fail cause
};

// Accumulates side-by-side comparisons for one canary phase. Not
// thread-safe; the daemon drives one comparator per canary round.
class CanaryComparator {
 public:
  CanaryComparator(int num_classes, const CanaryOptions& options,
                   uint64_t seed);

  // Deterministic per-request sampling decision; call exactly once per
  // request in arrival order.
  bool ShouldSample();

  // Records one sampled request's probabilities under both models.
  // `truth` < 0 means the label has not arrived; the request still counts
  // toward the disagreement gate but not the Brier gate.
  void Record(std::span<const double> incumbent,
              std::span<const double> candidate, int32_t truth = -1);

  // The verdict over everything recorded so far.
  CanaryVerdict Verdict() const;

 private:
  int num_classes_;
  CanaryOptions options_;
  Rng rng_;

  int64_t sampled_ = 0;
  int64_t labeled_ = 0;
  double max_disagreement_ = 0.0;
  double sum_disagreement_ = 0.0;
  double incumbent_brier_sum_ = 0.0;
  double candidate_brier_sum_ = 0.0;
};

}  // namespace gmpsvm::online

#endif  // GMPSVM_ONLINE_CANARY_H_
