// Dataset deltas: the append-only change format the online pipeline consumes.
//
// A delta records what changed since a base dataset — rows added to a class
// and rows relabeled between classes — as `model_io`-style text, fingerprinted
// like the training checkpoints so a delta can never be applied against the
// wrong base. Applying a delta is deterministic: added rows are appended in
// op order (existing row ids never move), relabels rewrite labels in place,
// and the result carries a content fingerprint of its own, so the same base
// plus the same delta chain yields a byte-identical dataset everywhere.
//
// Row-id stability is what makes warm-start retraining sound: a pair (s, t)
// whose classes a delta never touches has exactly the same ClassRows over
// exactly the same row content before and after the apply, so its previous
// PairCheckpoint can be carried into the new model byte for byte.
//
// All parse failures are kInvalidArgument (corrupt deltas are caller data
// errors), never a crash, matching the checkpoint-parsing contract.

#ifndef GMPSVM_ONLINE_DELTA_H_
#define GMPSVM_ONLINE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace gmpsvm::online {

// One delta operation. kAdd appends a new row with the given label and sparse
// features; kRelabel changes an existing row's label (the old label is
// recorded so an apply against a drifted base fails loudly instead of
// silently corrupting class rows).
struct DeltaOp {
  enum class Kind { kAdd, kRelabel };
  Kind kind = Kind::kAdd;

  // kAdd: the new row's class and features (0-based, strictly increasing).
  int32_t label = 0;
  std::vector<int32_t> indices;
  std::vector<double> values;

  // kRelabel: global row id, expected current label, and the new label.
  int32_t row = 0;
  int32_t old_label = 0;
  int32_t new_label = 0;
};

struct DatasetDelta {
  // DatasetFingerprint of the base this delta applies to; ApplyDelta rejects
  // a mismatch.
  uint64_t base_fingerprint = 0;
  int num_classes = 0;
  std::vector<DeltaOp> ops;
};

// FNV-1a over a dataset's full content: class count, shape, labels, and the
// CSR arrays. Pure content hash — independent of the dataset's name — so the
// same rows and labels always fingerprint identically.
uint64_t DatasetFingerprint(const Dataset& dataset);

// Text round-trip (`gmpsvm_delta_v1` magic). Serialize uses %.17g-precision
// doubles so a written delta applies bit-identically after a round trip.
std::string SerializeDelta(const DatasetDelta& delta);
Result<DatasetDelta> ParseDelta(const std::string& text);

// File wrappers (open/write failures are kIoError, parse failures stay
// kInvalidArgument).
Status SaveDelta(const DatasetDelta& delta, const std::string& path);
Result<DatasetDelta> LoadDelta(const std::string& path);

// The classes whose pairwise problems the delta invalidates: every added
// row's label plus both sides of every relabel. Sorted, deduplicated.
std::vector<int> AffectedClasses(const DatasetDelta& delta);

// Applies the delta to `base`: verifies the base fingerprint and class count,
// appends added rows in op order, applies relabels (rejecting a mismatched
// old_label), and returns the new dataset. The result's name is the base name
// with a "+delta" suffix; existing row ids are preserved verbatim.
Result<Dataset> ApplyDelta(const Dataset& base, const DatasetDelta& delta);

}  // namespace gmpsvm::online

#endif  // GMPSVM_ONLINE_DELTA_H_
