// Solver-level ablation: second-order working-set selection (Fan et al.,
// the paper's Equation (5), used by LibSVM and GMP-SVM) vs the first-order
// maximal-violating-pair rule of early GPU SVMs. Expected: fewer iterations
// for second-order at the same solution, which is why every implementation
// in the paper uses it.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "solver/smo_solver.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "RCV1", "Real-sim", "Webdata"};
  }
  std::printf("ABLATION: 2nd-order (Eq. 5) vs 1st-order working-set selection, "
              "classic SMO (scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "iters 2nd-order", "iters 1st-order",
                      "iteration ratio", "objective diff"});
  for (const auto& spec : SelectSpecs(args, DatasetFilter::kBinaryOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::fprintf(stderr, "[wss] %s ...\n", spec.name.c_str());
    KernelParams kernel;
    kernel.gamma = spec.gamma;
    KernelComputer computer(&train.features(), kernel);
    BinaryProblem problem = train.MakePairProblem(0, 1, spec.c, kernel);

    SmoOptions second;
    SmoOptions first;
    first.selection = SmoOptions::Selection::kFirstOrder;

    SimExecutor e1 = MakeGpuExecutor(spec);
    SolverStats s2;
    auto sol2 = ValueOrDie(
        SmoSolver(second).Solve(problem, computer, &e1, kDefaultStream, &s2));
    SimExecutor e2 = MakeGpuExecutor(spec);
    SolverStats s1;
    auto sol1 = ValueOrDie(
        SmoSolver(first).Solve(problem, computer, &e2, kDefaultStream, &s1));

    table.AddRow({spec.name,
                  StrPrintf("%lld", static_cast<long long>(s2.iterations)),
                  StrPrintf("%lld", static_cast<long long>(s1.iterations)),
                  Speedup(static_cast<double>(s1.iterations) /
                          static_cast<double>(s2.iterations)),
                  StrPrintf("%.2e", sol1.objective - sol2.objective)});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
