// Serving benchmark: sustained throughput and tail latency of the
// micro-batching InferenceServer (src/serve) versus unbatched serving
// (max_batch_size = 1) on Table-2 proxy datasets.
//
// Two load shapes:
//   * closed loop — K client threads issue synchronous Predict() calls
//     back-to-back; concurrency K > workers keeps a backlog, so the
//     micro-batcher can coalesce. Sweeps max_batch_size.
//   * open loop — a dispatcher submits at a fixed arrival rate regardless
//     of completions (the "users do not wait" model). Sweeps the batch
//     window (max_queue_delay) at a rate near the unbatched capacity,
//     showing the window trading p50 for throughput headroom.
//
// Defaults to the Connect-4 proxy for a quick run; use
// --datasets=MNIST,News20 (etc.) for the other multi-class proxies.

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "serve/server.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

namespace {

struct LoadResult {
  double wall_seconds = 0.0;
  double achieved_rps = 0.0;
  ServeStatsSnapshot snap;
};

std::string Ms(double seconds) { return StrPrintf("%.2f", seconds * 1e3); }

// K threads, each issuing synchronous requests back-to-back over the test
// rows. Returns bench-measured wall throughput plus the server's snapshot.
LoadResult RunClosedLoop(ModelRegistry* registry, const CsrMatrix& rows,
                         const ServeOptions& options, int clients,
                         int per_client) {
  InferenceServer server(registry, options);
  GMP_CHECK_OK(server.Start());
  Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        const int64_t row = (c * per_client + r) % rows.rows();
        auto response =
            server.Predict(rows.RowIndices(row), rows.RowValues(row));
        GMP_CHECK_OK(response.status());
      }
    });
  }
  for (auto& t : pool) t.join();
  LoadResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.snap = server.stats().Snapshot();
  result.achieved_rps =
      static_cast<double>(result.snap.completed) / result.wall_seconds;
  GMP_CHECK_OK(server.Shutdown());
  return result;
}

// One dispatcher submitting at `rate_rps` on a fixed schedule; responses are
// collected afterwards. Overflowed submissions count as rejected.
LoadResult RunOpenLoop(ModelRegistry* registry, const CsrMatrix& rows,
                       const ServeOptions& options, double rate_rps,
                       int total_requests) {
  InferenceServer server(registry, options);
  GMP_CHECK_OK(server.Start());
  const auto interval = std::chrono::duration<double>(1.0 / rate_rps);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<PredictResponse>>> futures;
  futures.reserve(static_cast<size_t>(total_requests));
  for (int r = 0; r < total_requests; ++r) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * r));
    const int64_t row = r % rows.rows();
    auto submitted = server.Submit(rows.RowIndices(row), rows.RowValues(row));
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  LoadResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.snap = server.stats().Snapshot();
  result.achieved_rps =
      static_cast<double>(result.snap.completed) / result.wall_seconds;
  GMP_CHECK_OK(server.Shutdown());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) args.datasets = {"Connect-4"};
  std::printf("SERVING: micro-batched inference throughput vs unbatched "
              "(scale %.2f)\n\n", args.scale);

  // Concurrency well above max_batch_size: batches then fill straight from
  // the backlog and the batch window almost never has to idle-wait.
  constexpr int kClients = 32;
  constexpr int kPerClient = 20;
  constexpr int kWorkers = 2;

  for (const auto& spec : SelectSpecs(args, DatasetFilter::kMulticlassOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[serve] training %s ...\n", spec.name.c_str());

    ModelRegistry registry;
    {
      SimExecutor exec = MakeGpuExecutor(spec);
      auto model =
          ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &exec,
                                                              nullptr));
      ValueOrDie(registry.Register("default", std::move(model)));
    }
    const CsrMatrix& rows = test.features();

    // Closed loop: batch-size sweep. max_batch_size = 1 is the unbatched
    // baseline — every request pays the full per-Predict overhead.
    std::printf("%s: closed loop, %d clients x %d requests, %d workers\n",
                spec.name.c_str(), kClients, kPerClient, kWorkers);
    TablePrinter closed({"max_batch", "throughput", "mean batch", "p50 ms",
                         "p95 ms", "p99 ms"});
    double unbatched_rps = 0.0, best_batched_rps = 0.0;
    for (int max_batch : {1, 8, 32}) {
      ServeOptions options;
      options.num_workers = kWorkers;
      options.batching.max_batch_size = max_batch;
      options.batching.max_queue_delay = std::chrono::microseconds(200);
      LoadResult r = RunClosedLoop(&registry, rows, options, kClients,
                                   kPerClient);
      if (max_batch == 1) unbatched_rps = r.achieved_rps;
      best_batched_rps = std::max(best_batched_rps, r.achieved_rps);
      closed.AddRow({StrPrintf("%d", max_batch),
                     StrPrintf("%.0f rps", r.achieved_rps),
                     StrPrintf("%.2f", r.snap.mean_batch_size),
                     Ms(r.snap.latency_p50), Ms(r.snap.latency_p95),
                     Ms(r.snap.latency_p99)});
    }
    closed.Print();
    std::printf("batched vs unbatched sustained throughput: %s\n\n",
                Speedup(best_batched_rps / unbatched_rps).c_str());

    // Open loop: batch-window sweep at ~80%% of the unbatched capacity, the
    // regime where coalescing headroom decides whether the queue stays flat.
    const double rate = 0.8 * unbatched_rps;
    const int total = kClients * kPerClient / 2;
    std::printf("%s: open loop, %.0f rps offered, %d requests\n",
                spec.name.c_str(), rate, total);
    TablePrinter open({"window us", "achieved", "mean batch", "max depth",
                       "p50 ms", "p95 ms", "p99 ms"});
    for (int window_us : {0, 200, 1000, 5000}) {
      ServeOptions options;
      options.num_workers = kWorkers;
      options.batching.max_batch_size = 32;
      options.batching.max_queue_delay = std::chrono::microseconds(window_us);
      LoadResult r = RunOpenLoop(&registry, rows, options, rate, total);
      open.AddRow({StrPrintf("%d", window_us),
                   StrPrintf("%.0f rps", r.achieved_rps),
                   StrPrintf("%.2f", r.snap.mean_batch_size),
                   StrPrintf("%zu", r.snap.max_queue_depth),
                   Ms(r.snap.latency_p50), Ms(r.snap.latency_p95),
                   Ms(r.snap.latency_p99)});
    }
    open.Print();
    std::printf("\n");
  }
  std::printf("Note: throughput is bench wall-clock; latency percentiles are\n"
              "end-to-end (admission -> response) from ServeStats.\n");
  DumpObservability(args);
  return 0;
}
