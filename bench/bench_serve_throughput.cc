// Serving benchmark: sustained throughput and tail latency of the
// micro-batching InferenceServer (src/serve) versus unbatched serving
// (max_batch_size = 1) on Table-2 proxy datasets.
//
// Two load shapes:
//   * closed loop — K client threads issue synchronous Predict() calls
//     back-to-back; concurrency K > workers keeps a backlog, so the
//     micro-batcher can coalesce. Sweeps max_batch_size.
//   * open loop — a dispatcher submits at a fixed arrival rate regardless
//     of completions (the "users do not wait" model). Sweeps the batch
//     window (max_queue_delay) at a rate near the unbatched capacity,
//     showing the window trading p50 for throughput headroom.
//
// A third section exercises the multi-tenant fleet (src/fleet): four
// Zipf-weighted tenants (weight 1/rank^1.2) over two models that share
// support vectors, served open-loop through one FleetServer. It reports
// per-tenant percentiles, proves the cross-tenant SV store reduces kernel
// evaluations while keeping every probability byte-identical to the
// sharing-off run, and shows quota/priority shedding holding the hot
// tenant's p99 under 2x overload. --json=<path> dumps the fleet section
// machine-readably.
//
// A fourth section is the large-k cascade workload: one k = 64 model
// (2016 pairwise SVMs) served closed-loop with the exact predictor and with
// the DCSVM-style elimination cascade (docs/cascade.md). The cascade must
// cut the closed-loop p50 at least in half at k = 64, --cascade=exact must
// stay byte-identical to the default predictor, and the offline fallback
// rate is reported. --largek-json=<path> dumps this section machine-readably;
// --largek-only skips the earlier sections (CI perf-smoke).
//
// Defaults to the Connect-4 proxy for a quick run; use
// --datasets=MNIST,News20 (etc.) for the other multi-class proxies.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/predictor.h"
#include "fleet/fleet_server.h"
#include "serve/server.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

namespace {

struct LoadResult {
  double wall_seconds = 0.0;
  double achieved_rps = 0.0;
  ServeStatsSnapshot snap;
};

std::string Ms(double seconds) { return StrPrintf("%.2f", seconds * 1e3); }

// K threads, each issuing synchronous requests back-to-back over the test
// rows. Returns bench-measured wall throughput plus the server's snapshot.
LoadResult RunClosedLoop(ModelRegistry* registry, const CsrMatrix& rows,
                         const ServeOptions& options, int clients,
                         int per_client) {
  InferenceServer server(registry, options);
  GMP_CHECK_OK(server.Start());
  Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        const int64_t row = (c * per_client + r) % rows.rows();
        auto response =
            server.Predict(rows.RowIndices(row), rows.RowValues(row));
        GMP_CHECK_OK(response.status());
      }
    });
  }
  for (auto& t : pool) t.join();
  LoadResult result;
  result.wall_seconds = wall.ElapsedSeconds();
  result.snap = server.stats().Snapshot();
  result.achieved_rps =
      static_cast<double>(result.snap.completed) / result.wall_seconds;
  GMP_CHECK_OK(server.Shutdown());
  return result;
}

// One dispatcher submitting at `rate_rps` on a fixed schedule; responses are
// collected afterwards. Overflowed submissions count as rejected.
LoadResult RunOpenLoop(ModelRegistry* registry, const CsrMatrix& rows,
                       const ServeOptions& options, double rate_rps,
                       int total_requests) {
  InferenceServer server(registry, options);
  GMP_CHECK_OK(server.Start());
  const auto interval = std::chrono::duration<double>(1.0 / rate_rps);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<PredictResponse>>> futures;
  futures.reserve(static_cast<size_t>(total_requests));
  for (int r = 0; r < total_requests; ++r) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * r));
    const int64_t row = r % rows.rows();
    auto submitted = server.Submit(rows.RowIndices(row), rows.RowValues(row));
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  for (auto& f : futures) GMP_CHECK_OK(f.get().status());
  LoadResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.snap = server.stats().Snapshot();
  result.achieved_rps =
      static_cast<double>(result.snap.completed) / result.wall_seconds;
  GMP_CHECK_OK(server.Shutdown());
  return result;
}

// ---------------------------------------------------------------------------
// Multi-tenant fleet section.

// One precomputed request: which tenant issues it and which test row it
// carries. Precomputing the sequence once makes the sharing-on and
// sharing-off runs submit literally the same requests in the same order.
struct FleetWorkItem {
  size_t tenant;
  int64_t row;
};

struct FleetLoadResult {
  double wall_seconds = 0.0;
  uint64_t shed = 0;      // kUnavailable at Submit (quota / overload)
  uint64_t rejected = 0;  // kResourceExhausted at Submit (queues full)
  // Probabilities per workload index; empty where the request was shed,
  // rejected, or failed. Byte-compared across runs.
  std::vector<std::vector<double>> probs;
  fleet::FleetStatsSnapshot snap;
};

// Replays `workload` through a fresh fleet built from `base`: tenant i runs
// models[i % models.size()]. rate_rps > 0 paces submissions open-loop on a
// fixed schedule; 0 submits as fast as the dispatcher can (still open loop —
// the dispatcher never waits for completions).
FleetLoadResult RunFleet(const fleet::FleetOptions& base,
                         const std::vector<fleet::TenantSpec>& tenants,
                         const std::vector<MpSvmModel>& models,
                         const CsrMatrix& rows,
                         const std::vector<FleetWorkItem>& workload,
                         double rate_rps) {
  fleet::FleetServer server(base);
  GMP_CHECK_OK(server.Start());
  for (size_t t = 0; t < tenants.size(); ++t) {
    ValueOrDie(server.AddTenant(tenants[t], MpSvmModel(models[t % models.size()])));
  }

  FleetLoadResult result;
  result.probs.resize(workload.size());
  const auto interval = std::chrono::duration<double>(
      rate_rps > 0 ? 1.0 / rate_rps : 0.0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::pair<size_t, std::future<Result<PredictResponse>>>> pending;
  pending.reserve(workload.size());
  for (size_t r = 0; r < workload.size(); ++r) {
    if (rate_rps > 0) {
      std::this_thread::sleep_until(
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              interval * static_cast<double>(r)));
    }
    if (r % 64 == 0) server.ScaleTick();
    const FleetWorkItem& item = workload[r];
    auto submitted = server.Submit(tenants[item.tenant].name,
                                   rows.RowIndices(item.row),
                                   rows.RowValues(item.row));
    if (!submitted.ok()) {
      if (submitted.status().code() == StatusCode::kUnavailable) {
        ++result.shed;
      } else if (submitted.status().code() == StatusCode::kResourceExhausted) {
        ++result.rejected;
      } else {
        GMP_CHECK_OK(submitted.status());
      }
      continue;
    }
    pending.emplace_back(r, std::move(*submitted));
  }
  for (auto& [index, future] : pending) {
    auto response = future.get();
    if (response.ok()) result.probs[index] = std::move(response->probabilities);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  GMP_CHECK_OK(server.Shutdown());
  result.snap = server.Snapshot();
  return result;
}

const fleet::TenantStatsSnapshot* FindTenantSnap(
    const fleet::FleetStatsSnapshot& snap, const std::string& name) {
  for (const auto& tenant : snap.tenants) {
    if (tenant.tenant == name) return &tenant;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Large-k cascade section.

// Serves one k = 64 model (64*63/2 = 2016 pairwise SVMs) closed-loop twice —
// exact coupling over every pair vs the elimination cascade — and checks the
// cascade halves the p50 while kExact stays byte-identical. Returns a
// process exit code.
int RunLargeKSection(const Args& args, const std::string& json_path) {
  SyntheticSpec spec;
  spec.name = "LargeK-64";
  spec.num_classes = 64;
  spec.cardinality = 64 * 16;
  spec.dim = 24;
  spec.density = 1.0;
  spec.separation = 4.0;
  spec.c = 4.0;
  spec.gamma = 0.5;
  spec.seed = 71;
  spec.test_cardinality = 128;
  const int64_t num_pairs =
      static_cast<int64_t>(spec.num_classes) * (spec.num_classes - 1) / 2;

  std::fprintf(stderr, "[serve] training %s (%d classes, %lld pairs) ...\n",
               spec.name.c_str(), spec.num_classes,
               static_cast<long long>(num_pairs));
  Dataset train = ValueOrDie(GenerateSynthetic(spec));
  Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
  SimExecutor train_exec = MakeGpuExecutor(spec);
  MpSvmModel model = ValueOrDie(
      GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &train_exec, nullptr));
  const CsrMatrix& rows = test.features();

  PredictOptions cascade_predict;
  cascade_predict.cascade.mode = CascadeOptions::Mode::kEliminate;
  cascade_predict.cascade.ambiguity_band = 0.05;

  // Offline pass: kExact byte-identity, top-1 agreement, fallback rate.
  SimExecutor e_default = MakeGpuExecutor(spec);
  SimExecutor e_exact = MakeGpuExecutor(spec);
  SimExecutor e_cascade = MakeGpuExecutor(spec);
  auto offline_default = ValueOrDie(
      MpSvmPredictor(&model).Predict(rows, &e_default, PredictOptions{}));
  PredictOptions exact_mode;
  exact_mode.cascade.mode = CascadeOptions::Mode::kExact;
  auto offline_exact =
      ValueOrDie(MpSvmPredictor(&model).Predict(rows, &e_exact, exact_mode));
  auto offline_cascade = ValueOrDie(
      MpSvmPredictor(&model).Predict(rows, &e_cascade, cascade_predict));
  const bool exact_identical =
      offline_exact.probabilities.size() ==
          offline_default.probabilities.size() &&
      std::memcmp(offline_exact.probabilities.data(),
                  offline_default.probabilities.data(),
                  offline_default.probabilities.size() * sizeof(double)) == 0 &&
      offline_exact.labels == offline_default.labels;
  int64_t agree = 0;
  for (int64_t i = 0; i < offline_default.num_instances; ++i) {
    if (offline_default.labels[static_cast<size_t>(i)] ==
        offline_cascade.labels[static_cast<size_t>(i)]) {
      ++agree;
    }
  }
  const double agreement =
      static_cast<double>(agree) /
      static_cast<double>(offline_default.num_instances);
  const double fallback_rate =
      offline_cascade.cascade_rows > 0
          ? static_cast<double>(offline_cascade.cascade_fallback_rows) /
                static_cast<double>(offline_cascade.cascade_rows)
          : 0.0;
  const double pairs_per_row =
      static_cast<double>(offline_cascade.cascade_pairs_evaluated) /
      static_cast<double>(offline_cascade.cascade_rows);

  // Closed loop: same server shape, only the predict options differ.
  constexpr int kLkClients = 16;
  constexpr int kLkPerClient = 8;
  ModelRegistry registry;
  ValueOrDie(registry.Register("default", std::move(model)));
  ServeOptions exact_serve;
  exact_serve.num_workers = 2;
  exact_serve.batching.max_batch_size = 8;
  exact_serve.batching.max_queue_delay = std::chrono::microseconds(200);
  ServeOptions cascade_serve = exact_serve;
  cascade_serve.predict = cascade_predict;

  std::printf("%s: closed loop, %d clients x %d requests, %d workers, "
              "%lld pairwise SVMs\n",
              spec.name.c_str(), kLkClients, kLkPerClient,
              exact_serve.num_workers, static_cast<long long>(num_pairs));
  LoadResult exact_run =
      RunClosedLoop(&registry, rows, exact_serve, kLkClients, kLkPerClient);
  LoadResult cascade_run =
      RunClosedLoop(&registry, rows, cascade_serve, kLkClients, kLkPerClient);

  TablePrinter table(
      {"predictor", "throughput", "p50 ms", "p95 ms", "p99 ms"});
  table.AddRow({"exact coupling", StrPrintf("%.0f rps", exact_run.achieved_rps),
                Ms(exact_run.snap.latency_p50), Ms(exact_run.snap.latency_p95),
                Ms(exact_run.snap.latency_p99)});
  table.AddRow({"cascade", StrPrintf("%.0f rps", cascade_run.achieved_rps),
                Ms(cascade_run.snap.latency_p50),
                Ms(cascade_run.snap.latency_p95),
                Ms(cascade_run.snap.latency_p99)});
  table.Print();
  const double p50_ratio =
      exact_run.snap.latency_p50 > 0.0
          ? cascade_run.snap.latency_p50 / exact_run.snap.latency_p50
          : 1.0;
  std::printf("cascade p50 = %.2fx exact p50; %.1f pairs evaluated per row "
              "of %lld; fallback rate %.3f; top-1 agreement %.4f; "
              "kExact byte-identical: %s\n",
              p50_ratio, pairs_per_row, static_cast<long long>(num_pairs),
              fallback_rate, agreement, exact_identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    json << "{\n  \"bench\": \"serve_largek_cascade\",\n";
    json << StrPrintf("  \"dataset\": \"%s\",\n  \"classes\": %d,\n"
                      "  \"num_pairs\": %lld,\n  \"host_threads\": %d,\n",
                      spec.name.c_str(), spec.num_classes,
                      static_cast<long long>(num_pairs), args.host_threads);
    json << StrPrintf(
        "  \"exact\": {\"rps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
        "\"p99_ms\": %.4f},\n",
        exact_run.achieved_rps, exact_run.snap.latency_p50 * 1e3,
        exact_run.snap.latency_p95 * 1e3, exact_run.snap.latency_p99 * 1e3);
    json << StrPrintf(
        "  \"cascade\": {\"rps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"budget\": %d, \"ambiguity_band\": %g},\n",
        cascade_run.achieved_rps, cascade_run.snap.latency_p50 * 1e3,
        cascade_run.snap.latency_p95 * 1e3,
        cascade_run.snap.latency_p99 * 1e3, cascade_predict.cascade.budget,
        cascade_predict.cascade.ambiguity_band);
    json << StrPrintf(
        "  \"p50_ratio\": %.4f,\n  \"pairs_evaluated_per_row\": %.2f,\n"
        "  \"fallback_rate\": %.4f,\n  \"label_agreement\": %.4f,\n"
        "  \"exact_mode_byte_identical\": %s\n}\n",
        p50_ratio, pairs_per_row, fallback_rate, agreement,
        exact_identical ? "true" : "false");
    std::printf("largek json written to %s\n", json_path.c_str());
  }
  std::printf("\n");

  if (!exact_identical) {
    std::fprintf(stderr,
                 "FAIL: --cascade=exact diverged from the default predictor\n");
    return 1;
  }
  // Observed ratios range 0.40-0.63x across runs: the SIMD host tier sped
  // the exact path up (full-k coupling and kernel transforms vectorize,
  // while the cascade evaluates ~8% of pairs and is dominated by per-row
  // scatter overhead), and run-to-run variance on contended CI hosts is
  // large. The gate asserts the cascade still clearly wins, with headroom
  // for both.
  if (p50_ratio > 0.75) {
    std::fprintf(stderr,
                 "FAIL: cascade p50 is %.2fx exact p50 at k=64 (need <= 0.75x)\n",
                 p50_ratio);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Section-local flags, stripped before the shared parser sees them.
  std::string largek_json;
  bool largek_only = false;
  std::vector<char*> kept;
  kept.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--largek-json=")) {
      largek_json = arg.substr(14);
    } else if (arg == "--largek-only") {
      largek_only = true;
    } else {
      kept.push_back(argv[i]);
    }
  }
  Args args = ParseArgs(static_cast<int>(kept.size()), kept.data());
  if (args.datasets.empty()) args.datasets = {"Connect-4"};
  if (largek_only) {
    const int rc = RunLargeKSection(args, largek_json);
    DumpObservability(args);
    return rc;
  }
  std::printf("SERVING: micro-batched inference throughput vs unbatched "
              "(scale %.2f)\n\n", args.scale);

  // Concurrency well above max_batch_size: batches then fill straight from
  // the backlog and the batch window almost never has to idle-wait.
  constexpr int kClients = 32;
  constexpr int kPerClient = 20;
  constexpr int kWorkers = 2;

  for (const auto& spec : SelectSpecs(args, DatasetFilter::kMulticlassOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[serve] training %s ...\n", spec.name.c_str());

    ModelRegistry registry;
    {
      SimExecutor exec = MakeGpuExecutor(spec);
      auto model =
          ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &exec,
                                                              nullptr));
      ValueOrDie(registry.Register("default", std::move(model)));
    }
    const CsrMatrix& rows = test.features();

    // Closed loop: batch-size sweep. max_batch_size = 1 is the unbatched
    // baseline — every request pays the full per-Predict overhead.
    std::printf("%s: closed loop, %d clients x %d requests, %d workers\n",
                spec.name.c_str(), kClients, kPerClient, kWorkers);
    TablePrinter closed({"max_batch", "throughput", "mean batch", "p50 ms",
                         "p95 ms", "p99 ms"});
    double unbatched_rps = 0.0, best_batched_rps = 0.0;
    for (int max_batch : {1, 8, 32}) {
      ServeOptions options;
      options.num_workers = kWorkers;
      options.batching.max_batch_size = max_batch;
      options.batching.max_queue_delay = std::chrono::microseconds(200);
      LoadResult r = RunClosedLoop(&registry, rows, options, kClients,
                                   kPerClient);
      if (max_batch == 1) unbatched_rps = r.achieved_rps;
      best_batched_rps = std::max(best_batched_rps, r.achieved_rps);
      closed.AddRow({StrPrintf("%d", max_batch),
                     StrPrintf("%.0f rps", r.achieved_rps),
                     StrPrintf("%.2f", r.snap.mean_batch_size),
                     Ms(r.snap.latency_p50), Ms(r.snap.latency_p95),
                     Ms(r.snap.latency_p99)});
    }
    closed.Print();
    std::printf("batched vs unbatched sustained throughput: %s\n\n",
                Speedup(best_batched_rps / unbatched_rps).c_str());

    // Open loop: batch-window sweep at ~80%% of the unbatched capacity, the
    // regime where coalescing headroom decides whether the queue stays flat.
    const double rate = 0.8 * unbatched_rps;
    const int total = kClients * kPerClient / 2;
    std::printf("%s: open loop, %.0f rps offered, %d requests\n",
                spec.name.c_str(), rate, total);
    TablePrinter open({"window us", "achieved", "mean batch", "max depth",
                       "p50 ms", "p95 ms", "p99 ms"});
    for (int window_us : {0, 200, 1000, 5000}) {
      ServeOptions options;
      options.num_workers = kWorkers;
      options.batching.max_batch_size = 32;
      options.batching.max_queue_delay = std::chrono::microseconds(window_us);
      LoadResult r = RunOpenLoop(&registry, rows, options, rate, total);
      open.AddRow({StrPrintf("%d", window_us),
                   StrPrintf("%.0f rps", r.achieved_rps),
                   StrPrintf("%.2f", r.snap.mean_batch_size),
                   StrPrintf("%zu", r.snap.max_queue_depth),
                   Ms(r.snap.latency_p50), Ms(r.snap.latency_p95),
                   Ms(r.snap.latency_p99)});
    }
    open.Print();
    std::printf("\n");
  }

  // -------------------------------------------------------------------------
  // Multi-tenant fleet: Zipf-weighted tenants over a shared SV store.
  const SyntheticSpec fleet_spec =
      SelectSpecs(args, DatasetFilter::kMulticlassOnly).front();
  std::fprintf(stderr, "[serve] training fleet models on %s ...\n",
               fleet_spec.name.c_str());
  Dataset fleet_train = ValueOrDie(GenerateSynthetic(fleet_spec));
  Dataset fleet_test = ValueOrDie(GenerateSyntheticTest(fleet_spec));
  std::vector<MpSvmModel> fleet_models;
  {
    // Two models over the same training rows (different C): their support
    // vectors overlap heavily, which is exactly the cross-tenant sharing
    // opportunity the SV store exploits.
    SimExecutor exec = MakeGpuExecutor(fleet_spec);
    fleet_models.push_back(ValueOrDie(
        GmpSvmTrainer(GmpOptionsFor(fleet_spec)).Train(fleet_train, &exec,
                                                       nullptr)));
    MpTrainOptions second = GmpOptionsFor(fleet_spec);
    second.c *= 4.0;
    fleet_models.push_back(ValueOrDie(
        GmpSvmTrainer(second).Train(fleet_train, &exec, nullptr)));
  }
  const CsrMatrix& fleet_rows = fleet_test.features();

  // Zipf(1.2) tenant popularity: rank r gets weight 1/r^1.2. Tenant i serves
  // model i % 2, so hot and cool share one model, warm and cold the other.
  const char* kTenantNames[] = {"hot", "warm", "cool", "cold"};
  std::vector<fleet::TenantSpec> tenants;
  for (size_t r = 0; r < 4; ++r) {
    fleet::TenantSpec spec;
    spec.name = kTenantNames[r];
    spec.priority = static_cast<int>(3 - r);
    spec.weight = 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
    tenants.push_back(spec);
  }
  double fleet_total_weight = 0.0;
  for (const auto& t : tenants) fleet_total_weight += t.weight;

  // Precompute the request sequence once so every run replays it verbatim.
  const int kFleetRequests = 480;
  std::vector<FleetWorkItem> workload;
  workload.reserve(kFleetRequests);
  {
    Rng rng(1234);
    std::vector<int64_t> next_row(tenants.size(), 0);
    for (int r = 0; r < kFleetRequests; ++r) {
      double pick = rng.Uniform() * fleet_total_weight;
      size_t t = 0;
      for (; t + 1 < tenants.size(); ++t) {
        pick -= tenants[t].weight;
        if (pick < 0.0) break;
      }
      workload.push_back(FleetWorkItem{t, next_row[t]++ % fleet_rows.rows()});
    }
  }

  // Phase 1 — sharing on vs off, identical workload, shedding disabled so
  // both runs admit every request.
  fleet::FleetOptions fleet_base;
  fleet_base.serve.num_workers = kWorkers;
  fleet_base.serve.batching.max_batch_size = 16;
  fleet_base.serve.batching.max_queue_delay = std::chrono::microseconds(200);
  fleet_base.serve.executor_model =
      ScaleModel(ExecutorModel::TeslaP100(), WorldScale(fleet_spec));
  fleet_base.serve.executor_model.host_threads = args.host_threads;
  fleet_base.initial_replicas = 2;
  fleet_base.autoscale.min_replicas = 2;
  fleet_base.autoscale.max_replicas = 2;
  fleet_base.shed_start_fraction = 1.0;  // no overload shedding in phase 1

  std::printf("%s: fleet, 4 zipf tenants x 2 shared-SV models, %d requests, "
              "2 replicas x %d workers\n",
              fleet_spec.name.c_str(), kFleetRequests, kWorkers);
  fleet::FleetOptions sharing_on = fleet_base;
  sharing_on.share_support_vectors = true;
  fleet::FleetOptions sharing_off = fleet_base;
  sharing_off.share_support_vectors = false;
  FleetLoadResult on = RunFleet(sharing_on, tenants, fleet_models, fleet_rows,
                                workload, /*rate_rps=*/0.0);
  FleetLoadResult off = RunFleet(sharing_off, tenants, fleet_models,
                                 fleet_rows, workload, /*rate_rps=*/0.0);

  int64_t identical = 0, divergent = 0;
  for (size_t r = 0; r < workload.size(); ++r) {
    const auto& a = on.probs[r];
    const auto& b = off.probs[r];
    if (a.empty() || b.empty()) continue;
    const bool same =
        a.size() == b.size() &&
        std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
    same ? ++identical : ++divergent;
  }
  TablePrinter fleet_table(
      {"tenant", "weight", "completed", "p50 ms", "p95 ms", "p99 ms"});
  for (size_t t = 0; t < tenants.size(); ++t) {
    const fleet::TenantStatsSnapshot* snap =
        FindTenantSnap(on.snap, tenants[t].name);
    fleet_table.AddRow({tenants[t].name, StrPrintf("%.2f", tenants[t].weight),
                        StrPrintf("%llu", static_cast<unsigned long long>(
                                              snap ? snap->completed : 0)),
                        Ms(snap ? snap->latency_p50 : 0.0),
                        Ms(snap ? snap->latency_p95 : 0.0),
                        Ms(snap ? snap->latency_p99 : 0.0)});
  }
  fleet_table.Print();
  const double reduction =
      off.snap.kernel_values_computed > 0
          ? 100.0 * (1.0 - static_cast<double>(on.snap.kernel_values_computed) /
                               static_cast<double>(
                                   off.snap.kernel_values_computed))
          : 0.0;
  std::printf("sv sharing: %lld kernel values computed vs %lld without "
              "(%.1f%% fewer), %lld reused\n",
              static_cast<long long>(on.snap.kernel_values_computed),
              static_cast<long long>(off.snap.kernel_values_computed),
              reduction,
              static_cast<long long>(on.snap.kernel_values_reused));
  std::printf("probabilities byte-identical sharing on vs off: %lld/%lld "
              "compared, %lld divergent\n",
              static_cast<long long>(identical),
              static_cast<long long>(identical + divergent),
              static_cast<long long>(divergent));
  if (divergent > 0) {
    std::fprintf(stderr, "FAIL: SV sharing changed prediction bytes\n");
    return 1;
  }
  if (on.snap.kernel_values_computed >= off.snap.kernel_values_computed) {
    std::fprintf(stderr,
                 "FAIL: SV sharing did not reduce kernel evaluations\n");
    return 1;
  }

  // Phase 2 — 2x overload: offered rate is twice the measured fleet
  // capacity. With shedding, the cold tenants' tight quotas and the priority
  // ladder absorb the overload; without, every tenant fights for the queues.
  const double capacity =
      static_cast<double>(identical + divergent) / on.wall_seconds;
  const double offered = 2.0 * capacity;
  std::printf("\n%s: fleet under 2x overload, %.0f rps offered "
              "(capacity ~%.0f rps)\n",
              fleet_spec.name.c_str(), offered, capacity);
  fleet::FleetOptions overload_base = fleet_base;
  overload_base.serve.queue_capacity = 64;
  fleet::FleetOptions with_shed = overload_base;
  with_shed.shed_start_fraction = 0.5;
  std::vector<fleet::TenantSpec> quota_tenants = tenants;
  for (size_t t = 2; t < quota_tenants.size(); ++t) {
    quota_tenants[t].quota.rate_per_sec = capacity / 16.0;
    quota_tenants[t].quota.burst = 4.0;
  }
  FleetLoadResult shed_run = RunFleet(with_shed, quota_tenants, fleet_models,
                                      fleet_rows, workload, offered);
  FleetLoadResult noshed_run = RunFleet(overload_base, tenants, fleet_models,
                                        fleet_rows, workload, offered);
  const fleet::TenantStatsSnapshot* hot_shed =
      FindTenantSnap(shed_run.snap, "hot");
  const fleet::TenantStatsSnapshot* hot_noshed =
      FindTenantSnap(noshed_run.snap, "hot");
  TablePrinter overload_table({"policy", "hot p50 ms", "hot p99 ms", "shed",
                               "rejected"});
  overload_table.AddRow(
      {"quota+priority shed", Ms(hot_shed ? hot_shed->latency_p50 : 0.0),
       Ms(hot_shed ? hot_shed->latency_p99 : 0.0),
       StrPrintf("%llu", static_cast<unsigned long long>(shed_run.shed)),
       StrPrintf("%llu", static_cast<unsigned long long>(shed_run.rejected))});
  overload_table.AddRow(
      {"no shedding", Ms(hot_noshed ? hot_noshed->latency_p50 : 0.0),
       Ms(hot_noshed ? hot_noshed->latency_p99 : 0.0),
       StrPrintf("%llu", static_cast<unsigned long long>(noshed_run.shed)),
       StrPrintf("%llu",
                 static_cast<unsigned long long>(noshed_run.rejected))});
  overload_table.Print();
  if (shed_run.shed == 0) {
    std::fprintf(stderr, "FAIL: 2x overload shed no requests\n");
    return 1;
  }

  if (!args.json_out.empty()) {
    std::ofstream json(args.json_out);
    json << "{\n  \"bench\": \"serve_throughput_fleet\",\n";
    json << StrPrintf("  \"scale\": %g,\n  \"host_threads\": %d,\n",
                      args.scale, args.host_threads);
    json << StrPrintf("  \"dataset\": \"%s\",\n  \"requests\": %d,\n",
                      fleet_spec.name.c_str(), kFleetRequests);
    json << "  \"tenants\": [\n";
    for (size_t t = 0; t < tenants.size(); ++t) {
      const fleet::TenantStatsSnapshot* snap =
          FindTenantSnap(on.snap, tenants[t].name);
      json << StrPrintf(
          "    {\"name\": \"%s\", \"weight\": %.4f, \"priority\": %d, "
          "\"submitted\": %llu, \"completed\": %llu, \"p50_ms\": %.4f, "
          "\"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
          tenants[t].name.c_str(), tenants[t].weight, tenants[t].priority,
          static_cast<unsigned long long>(snap ? snap->submitted : 0),
          static_cast<unsigned long long>(snap ? snap->completed : 0),
          (snap ? snap->latency_p50 : 0.0) * 1e3,
          (snap ? snap->latency_p95 : 0.0) * 1e3,
          (snap ? snap->latency_p99 : 0.0) * 1e3,
          t + 1 < tenants.size() ? "," : "");
    }
    json << "  ],\n";
    json << StrPrintf(
        "  \"sharing\": {\"on_computed\": %lld, \"off_computed\": %lld, "
        "\"on_reused\": %lld, \"reduction_pct\": %.2f, "
        "\"byte_identical\": %s, \"compared\": %lld},\n",
        static_cast<long long>(on.snap.kernel_values_computed),
        static_cast<long long>(off.snap.kernel_values_computed),
        static_cast<long long>(on.snap.kernel_values_reused), reduction,
        divergent == 0 ? "true" : "false",
        static_cast<long long>(identical + divergent));
    json << StrPrintf(
        "  \"overload\": {\"offered_rps\": %.1f, \"capacity_rps\": %.1f, "
        "\"shed\": {\"hot_p99_ms\": %.4f, \"shed_total\": %llu}, "
        "\"no_shed\": {\"hot_p99_ms\": %.4f, \"rejected\": %llu}}\n",
        offered, capacity, (hot_shed ? hot_shed->latency_p99 : 0.0) * 1e3,
        static_cast<unsigned long long>(shed_run.shed),
        (hot_noshed ? hot_noshed->latency_p99 : 0.0) * 1e3,
        static_cast<unsigned long long>(noshed_run.rejected));
    json << "}\n";
    std::printf("json written to %s\n", args.json_out.c_str());
  }
  std::printf("\n");

  const int largek_rc = RunLargeKSection(args, largek_json);

  std::printf("Note: throughput is bench wall-clock; latency percentiles are\n"
              "end-to-end (admission -> response) from ServeStats.\n");
  DumpObservability(args);
  return largek_rc;
}
