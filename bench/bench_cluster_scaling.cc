// Cluster scaling: simulated training makespan vs device count.
//
// Sweeps 1/2/4/8 homogeneous P100-class devices over a Table-2 proxy
// dataset (default MNIST; override with --datasets=...), training with the
// cluster pair scheduler + ClusterTrainer and predicting through the sharded
// ClusterPredict path. The model and probabilities are byte-identical at
// every device count (the cluster determinism contract); what changes — and
// what this bench reports — is the makespan and the per-device utilization.
// Expect strictly decreasing makespan 1 -> 4 devices; 8 devices on the
// smaller proxies starts to show scheduling slack (fewer pairs per device
// than the LPT bins need to balance).
//
// --json output lands one row per (dataset, device count) with the device
// count encoded in the impl column ("GMP-SVM cluster x4"); CI uploads it as
// BENCH_cluster.json.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) args.datasets = {"MNIST"};

  std::printf(
      "CLUSTER SCALING: simulated train makespan vs device count "
      "(scale %.2f)\n\n",
      args.scale);
  TablePrinter table({"Dataset", "Devices", "Makespan (sim)", "Speedup",
                      "Predict (sim)", "Min util", "Resched"});
  std::vector<JsonRow> json_rows;

  for (const auto& spec : SelectSpecs(args, DatasetFilter::kMulticlassOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));

    ExecutorModel device_model =
        ScaleModel(ExecutorModel::TeslaP100(), WorldScale(spec));
    device_model.host_threads = args.host_threads;

    double base_makespan = 0.0;
    for (int n : {1, 2, 4, 8}) {
      cluster::SimCluster devices =
          cluster::SimCluster::Homogeneous(n, device_model);
      devices.SetSpanRecorder(BenchTrace());

      cluster::ClusterTrainOptions options;
      options.train = GmpOptionsFor(spec);
      cluster::ClusterTrainReport report;
      cluster::ClusterTrainer trainer(options);
      MpSvmModel model = ValueOrDie(trainer.Train(train, &devices, &report));

      PredictResult predicted = ValueOrDie(cluster::ClusterPredict(
          model, test.features(), &devices, PredictOptions{}));

      if (n == 1) base_makespan = report.makespan_sim_seconds;
      double min_util = 1.0;
      for (const cluster::DeviceUtilization& u : report.devices) {
        min_util = std::min(min_util, u.utilization);
      }
      table.AddRow({
          spec.name,
          StrPrintf("%d", n),
          Sec(report.makespan_sim_seconds),
          Speedup(base_makespan / report.makespan_sim_seconds),
          Sec(predicted.sim_seconds),
          StrPrintf("%.0f%%", min_util * 100.0),
          StrPrintf("%lld", static_cast<long long>(report.pairs_rescheduled)),
      });

      JsonRow row;
      row.dataset = spec.name;
      row.impl = StrPrintf("GMP-SVM cluster x%d", n);
      row.model = device_model.name;
      row.train_sim = report.makespan_sim_seconds;
      row.train_wall = report.wall_seconds;
      row.predict_sim = predicted.sim_seconds;
      row.predict_wall = predicted.wall_seconds;
      json_rows.push_back(std::move(row));

      report.PublishTo(BenchRegistry());
      for (int d = 0; d < devices.num_devices(); ++d) {
        devices.device(d)->counters().PublishTo(
            BenchRegistry(), {{"dataset", spec.name},
                              {"device", StrPrintf("%d", d)},
                              {"cluster", StrPrintf("x%d", n)}});
      }
    }
  }
  table.Print();
  std::printf(
      "\nModel and probabilities are byte-identical at every device count;\n"
      "only the makespan changes (docs/scaling.md).\n");
  WriteBenchJson(args, "cluster_scaling", json_rows);
  DumpObservability(args);
  return 0;
}
