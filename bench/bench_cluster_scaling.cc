// Cluster scaling: simulated training makespan vs device count, node count,
// and intra-pair shard count.
//
// Section 1 sweeps 1/2/4/8 homogeneous P100-class devices over a Table-2
// proxy dataset (default MNIST; override with --datasets=...), training with
// the cluster pair scheduler + ClusterTrainer and predicting through the
// sharded ClusterPredict path. The model and probabilities are byte-identical
// at every device count (the cluster determinism contract); what changes —
// and what this bench reports — is the makespan and per-device utilization.
// Expect strictly decreasing makespan 1 -> 4 devices; 8 devices on the
// smaller proxies starts to show scheduling slack (fewer pairs per device
// than the LPT bins need to balance).
//
// Section 2 holds 4 devices fixed and regroups them into 1/2/4 simulated
// nodes with forced intra-pair sharding: the solution never changes, but the
// allreduce traffic migrates from the NVLink-class intra-node links onto the
// network-class inter-node links and the merge seconds grow — the network
// cost model in action (docs/cost_model.md).
//
// Section 3 trains ONE oversized pair (a 2-class problem) at 1/2/4 instance
// shards. Whole-pair scheduling cannot use a second device at all there;
// sharding must cut the makespan strictly as the group grows, and the binary
// FAILS if it does not. Like the matching cluster_determinism_test, this
// section models graph-captured launches and an on-package link so the
// divisible per-round work dominates the fixed per-round costs — outside
// that regime the latency floor wins and sharding stops paying
// (docs/scaling.md).
//
// --json output lands one row per sweep point with the sweep coordinate
// encoded in the impl column ("GMP-SVM cluster x4", "GMP-SVM nodes x2",
// "GMP-SVM shard x4"); CI uploads it as BENCH_cluster.json.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/cluster_predictor.h"
#include "cluster/cluster_trainer.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "dist/topology.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) args.datasets = {"MNIST"};

  std::printf(
      "CLUSTER SCALING: simulated train makespan vs device count "
      "(scale %.2f)\n\n",
      args.scale);
  TablePrinter table({"Dataset", "Devices", "Makespan (sim)", "Speedup",
                      "Predict (sim)", "Min util", "Resched"});
  std::vector<JsonRow> json_rows;
  SyntheticSpec nodes_spec;
  ExecutorModel nodes_model;
  bool have_nodes_spec = false;

  for (const auto& spec : SelectSpecs(args, DatasetFilter::kMulticlassOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));

    ExecutorModel device_model =
        ScaleModel(ExecutorModel::TeslaP100(), WorldScale(spec));
    device_model.host_threads = args.host_threads;
    if (!have_nodes_spec) {
      nodes_spec = spec;
      nodes_model = device_model;
      have_nodes_spec = true;
    }

    double base_makespan = 0.0;
    for (int n : {1, 2, 4, 8}) {
      cluster::SimCluster devices =
          cluster::SimCluster::Homogeneous(n, device_model);
      devices.SetSpanRecorder(BenchTrace());

      cluster::ClusterTrainOptions options;
      options.train = GmpOptionsFor(spec);
      cluster::ClusterTrainReport report;
      cluster::ClusterTrainer trainer(options);
      MpSvmModel model = ValueOrDie(trainer.Train(train, &devices, &report));

      PredictResult predicted = ValueOrDie(cluster::ClusterPredict(
          model, test.features(), &devices, PredictOptions{}));

      if (n == 1) base_makespan = report.makespan_sim_seconds;
      double min_util = 1.0;
      for (const cluster::DeviceUtilization& u : report.devices) {
        min_util = std::min(min_util, u.utilization);
      }
      table.AddRow({
          spec.name,
          StrPrintf("%d", n),
          Sec(report.makespan_sim_seconds),
          Speedup(base_makespan / report.makespan_sim_seconds),
          Sec(predicted.sim_seconds),
          StrPrintf("%.0f%%", min_util * 100.0),
          StrPrintf("%lld", static_cast<long long>(report.pairs_rescheduled)),
      });

      JsonRow row;
      row.dataset = spec.name;
      row.impl = StrPrintf("GMP-SVM cluster x%d", n);
      row.model = device_model.name;
      row.train_sim = report.makespan_sim_seconds;
      row.train_wall = report.wall_seconds;
      row.predict_sim = predicted.sim_seconds;
      row.predict_wall = predicted.wall_seconds;
      json_rows.push_back(std::move(row));

      report.PublishTo(BenchRegistry());
      for (int d = 0; d < devices.num_devices(); ++d) {
        devices.device(d)->counters().PublishTo(
            BenchRegistry(), {{"dataset", spec.name},
                              {"device", StrPrintf("%d", d)},
                              {"cluster", StrPrintf("x%d", n)}});
      }
    }
  }
  table.Print();
  std::printf(
      "\nModel and probabilities are byte-identical at every device count;\n"
      "only the makespan changes (docs/scaling.md).\n");

  // --- Section 2: node topology sweep at 4 devices, forced sharding --------
  std::printf(
      "\nNODE TOPOLOGY: 4 devices regrouped as N nodes, sharding forced\n\n");
  TablePrinter node_table({"Dataset", "Nodes", "Makespan (sim)", "Sharded",
                           "Merge (sim)", "Intra bytes", "Inter bytes"});
  if (have_nodes_spec) {
    Dataset train = ValueOrDie(GenerateSynthetic(nodes_spec));
    for (int nodes : {1, 2, 4}) {
      cluster::SimCluster devices =
          cluster::SimCluster::HomogeneousNodes(nodes, 4 / nodes, nodes_model);
      cluster::ClusterTrainOptions options;
      options.train = GmpOptionsFor(nodes_spec);
      options.schedule.max_shards_per_pair = 4;
      options.schedule.shard_oversize_factor = 0.0;
      cluster::ClusterTrainReport report;
      MpSvmModel model =
          ValueOrDie(cluster::ClusterTrainer(options).Train(train, &devices,
                                                            &report));
      (void)model;
      node_table.AddRow({
          nodes_spec.name,
          StrPrintf("%d", nodes),
          Sec(report.makespan_sim_seconds),
          StrPrintf("%d", report.pairs_sharded),
          Sec(report.dist.merge_seconds),
          StrPrintf("%lld", static_cast<long long>(report.dist.intra_node_bytes)),
          StrPrintf("%lld", static_cast<long long>(report.dist.inter_node_bytes)),
      });
      JsonRow row;
      row.dataset = nodes_spec.name;
      row.impl = StrPrintf("GMP-SVM nodes x%d", nodes);
      row.model = nodes_model.name;
      row.train_sim = report.makespan_sim_seconds;
      row.train_wall = report.wall_seconds;
      json_rows.push_back(std::move(row));
    }
  }
  node_table.Print();
  std::printf(
      "\nSame model bytes on every topology; more nodes move the allreduce\n"
      "traffic onto the slower inter-node links (docs/cost_model.md).\n");

  // --- Section 3: oversized single-pair shard sweep (gated) ----------------
  std::printf(
      "\nOVERSIZED PAIR: one 2-class problem, 1/2/4 instance shards\n\n");
  SyntheticSpec pair_spec;
  pair_spec.name = "oversized-pair";
  pair_spec.num_classes = 2;
  pair_spec.cardinality = 1200;
  pair_spec.dim = 8;
  pair_spec.density = 1.0;
  pair_spec.separation = 2.0;
  pair_spec.seed = 9;
  Dataset pair_train = ValueOrDie(GenerateSynthetic(pair_spec));
  TablePrinter shard_table(
      {"Shards", "Makespan (sim)", "Speedup", "Allreduces", "Merge (sim)"});
  double base_pair_makespan = 0.0;
  double prev_pair_makespan = 0.0;
  bool shard_gate_ok = true;
  for (int shards : {1, 2, 4}) {
    ExecutorModel model = ExecutorModel::TeslaP100();
    model.launch_overhead_sec = 2e-7;  // graph-captured launches
    model.host_threads = args.host_threads;
    cluster::SimCluster devices = cluster::SimCluster::Homogeneous(shards, model);
    dist::LinkModel fast_intra;
    fast_intra.bandwidth_bytes_per_sec = 300e9;
    fast_intra.latency_seconds = 1e-7;  // on-package link
    GMP_CHECK_OK(devices.SetTopology(dist::ClusterTopology::Contiguous(
        1, shards, fast_intra, dist::NetworkClassLink())));
    cluster::ClusterTrainOptions options;
    options.train.kernel.gamma = 0.3;
    options.train.batch.working_set.ws_size = 32;
    options.train.batch.working_set.q = 16;
    options.schedule.max_shards_per_pair = shards;
    if (shards > 1) options.schedule.shard_oversize_factor = 0.0;
    cluster::ClusterTrainReport report;
    MpSvmModel model_out = ValueOrDie(
        cluster::ClusterTrainer(options).Train(pair_train, &devices, &report));
    (void)model_out;
    if (shards == 1) base_pair_makespan = report.makespan_sim_seconds;
    if (shards > 1 && report.makespan_sim_seconds >= prev_pair_makespan) {
      shard_gate_ok = false;
    }
    prev_pair_makespan = report.makespan_sim_seconds;
    shard_table.AddRow({
        StrPrintf("%d", shards),
        Sec(report.makespan_sim_seconds),
        Speedup(base_pair_makespan / report.makespan_sim_seconds),
        StrPrintf("%lld", static_cast<long long>(report.dist.allreduces)),
        Sec(report.dist.merge_seconds),
    });
    JsonRow row;
    row.dataset = pair_spec.name;
    row.impl = StrPrintf("GMP-SVM shard x%d", shards);
    row.model = model.name;
    row.train_sim = report.makespan_sim_seconds;
    row.train_wall = report.wall_seconds;
    json_rows.push_back(std::move(row));
  }
  shard_table.Print();
  WriteBenchJson(args, "cluster_scaling", json_rows);
  DumpObservability(args);
  if (!shard_gate_ok) {
    std::printf(
        "\nFAIL: sharded makespan did not decrease strictly with the shard\n"
        "count (docs/scaling.md).\n");
    return 1;
  }
  std::printf(
      "\nSharded makespans decrease strictly 1 -> 4 shards; the merge cost\n"
      "is the price the scheduler's network model weighs (docs/cost_model.md).\n");
  return 0;
}
