// Shared harness for the table/figure benchmarks.
//
// Every bench binary accepts:
//   --scale=<f>          multiply proxy dataset cardinalities (default 1.0)
//   --datasets=a,b,c     restrict to named datasets
//   --metrics-out=<path> dump the bench observability registry (Prometheus)
//   --trace-out=<path>   dump the merged Chrome trace of all runs
//   --json=<path>        dump machine-readable per-row results (sim + wall)
//   --host-threads=<n>   real worker threads for executor hot paths (wall
//                        clock only; sim seconds and models are byte-
//                        identical for every value — docs/performance.md)
//   --devices=<n>        simulated devices for cluster-aware benches (other
//                        benches record it as metadata only)
// and prints aligned tables matching the paper's rows. Times are reported in
// simulated seconds on the published cost models (see DESIGN.md); wall
// seconds are shown alongside as a diagnostic.

#ifndef GMPSVM_BENCH_BENCH_COMMON_H_
#define GMPSVM_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "baselines/libsvm_ref.h"
#include "core/mp_trainer.h"
#include "core/predictor.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "metrics/report.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace gmpsvm::bench {

struct Args {
  double scale = 1.0;
  std::vector<std::string> datasets;  // empty = all
  std::string metrics_out;            // empty = no metrics dump
  std::string trace_out;              // empty = no trace dump
  std::string json_out;               // empty = no JSON dump
  int host_threads = 1;               // real threads for executor hot paths
  int devices = 1;                    // simulated devices (cluster benches)

  bool Selected(const std::string& name) const;
};

// Parses the shared flags. As a side effect, --host-threads=<n> configures
// the executors MakeGpuExecutor / MakeCpuExecutor hand out.
Args ParseArgs(int argc, char** argv);

// One machine-readable result row for --json output. Sim seconds are the
// benchmarked quantity; wall seconds record what host parallelism changes.
struct JsonRow {
  std::string dataset;
  std::string impl;
  std::string model;  // sim-model name the row ran on (self-describing JSON)
  double train_sim = 0.0;
  double train_wall = 0.0;
  double predict_sim = 0.0;
  double predict_wall = 0.0;
};

// Writes `rows` to args.json_out as one JSON object with run metadata
// (bench name, scale, host_threads, devices) and rows[] each carrying
// dataset / impl / sim-model name, so BENCH_*.json files are comparable
// across runs without the producing command line; no-op when --json was not
// passed.
void WriteBenchJson(const Args& args, const std::string& bench_name,
                    const std::vector<JsonRow>& rows);

// Process-wide observability sinks for bench binaries. RunImpl publishes
// every run's device counters and train report into the registry (labeled
// {impl, dataset}) and records training spans into the trace.
obs::MetricsRegistry* BenchRegistry();
obs::TraceRecorder* BenchTrace();

// Writes the --metrics-out / --trace-out artifacts if requested; call at
// the end of a bench's main().
void DumpObservability(const Args& args);

// Returns the paper specs at the requested scale, filtered by `args`, and
// optionally restricted to binary / multiclass datasets.
enum class DatasetFilter { kAll, kBinaryOnly, kMulticlassOnly };
std::vector<SyntheticSpec> SelectSpecs(const Args& args,
                                       DatasetFilter filter = DatasetFilter::kAll);

// Scaled-world simulation: the proxy datasets shrink the paper's data by
// sigma = proxy_cardinality / paper_cardinality, so every resource the paper
// fixes in absolute units must shrink with it to preserve the operating
// regime (see DESIGN.md):
//   * row-count capacities (working set, buffer rows)        ~ sigma
//   * time granularity (kernel-launch / region overhead)     ~ sigma
//   * byte capacities (kernel caches, device memory budget)  ~ sigma^2
//     (a cached row is n values and the number of useful rows is ~n)
// Rates (flops/s, bandwidths) are physical constants and stay fixed.
double WorldScale(const SyntheticSpec& spec);

// Applies the sigma scaling to an executor model.
ExecutorModel ScaleModel(ExecutorModel model, double sigma);

// The five compared implementations of Tables 1 and 3.
enum class Impl {
  kLibsvmSingle,   // LibSVM without OpenMP
  kLibsvmOmp,      // LibSVM with OpenMP (40 threads)
  kGpuBaseline,    // Section 3.2
  kCmpSvm,         // GMP algorithm on the CPU model
  kGmpSvm,         // Section 3.3
};
const char* ImplName(Impl impl);

struct RunResult {
  double train_sim = 0.0;
  double predict_sim = 0.0;
  double train_wall = 0.0;
  double predict_wall = 0.0;
  double train_error = 0.0;
  double predict_error = 0.0;
  double last_bias = 0.0;  // bias of the last binary SVM (Table 4)
  std::string model_name;  // scaled sim-model the impl ran on
  MpTrainReport train_report;
  PhaseTimer predict_phases;
};

// Trains and predicts with one implementation on generated train/test data.
Result<RunResult> RunImpl(Impl impl, const SyntheticSpec& spec,
                          const Dataset& train, const Dataset& test);

// GMP-SVM training options for a spec (paper defaults: buffer 1024 rows,
// q = 512 — scaled by sigma; clamped per problem size inside the solver).
MpTrainOptions GmpOptionsFor(const SyntheticSpec& spec);

// GPU-baseline options (classic SMO, 4 GB device kernel cache, scaled).
MpTrainOptions BaselineOptionsFor(const SyntheticSpec& spec);

// Per-spec executors with the sigma-scaled models.
SimExecutor MakeGpuExecutor(const SyntheticSpec& spec);
SimExecutor MakeCpuExecutor(const SyntheticSpec& spec, int num_threads);

// Formats seconds with 2-3 significant digits for table cells.
std::string Sec(double seconds);

// Formats a speedup ratio, e.g. "12.4x".
std::string Speedup(double ratio);

}  // namespace gmpsvm::bench

#endif  // GMPSVM_BENCH_BENCH_COMMON_H_
