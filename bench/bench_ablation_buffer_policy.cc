// Ablation for DESIGN.md item 1: the paper picks FIFO batch replacement for
// the GPU buffer ("simple and sufficiently effective") and leaves better
// policies out of scope. Quantifies that choice: FIFO vs LRU vs no reuse
// (buffer == q, every refresh recomputes) across buffer sizes.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "MNIST"};
  }
  std::printf("ABLATION: kernel-buffer replacement policy (scale %.2f)\n\n",
              args.scale);

  TablePrinter table({"Dataset", "variant", "train sim-sec", "rows computed",
                      "rows reused"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    struct Variant {
      const char* name;
      KernelBuffer::Policy policy;
      bool no_reuse;
    };
    const Variant variants[] = {
        {"fifo (paper)", KernelBuffer::Policy::kFifo, false},
        {"lru", KernelBuffer::Policy::kLru, false},
        {"no-reuse (q=ws)", KernelBuffer::Policy::kFifo, true},
    };
    for (const auto& variant : variants) {
      std::fprintf(stderr, "[buffer-policy] %s %s ...\n", spec.name.c_str(),
                   variant.name);
      MpTrainOptions options = GmpOptionsFor(spec);
      options.batch.buffer_policy = variant.policy;
      if (variant.no_reuse) {
        options.batch.working_set.q = options.batch.working_set.ws_size;
      }
      SimExecutor gpu = MakeGpuExecutor(spec);
      MpTrainReport report;
      ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
      table.AddRow({spec.name, variant.name, Sec(report.sim_seconds),
                    StrPrintf("%lld",
                              static_cast<long long>(report.solver.kernel_rows_computed)),
                    StrPrintf("%lld",
                              static_cast<long long>(report.solver.kernel_rows_reused))});
    }
  }
  table.Print();
  std::printf("\nExpected: fifo ~= lru (paper: FIFO is sufficient), both beat\n"
              "no-reuse on rows computed.\n");
  DumpObservability(args);
  return 0;
}
