// Figure 7: effect of the number of new violating instances q at a fixed
// buffer size (1024 rows). Paper shape: q ~ bs/2 is best — large q flushes
// the buffer (no reuse), small q makes each kernel batch too small to
// amortize.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "RCV1", "MNIST", "News20"};
  }
  std::printf("FIGURE 7: GMP-SVM training time (sim-sec) vs q, buffer fixed at "
              "1024 rows (scale %.2f)\n\n", args.scale);

  // Paper: q in {64...1024} with the buffer fixed at 1024 rows; here q is
  // swept as a fraction of the sigma-scaled buffer bs0.
  const double fractions[] = {1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0};
  std::vector<std::string> headers = {"Dataset", "bs0 (rows)"};
  for (double f : fractions) headers.push_back(StrPrintf("q=bs0*%g", f));
  TablePrinter table(headers);

  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    const int bs0 = GmpOptionsFor(spec).batch.working_set.ws_size;
    std::vector<std::string> row = {spec.name, StrPrintf("%d", bs0)};
    for (double f : fractions) {
      const int q = std::max(2, static_cast<int>(bs0 * f + 0.5));
      std::fprintf(stderr, "[fig7] %s q=%d ...\n", spec.name.c_str(), q);
      MpTrainOptions options = GmpOptionsFor(spec);
      options.batch.working_set.ws_size = bs0;
      options.batch.working_set.q = q;
      SimExecutor gpu = MakeGpuExecutor(spec);
      MpTrainReport report;
      ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
      row.push_back(Sec(report.sim_seconds));
    }
    table.AddRow(row);
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
