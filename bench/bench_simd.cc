// SIMD-tier microbenchmark: scalar reference vs the detected vector tier on
// the five instrumented host hot paths (src/simd/simd.h). For every path the
// two tiers must produce byte-identical outputs — any divergence is a hard
// failure (exit 1), because it breaks the repo-wide reproducibility
// contract. Speedups are wall-clock, best-of-N reps.
//
//   bench_simd [--reps=N] [--min-speedup=G] [--json=path]
//
// --min-speedup gates the geometric-mean speedup of the vector tier over
// scalar (CI passes 1.0: the detected tier must never lose to scalar);
// exit 1 when the gate fails. On a scalar-only CPU the vector tier IS
// scalar, every speedup is 1.0, and the gate passes trivially.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "prob/pairwise_coupling.h"
#include "simd/simd.h"
#include "sparse/csr_matrix.h"
#include "sparse/ops.h"

using namespace gmpsvm;  // NOLINT: bench brevity

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density, uint64_t seed) {
  Rng rng(seed);
  CsrBuilder builder(cols);
  std::vector<int32_t> idx;
  std::vector<double> val;
  for (int64_t r = 0; r < rows; ++r) {
    idx.clear();
    val.clear();
    for (int32_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        idx.push_back(c);
        val.push_back(rng.Normal());
      }
    }
    builder.AddRow(idx, val);
  }
  return ValueOrDie(builder.Finish());
}

struct PathResult {
  std::string path;
  double scalar_ms = 0.0;
  double vector_ms = 0.0;
  bool identical = false;
  double speedup() const {
    return vector_ms > 0.0 ? scalar_ms / vector_ms : 1.0;
  }
};

// Runs `body(ops, out)` once per tier for identity, then best-of-`reps`
// timing per tier. `out` is the output buffer compared bitwise.
template <typename Body>
PathResult RunPath(const char* name, int reps, size_t out_size,
                   const Body& body) {
  const simd::SimdOps& scalar = simd::OpsFor(simd::SimdTier::kScalar);
  const simd::SimdOps& vector = simd::OpsFor(simd::SimdTier::kAuto);
  std::vector<double> out_scalar(out_size, 0.0), out_vector(out_size, 0.0);
  body(scalar, out_scalar.data());
  body(vector, out_vector.data());

  PathResult result;
  result.path = name;
  result.identical =
      out_size == 0 ||
      std::memcmp(out_scalar.data(), out_vector.data(),
                  out_size * sizeof(double)) == 0;
  result.scalar_ms = 1e300;
  result.vector_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    double t0 = NowMs();
    body(scalar, out_scalar.data());
    result.scalar_ms = std::min(result.scalar_ms, NowMs() - t0);
    t0 = NowMs();
    body(vector, out_vector.data());
    result.vector_ms = std::min(result.vector_ms, NowMs() - t0);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  double min_speedup = 0.0;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_out = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  // The coupling fixture pins eps = 0 so every solve runs the full sweep
  // budget; silence the (expected) iteration-limit warning it triggers.
  SetLogLevel(LogLevel::kError);

  std::printf("bench_simd: %s\n", simd::DescribeEnvironment().c_str());

  // Fixtures sized so each path runs ~1ms+ per rep on scalar while staying
  // cache-resident (b is ~1 MB): the point is per-path kernel throughput,
  // not DRAM bandwidth, which no instruction set can increase.
  const CsrMatrix a = RandomCsr(128, 1024, 0.20, 1);
  const CsrMatrix b = RandomCsr(256, 1024, 0.15, 2);
  std::vector<int32_t> batch, targets, rows;
  for (int32_t i = 0; i < 128; ++i) batch.push_back(i);
  for (int32_t i = 0; i < 256; ++i) targets.push_back(i);
  for (int32_t i = 0; i < 256; ++i) rows.push_back(i);
  Rng rng(3);
  std::vector<double> dense(1024);
  for (auto& v : dense) v = rng.Normal();

  std::vector<PathResult> results;

  results.push_back(RunPath(
      "batch_row_dots", reps, batch.size() * targets.size(),
      [&](const simd::SimdOps& ops, double* out) {
        BatchRowDots2(a, batch, b, targets, out, nullptr, &ops);
      }));

  results.push_back(RunPath(
      "scatter_row_dots", reps, batch.size() * targets.size(),
      [&](const simd::SimdOps& ops, double* out) {
        for (size_t i = 0; i < batch.size(); ++i) {
          ScatterRowDots(a, batch[i], b, targets,
                         out + i * targets.size(), &ops);
        }
      }));

  results.push_back(RunPath(  // 150 passes so one rep is measurable
      "spmv", reps, rows.size(),
      [&](const simd::SimdOps& ops, double* out) {
        for (int pass = 0; pass < 150; ++pass) {
          SpMV(b, rows, dense, out, nullptr, &ops);
        }
      }));

  {
    const int64_t n = 1 << 15;
    std::vector<double> dots(static_cast<size_t>(n)), norms(1024);
    std::vector<int32_t> tcols(static_cast<size_t>(n));
    Rng trng(4);
    for (auto& v : dots) v = trng.Normal();
    for (auto& v : norms) v = trng.Uniform(0.0, 4.0);
    for (size_t j = 0; j < tcols.size(); ++j) {
      tcols[j] = static_cast<int32_t>(j % 1024);
    }
    results.push_back(RunPath(
        "kernel_transform", reps, static_cast<size_t>(n),
        [&](const simd::SimdOps& ops, double* out) {
          for (int pass = 0; pass < 20; ++pass) {
            std::memcpy(out, dots.data(), dots.size() * sizeof(double));
            ops.gaussian_transform(out, norms.data(), tcols.data(), n, 1.3,
                                   0.4);
          }
        }));
  }

  {
    const int k = 96;
    Rng crng(5);
    std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
    for (int s = 0; s < k; ++s) {
      for (int t = s + 1; t < k; ++t) {
        const double p = crng.Uniform(0.05, 0.95);
        r[static_cast<size_t>(s) * k + t] = p;
        r[static_cast<size_t>(t) * k + s] = 1.0 - p;
      }
    }
    results.push_back(RunPath(
        "coupling", reps, static_cast<size_t>(k),
        [&](const simd::SimdOps& ops, double* out) {
          // The ISSUE's fifth path is the coupling fixed-point iteration
          // (LibSVM's multiclass_probability). eps = 0 pins every solve at
          // the 100-sweep floor so the row measures sustained sweep
          // throughput (Q·p matvec + elementwise update) instead of how
          // fast this particular fixture happens to converge (~3 sweeps,
          // which would mostly time the O(k^2) BuildQ setup). The
          // Gaussian-elimination solver also runs on the tier but is
          // axpy-streaming-bound and gains only ~1.2-1.4x over the
          // auto-vectorized scalar build; bench_retrain and the serve
          // benches cover it end to end.
          CouplingOptions opts;
          opts.simd = &ops == &simd::OpsFor(simd::SimdTier::kScalar)
                          ? simd::SimdTier::kScalar
                          : simd::SimdTier::kAuto;
          opts.method = CouplingMethod::kIterative;
          opts.eps = 0.0;
          for (int pass = 0; pass < 4; ++pass) {
            std::vector<double> p = ValueOrDie(CoupleProbabilities(r, k, opts));
            std::memcpy(out, p.data(), p.size() * sizeof(double));
          }
        }));
  }

  bool identity_ok = true;
  double log_sum = 0.0;
  std::printf("%-18s %12s %12s %9s %9s\n", "path", "scalar_ms", "vector_ms",
              "speedup", "bitwise");
  for (const PathResult& pr : results) {
    identity_ok = identity_ok && pr.identical;
    log_sum += std::log(pr.speedup());
    std::printf("%-18s %12.3f %12.3f %8.2fx %9s\n", pr.path.c_str(),
                pr.scalar_ms, pr.vector_ms, pr.speedup(),
                pr.identical ? "ok" : "DIVERGED");
  }
  const double geomean = std::exp(log_sum / static_cast<double>(results.size()));
  std::printf("geomean speedup: %.2fx (%s vs scalar)\n", geomean,
              simd::OpsFor(simd::SimdTier::kAuto).name);

  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"bench\": \"bench_simd\",\n  \"env\": \""
        << simd::DescribeEnvironment() << "\",\n  \"reps\": " << reps
        << ",\n  \"geomean_speedup\": " << geomean << ",\n  \"rows\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const PathResult& pr = results[i];
      out << "    {\"path\": \"" << pr.path << "\", \"scalar_ms\": "
          << pr.scalar_ms << ", \"vector_ms\": " << pr.vector_ms
          << ", \"speedup\": " << pr.speedup() << ", \"bitwise_identical\": "
          << (pr.identical ? "true" : "false") << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("json written to %s\n", json_out.c_str());
  }

  if (!identity_ok) {
    std::fprintf(stderr, "FAIL: scalar and vector tiers diverged bitwise\n");
    return 1;
  }
  if (min_speedup > 0.0 && geomean < min_speedup) {
    std::fprintf(stderr, "FAIL: geomean speedup %.3f below gate %.3f\n",
                 geomean, min_speedup);
    return 1;
  }
  return 0;
}
