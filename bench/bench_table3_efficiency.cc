// Tables 1 and 3: elapsed training and prediction time for the five
// implementations across all nine datasets. Times are simulated seconds on
// the published cost models (the absolute values are not the paper's
// testbed seconds; the ratios between implementations are the reproduced
// quantity — see EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf(
      "TABLE 3: elapsed time (sim-sec) comparison among LibSVM, GPU baseline,\n"
      "CMP-SVM and GMP-SVM  (scale %.2f)\n\n",
      args.scale);

  const Impl impls[] = {Impl::kLibsvmSingle, Impl::kLibsvmOmp, Impl::kGpuBaseline,
                        Impl::kCmpSvm, Impl::kGmpSvm};

  TablePrinter table({"Dataset", "libsvm-1 train", "libsvm-1 pred",
                      "libsvm-omp train", "libsvm-omp pred", "baseline train",
                      "baseline pred", "cmp train", "cmp pred", "gmp train",
                      "gmp pred"});
  std::vector<JsonRow> json_rows;
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::vector<std::string> row = {spec.name};
    std::fprintf(stderr, "[table3] %s ...\n", spec.name.c_str());
    for (Impl impl : impls) {
      RunResult r = ValueOrDie(RunImpl(impl, spec, train, test));
      row.push_back(Sec(r.train_sim));
      row.push_back(Sec(r.predict_sim));
      JsonRow json_row;
      json_row.dataset = spec.name;
      json_row.impl = ImplName(impl);
      json_row.model = r.model_name;
      json_row.train_sim = r.train_sim;
      json_row.train_wall = r.train_wall;
      json_row.predict_sim = r.predict_sim;
      json_row.predict_wall = r.predict_wall;
      json_rows.push_back(std::move(json_row));
    }
    table.AddRow(row);
  }
  table.Print();
  WriteBenchJson(args, "table3_efficiency", json_rows);
  std::printf(
      "\nExpected shape (paper): gmp < baseline < libsvm-omp < libsvm-1 on\n"
      "training; gmp <= baseline << libsvm on prediction; cmp between\n"
      "libsvm-omp and gmp.\n");
  DumpObservability(args);
  return 0;
}
