// Figure 10: training time of GMP-SVM vs GPUSVM on the four binary
// datasets. Paper shape: GPUSVM competitive on small dense data, blown out
// on large sparse data (RCV1) by its dense representation.

#include <cstdio>

#include "baselines/gpusvm_like.h"
#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("FIGURE 10: training time (sim-sec), GMP-SVM vs GPUSVM-like "
              "(dense representation), binary datasets (scale %.2f)\n\n",
              args.scale);

  TablePrinter table({"Dataset", "GPUSVM", "GMP-SVM", "speedup"});
  for (const auto& spec : SelectSpecs(args, DatasetFilter::kBinaryOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::fprintf(stderr, "[fig10] %s ...\n", spec.name.c_str());

    GpuSvmLikeOptions gp;
    gp.c = spec.c;
    gp.kernel.gamma = spec.gamma;
    SimExecutor e1 = MakeGpuExecutor(spec);
    SolverStats stats;
    const double t0 = e1.NowSeconds();
    ValueOrDie(GpuSvmLikeTrainer(gp).Train(train, &e1, &stats));
    e1.SynchronizeAll();
    const double gpusvm_time = e1.NowSeconds() - t0;

    SimExecutor e2 = MakeGpuExecutor(spec);
    MpTrainReport rm;
    ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &e2, &rm));

    table.AddRow({spec.name, Sec(gpusvm_time), Sec(rm.sim_seconds),
                  Speedup(gpusvm_time / rm.sim_seconds)});
  }
  table.Print();
  std::printf("\nExpected shape: the sparse high-dimensional RCV1 proxy shows the\n"
              "largest gap (dense kernel rows cost O(dim), not O(nnz)).\n");
  DumpObservability(args);
  return 0;
}
