// Google-benchmark micro-benchmarks for the hot kernels of the library:
// batched kernel rows (sparse vs dense), buffer/cache operations, sigmoid
// fitting, and pairwise coupling. These measure host wall time of the
// actual computation (not simulated time) and guard against performance
// regressions in the substrate itself.

#include <benchmark/benchmark.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "device/executor.h"
#include "kernel/kernel_computer.h"
#include "prob/pairwise_coupling.h"
#include "prob/platt.h"
#include "solver/kernel_buffer.h"
#include "solver/kernel_cache.h"

namespace gmpsvm {
namespace {

Dataset MakeData(int64_t rows, int64_t dim, double density) {
  SyntheticSpec spec;
  spec.name = "micro";
  spec.num_classes = 2;
  spec.cardinality = rows;
  spec.dim = dim;
  spec.density = density;
  spec.separation = 1.5;
  spec.gamma = 0.5;
  spec.seed = 7;
  return ValueOrDie(GenerateSynthetic(spec));
}

void BM_BatchKernelRowsSparse(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  Dataset data = MakeData(2000, 512, 0.05);
  KernelParams params;
  params.gamma = 0.5;
  KernelComputer computer(&data.features(), params);
  std::vector<int32_t> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  std::vector<int32_t> batch(all.begin(), all.begin() + batch_size);
  std::vector<double> out(static_cast<size_t>(batch_size * data.size()));
  SimExecutor gpu(ExecutorModel::TeslaP100());
  for (auto _ : state) {
    computer.ComputeBlock(batch, all, &gpu, kDefaultStream, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size * data.size());
}
BENCHMARK(BM_BatchKernelRowsSparse)->Arg(1)->Arg(16)->Arg(128)->Arg(512);

// Same computation with the executor's host-parallel backend enabled; the
// second arg is host_threads. Output values are byte-identical to the
// single-threaded variant — only wall time changes.
void BM_BatchKernelRowsSparseMT(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  const int host_threads = static_cast<int>(state.range(1));
  Dataset data = MakeData(2000, 512, 0.05);
  KernelParams params;
  params.gamma = 0.5;
  KernelComputer computer(&data.features(), params);
  std::vector<int32_t> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  std::vector<int32_t> batch(all.begin(), all.begin() + batch_size);
  std::vector<double> out(static_cast<size_t>(batch_size * data.size()));
  ExecutorModel model = ExecutorModel::TeslaP100();
  model.host_threads = host_threads;
  SimExecutor gpu(std::move(model));
  for (auto _ : state) {
    computer.ComputeBlock(batch, all, &gpu, kDefaultStream, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size * data.size());
}
BENCHMARK(BM_BatchKernelRowsSparseMT)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

void BM_BatchKernelRowsDense(benchmark::State& state) {
  const int64_t batch_size = state.range(0);
  Dataset data = MakeData(500, 512, 0.05);
  DenseMatrix dense(data.features().rows(), data.features().cols(),
                    data.features().ToDense());
  KernelParams params;
  params.gamma = 0.5;
  DenseKernelComputer computer(&dense, params);
  std::vector<int32_t> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  std::vector<int32_t> batch(all.begin(), all.begin() + batch_size);
  std::vector<double> out(static_cast<size_t>(batch_size * data.size()));
  SimExecutor gpu(ExecutorModel::TeslaP100());
  for (auto _ : state) {
    computer.ComputeBlock(batch, all, &gpu, kDefaultStream, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch_size * data.size());
}
BENCHMARK(BM_BatchKernelRowsDense)->Arg(16)->Arg(128);

void BM_KernelBufferChurn(benchmark::State& state) {
  KernelBuffer buffer(/*row_length=*/1024, /*capacity_rows=*/512);
  std::vector<int32_t> present, missing;
  int32_t next = 0;
  for (auto _ : state) {
    std::vector<int32_t> ws;
    for (int i = 0; i < 256; ++i) ws.push_back((next + i) % 4096);
    next += 128;
    buffer.Pin(ws);
    buffer.Partition(ws, &present, &missing);
    if (!missing.empty()) {
      auto slots = buffer.InsertBatch(missing);
      benchmark::DoNotOptimize(slots.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_KernelBufferChurn);

void BM_KernelCacheLru(benchmark::State& state) {
  KernelCache cache(1024, 256 * 1024 * sizeof(double), 1024);
  Rng rng(3);
  for (auto _ : state) {
    const int32_t row = static_cast<int32_t>(rng.UniformInt(1024));
    const double* hit = cache.Lookup(row);
    if (hit == nullptr) {
      double* slot = cache.Insert(row);
      benchmark::DoNotOptimize(slot);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelCacheLru);

void BM_FitSigmoid(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(11);
  std::vector<double> dec;
  std::vector<int8_t> labels;
  for (int64_t i = 0; i < n; ++i) {
    const double v = rng.Uniform(-3, 3);
    dec.push_back(v);
    labels.push_back(rng.Bernoulli(1.0 / (1.0 + std::exp(-2 * v))) ? 1 : -1);
  }
  SimExecutor gpu(ExecutorModel::TeslaP100());
  for (auto _ : state) {
    auto params = FitSigmoid(dec, labels, PlattOptions{}, &gpu, kDefaultStream, 8);
    benchmark::DoNotOptimize(params.ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FitSigmoid)->Arg(1000)->Arg(10000);

void BM_PairwiseCoupling(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<double> r(static_cast<size_t>(k) * k, 0.0);
  for (int s = 0; s < k; ++s) {
    for (int t = s + 1; t < k; ++t) {
      const double v = rng.Uniform(0.1, 0.9);
      r[static_cast<size_t>(s) * k + t] = v;
      r[static_cast<size_t>(t) * k + s] = 1.0 - v;
    }
  }
  CouplingOptions direct;
  for (auto _ : state) {
    auto p = CoupleProbabilities(r, k, direct);
    benchmark::DoNotOptimize(p.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairwiseCoupling)->Arg(3)->Arg(10)->Arg(20);

}  // namespace
}  // namespace gmpsvm

// Custom main so the bench-suite-wide `--json=<path>` spelling works here
// too: it is rewritten into google-benchmark's --benchmark_out flags before
// Initialize() consumes the command line.
int main(int argc, char** argv) {
  std::vector<char*> rewritten;
  std::vector<std::string> storage;
  // Reserve for the worst case up front: storage must never reallocate once
  // rewritten holds pointers into its strings.
  rewritten.reserve(2 * static_cast<size_t>(argc) + 2);
  storage.reserve(2 * static_cast<size_t>(argc) + 2);
  rewritten.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      storage.push_back("--benchmark_out=" + arg.substr(7));
      rewritten.push_back(storage.back().data());
      storage.push_back("--benchmark_out_format=json");
      rewritten.push_back(storage.back().data());
    } else {
      rewritten.push_back(argv[i]);
    }
  }
  int rewritten_argc = static_cast<int>(rewritten.size());
  benchmark::Initialize(&rewritten_argc, rewritten.data());
  if (benchmark::ReportUnrecognizedArguments(rewritten_argc, rewritten.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
