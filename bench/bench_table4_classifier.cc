// Table 4: final classifier comparison between LibSVM and GMP-SVM — bias of
// the decision function (last binary SVM), training error, prediction error.
// The paper's claim: identical classifiers.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("TABLE 4: final classifier comparison, LibSVM vs GMP-SVM (scale %.2f)\n\n",
              args.scale);

  TablePrinter table({"Dataset", "bias LibSVM", "bias GMP-SVM", "train err LibSVM",
                      "train err GMP", "pred err LibSVM", "pred err GMP",
                      "identical"});
  int identical_count = 0, total = 0;
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[table4] %s ...\n", spec.name.c_str());
    RunResult libsvm = ValueOrDie(RunImpl(Impl::kLibsvmSingle, spec, train, test));
    RunResult gmp = ValueOrDie(RunImpl(Impl::kGmpSvm, spec, train, test));

    const bool same = std::abs(libsvm.last_bias - gmp.last_bias) < 5e-2 &&
                      std::abs(libsvm.train_error - gmp.train_error) < 5e-3 &&
                      std::abs(libsvm.predict_error - gmp.predict_error) < 5e-3;
    identical_count += same ? 1 : 0;
    ++total;
    table.AddRow({
        spec.name,
        StrPrintf("%.3f", libsvm.last_bias),
        StrPrintf("%.3f", gmp.last_bias),
        StrPrintf("%.2f%%", 100.0 * libsvm.train_error),
        StrPrintf("%.2f%%", 100.0 * gmp.train_error),
        StrPrintf("%.2f%%", 100.0 * libsvm.predict_error),
        StrPrintf("%.2f%%", 100.0 * gmp.predict_error),
        same ? "yes" : "NO",
    });
  }
  table.Print();
  std::printf("\n%d / %d datasets produce matching classifiers "
              "(bias within 0.05, errors within 0.5pp)\n",
              identical_count, total);
  DumpObservability(args);
  return 0;
}
