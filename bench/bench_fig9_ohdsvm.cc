// Figure 9: training time of GMP-SVM vs OHD-SVM on the four binary
// datasets. Paper shape: GMP-SVM consistently faster.

#include <cstdio>

#include "baselines/ohd_svm_like.h"
#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("FIGURE 9: training time (sim-sec), GMP-SVM vs OHD-SVM-like, "
              "binary datasets (scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "OHD-SVM", "GMP-SVM", "speedup"});
  for (const auto& spec : SelectSpecs(args, DatasetFilter::kBinaryOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::fprintf(stderr, "[fig9] %s ...\n", spec.name.c_str());

    OhdSvmLikeOptions ohd;
    ohd.c = spec.c;
    ohd.kernel.gamma = spec.gamma;
    // Scaled-world working set (OHD-SVM's hierarchical inner set is
    // smaller than GTSVM's; its default here is 64 rows).
    ohd.working_set_size = std::max(8, static_cast<int>(64 * WorldScale(spec) + 0.5));
    SimExecutor e1 = MakeGpuExecutor(spec);
    SolverStats stats;
    const double t0 = e1.NowSeconds();
    ValueOrDie(OhdSvmLikeTrainer(ohd).Train(train, &e1, &stats));
    e1.SynchronizeAll();
    const double ohd_time = e1.NowSeconds() - t0;

    SimExecutor e2 = MakeGpuExecutor(spec);
    MpTrainReport rm;
    ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &e2, &rm));

    table.AddRow({spec.name, Sec(ohd_time), Sec(rm.sim_seconds),
                  Speedup(ohd_time / rm.sim_seconds)});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
