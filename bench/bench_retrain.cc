// Warm-start retraining vs cold retraining after a one-class dataset delta.
//
// A delta that only adds rows to one class of a k-class problem invalidates
// k-1 of the k(k-1)/2 pairwise SVMs; the warm path re-solves only those,
// seeded from the previous alphas, and carries the rest byte for byte. At
// k=16 that is 15 retrained vs 105 carried pairs, so the warm retrain must
// cut the simulated makespan by at least 2x against a cold full train on the
// same cluster — this bench enforces the floor (exit 1 on regression) and
// counter-verifies that every carried pair's checkpoint serializes
// byte-identically to the pre-delta model's.
//
// --json output lands one row per path ("GMP-SVM cold-retrain" /
// "GMP-SVM warm-retrain"); CI uploads it as BENCH_retrain.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/cluster.h"
#include "cluster/cluster_trainer.h"
#include "common/string_util.h"
#include "core/model_io.h"
#include "online/delta.h"
#include "online/warm_retrain.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

namespace {

// A one-class delta: new rows for class 0 cloned (with a deterministic
// nudge) from existing class-0 rows, so only the 15 pairs touching class 0
// need retraining.
online::DatasetDelta OneClassDelta(const Dataset& base, int n_added) {
  online::DatasetDelta delta;
  delta.base_fingerprint = online::DatasetFingerprint(base);
  delta.num_classes = base.num_classes();
  const std::vector<int32_t>& rows = base.ClassRows(0);
  for (int i = 0; i < n_added; ++i) {
    const int64_t row = rows[static_cast<size_t>(i) % rows.size()];
    online::DeltaOp op;
    op.kind = online::DeltaOp::Kind::kAdd;
    op.label = 0;
    const auto indices = base.features().RowIndices(row);
    const auto values = base.features().RowValues(row);
    op.indices.assign(indices.begin(), indices.end());
    op.values.assign(values.begin(), values.end());
    for (double& v : op.values) v *= 1.0 + 1e-3 * (i + 1);
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  SyntheticSpec spec;
  spec.name = "RETRAIN-K16";
  spec.num_classes = 16;
  spec.cardinality = 16 * 40;
  spec.dim = 24;
  spec.density = 1.0;
  spec.separation = 2.5;
  spec.gamma = 0.3;
  spec.seed = 42;

  Dataset base = ValueOrDie(GenerateSynthetic(spec));
  const online::DatasetDelta delta = OneClassDelta(base, 16);
  Dataset drifted = ValueOrDie(online::ApplyDelta(base, delta));
  const std::vector<int> affected = online::AffectedClasses(delta);

  MpTrainOptions train = GmpOptionsFor(spec);
  ExecutorModel device_model =
      ScaleModel(ExecutorModel::TeslaP100(), WorldScale(spec));
  device_model.host_threads = args.host_threads;

  std::printf(
      "RETRAIN: warm-start vs cold after a one-class delta "
      "(k=%d, %lld rows + %zu added, %d device(s))\n\n",
      spec.num_classes, static_cast<long long>(base.size()),
      delta.ops.size(), args.devices);

  // Cold path: full train of the drifted dataset from scratch.
  cluster::SimCluster cold_cluster =
      cluster::SimCluster::Homogeneous(args.devices, device_model);
  cluster::ClusterTrainOptions cold_options;
  cold_options.train = train;
  cluster::ClusterTrainReport cold_report;
  MpSvmModel cold_model = ValueOrDie(cluster::ClusterTrainer(cold_options)
                                         .Train(drifted, &cold_cluster,
                                                &cold_report));

  // Warm path: the pre-delta model's checkpoints seed the affected pairs.
  cluster::SimCluster warm_cluster =
      cluster::SimCluster::Homogeneous(args.devices, device_model);
  cluster::ClusterTrainOptions base_options;
  base_options.train = train;
  MpSvmModel previous_model = ValueOrDie(cluster::ClusterTrainer(base_options)
                                             .Train(base, &warm_cluster,
                                                    nullptr));
  const std::vector<PairCheckpoint> previous =
      online::CheckpointsFromModel(previous_model);

  online::WarmRetrainOptions warm_options;
  warm_options.train = train;
  online::WarmRetrainReport warm_report;
  MpSvmModel warm_model = ValueOrDie(
      online::WarmRetrain(drifted, previous, affected, warm_options,
                          &warm_cluster, &warm_report));

  // Counter-verified byte-identity: every carried pair's checkpoint must
  // serialize exactly as it did in the pre-delta model.
  const std::vector<PairCheckpoint> after =
      online::CheckpointsFromModel(warm_model);
  const auto pairs = drifted.ClassPairs();
  int64_t carried_identical = 0;
  int64_t carried_total = 0;
  {
    std::vector<bool> retrained(pairs.size(), false);
    for (size_t p : online::AffectedPairIndices(drifted, affected, previous)) {
      retrained[p] = true;
    }
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (retrained[p]) continue;
      ++carried_total;
      if (SerializePairCheckpoint(after[p]) ==
          SerializePairCheckpoint(previous[p])) {
        ++carried_identical;
      }
    }
  }

  const double cold_sim = cold_report.makespan_sim_seconds;
  const double warm_sim = warm_report.makespan_sim_seconds;
  const double cut = warm_sim > 0.0 ? cold_sim / warm_sim : 0.0;

  TablePrinter table({"Path", "Pairs solved", "Makespan (sim)", "Cut"});
  table.AddRow({"cold full train",
                StrPrintf("%zu", pairs.size()),
                Sec(cold_sim), "1.0x"});
  table.AddRow({"warm retrain",
                StrPrintf("%lld/%zu",
                          static_cast<long long>(warm_report.pairs_retrained),
                          pairs.size()),
                Sec(warm_sim), Speedup(cut)});
  table.Print();
  std::printf(
      "\nCarried pairs byte-identical to the pre-delta model: %lld/%lld\n"
      "Warm-seeded rows: %lld\n",
      static_cast<long long>(carried_identical),
      static_cast<long long>(carried_total),
      static_cast<long long>(warm_report.warm_seeded_rows));

  std::vector<JsonRow> json_rows;
  for (const auto& [impl, sim] :
       {std::pair<const char*, double>{"GMP-SVM cold-retrain", cold_sim},
        std::pair<const char*, double>{"GMP-SVM warm-retrain", warm_sim}}) {
    JsonRow row;
    row.dataset = spec.name;
    row.impl = impl;
    row.model = device_model.name;
    row.train_sim = sim;
    json_rows.push_back(std::move(row));
  }
  WriteBenchJson(args, "retrain", json_rows);
  DumpObservability(args);

  bool ok = true;
  if (carried_identical != carried_total) {
    std::printf("FAIL: %lld carried pair(s) changed bytes\n",
                static_cast<long long>(carried_total - carried_identical));
    ok = false;
  }
  if (cut < 2.0) {
    std::printf("FAIL: warm retrain cut %.2fx < required 2.0x\n", cut);
    ok = false;
  }
  if (ok) std::printf("OK: %.1fx sim-time cut, all carried pairs intact\n", cut);
  return ok ? 0 : 1;
}
