// Section 3.3.1 claim: "when q > 10, the computation cost per row is often
// over ten times cheaper than the cost of computing a row individually."
// Measures simulated cost per kernel-matrix row as a function of batch size.

#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "common/string_util.h"
#include "kernel/kernel_computer.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "RCV1", "MNIST"};
  }
  std::printf("ABLATION (Sec 3.3.1): simulated cost per kernel row vs batch size\n\n");

  const int batch_sizes[] = {1, 2, 4, 8, 16, 64, 256, 1024};
  std::vector<std::string> headers = {"Dataset"};
  for (int b : batch_sizes) headers.push_back(StrPrintf("b=%d", b));
  headers.push_back("b=1 / b=1024");
  TablePrinter table(headers);

  for (const auto& spec : SelectSpecs(args)) {
    Dataset data = ValueOrDie(GenerateSynthetic(spec));
    KernelParams params;
    params.gamma = spec.gamma;
    KernelComputer computer(&data.features(), params);
    std::vector<int32_t> all(static_cast<size_t>(data.size()));
    std::iota(all.begin(), all.end(), 0);

    std::vector<std::string> row = {spec.name};
    double per_row_1 = 0, per_row_max = 0;
    for (int b : batch_sizes) {
      const int64_t capped = std::min<int64_t>(b, data.size());
      std::vector<int32_t> batch(all.begin(), all.begin() + capped);
      std::vector<double> out(static_cast<size_t>(capped * data.size()));
      SimExecutor gpu(ExecutorModel::TeslaP100());
      computer.ComputeBlock(batch, all, &gpu, kDefaultStream, out.data());
      const double per_row = gpu.NowSeconds() / static_cast<double>(capped);
      if (b == 1) per_row_1 = per_row;
      per_row_max = per_row;
      row.push_back(StrPrintf("%.2fus", per_row * 1e6));
    }
    row.push_back(Speedup(per_row_1 / per_row_max));
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nPaper claim: the rightmost ratio should exceed 10x.\n");
  DumpObservability(args);
  return 0;
}
