// Extension bench: one-vs-one (the paper's pairwise coupling) vs one-vs-all
// decomposition — cost and accuracy. Supports the related-work discussion
// (Section 5): pairwise problems are many but small; OVA problems are few
// but each spans the whole training set.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "core/ova_trainer.h"
#include "metrics/metrics.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Connect-4", "MNIST", "News20"};
  }
  std::printf("EXTENSION: one-vs-one (paper) vs one-vs-all (scale %.2f)\n\n",
              args.scale);

  TablePrinter table({"Dataset", "ovo train", "ova train", "ovo pred err",
                      "ova pred err", "ovo kernel vals", "ova kernel vals"});
  for (const auto& spec : SelectSpecs(args, DatasetFilter::kMulticlassOnly)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[ova] %s ...\n", spec.name.c_str());

    SimExecutor e1 = MakeGpuExecutor(spec);
    MpTrainReport ovo_report;
    auto ovo_model =
        ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &e1, &ovo_report));
    auto ovo_pred = ValueOrDie(
        MpSvmPredictor(&ovo_model).Predict(test.features(), &e1, PredictOptions{}));
    const double ovo_err = ValueOrDie(ErrorRate(ovo_pred.labels, test.labels()));

    SimExecutor e2 = MakeGpuExecutor(spec);
    MpTrainReport ova_report;
    auto ova_model =
        ValueOrDie(OvaTrainer(GmpOptionsFor(spec)).Train(train, &e2, &ova_report));
    auto ova_pred = ValueOrDie(OvaPredict(ova_model, test.features(), &e2));
    const double ova_err = ValueOrDie(ErrorRate(ova_pred.labels, test.labels()));

    table.AddRow({spec.name, Sec(ovo_report.sim_seconds),
                  Sec(ova_report.sim_seconds), StrPrintf("%.2f%%", 100 * ovo_err),
                  StrPrintf("%.2f%%", 100 * ova_err),
                  StrPrintf("%.2e", static_cast<double>(
                                        ovo_report.kernel_values_computed)),
                  StrPrintf("%.2e", static_cast<double>(
                                        ova_report.kernel_values_computed))});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
