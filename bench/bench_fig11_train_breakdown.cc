// Figure 11: percentage of GMP-SVM training time per component — kernel
// value computation, solving the working-set subproblem, and everything
// else. Paper shape: kernel values dominate, subproblem second, the rest
// roughly 20%.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "RCV1", "MNIST", "News20"};
  }
  std::printf("FIGURE 11: %% of GMP-SVM training time per component "
              "(scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "kernel values", "subproblem", "other",
                      "sigmoid"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::fprintf(stderr, "[fig11] %s ...\n", spec.name.c_str());
    SimExecutor gpu = MakeGpuExecutor(spec);
    MpTrainReport report;
    ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &gpu, &report));
    const double total = report.phases.Total();
    auto pct = [&](const char* phase) {
      return StrPrintf("%.1f%%", 100.0 * report.phases.Get(phase) / total);
    };
    table.AddRow({spec.name, pct("kernel_values"), pct("subproblem"),
                  pct("other"), pct("sigmoid")});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
