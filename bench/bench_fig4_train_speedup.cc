// Figure 4: training-time speedup of GMP-SVM over the other MP-SVM
// implementations, per dataset. Paper shape: 1-2 orders of magnitude over
// LibSVM w/o OpenMP, ~10x over LibSVM w/ OpenMP, 2-5x over the GPU
// baseline, 3-10x over CMP-SVM.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("FIGURE 4: training speedup of GMP-SVM over other implementations "
              "(scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "vs LibSVM w/o OMP", "vs LibSVM w/ OMP",
                      "vs GPU baseline", "vs CMP-SVM"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[fig4] %s ...\n", spec.name.c_str());
    const double gmp =
        ValueOrDie(RunImpl(Impl::kGmpSvm, spec, train, test)).train_sim;
    const double libsvm1 =
        ValueOrDie(RunImpl(Impl::kLibsvmSingle, spec, train, test)).train_sim;
    const double libsvm40 =
        ValueOrDie(RunImpl(Impl::kLibsvmOmp, spec, train, test)).train_sim;
    const double baseline =
        ValueOrDie(RunImpl(Impl::kGpuBaseline, spec, train, test)).train_sim;
    const double cmp =
        ValueOrDie(RunImpl(Impl::kCmpSvm, spec, train, test)).train_sim;
    table.AddRow({spec.name, Speedup(libsvm1 / gmp), Speedup(libsvm40 / gmp),
                  Speedup(baseline / gmp), Speedup(cmp / gmp)});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
