// Extension ablation: sigmoid fitted on training decision values (the
// paper's Algorithm 2, this library's default) vs on cross-validated
// decision values (stock LibSVM's svm_binary_svc_probability). Reports the
// probability-quality metrics on held-out data plus the training-cost
// premium. Expected: similar error rates; the CV sigmoid is less
// overconfident on noisy/high-C data (lower ECE / log loss) at ~folds x the
// sigmoid-stage training cost.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"
#include "metrics/calibration.h"
#include "metrics/metrics.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "Connect-4", "MNIST"};
  }
  std::printf("EXTENSION: training-value sigmoid (paper) vs 5-fold CV sigmoid "
              "(LibSVM) (scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "variant", "train sim-s", "pred err",
                      "log loss", "brier", "ECE"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    for (int folds : {0, 5}) {
      std::fprintf(stderr, "[sigmoid-cv] %s folds=%d ...\n", spec.name.c_str(),
                   folds);
      MpTrainOptions options = GmpOptionsFor(spec);
      options.sigmoid_cv_folds = folds;
      SimExecutor gpu = MakeGpuExecutor(spec);
      MpTrainReport report;
      auto model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
      auto pred = ValueOrDie(
          MpSvmPredictor(&model).Predict(test.features(), &gpu, PredictOptions{}));
      const double err = ValueOrDie(ErrorRate(pred.labels, test.labels()));
      const double ll = ValueOrDie(
          LogLoss(pred.probabilities, test.labels(), spec.num_classes));
      const double brier = ValueOrDie(
          BrierScore(pred.probabilities, test.labels(), spec.num_classes));
      auto calib = ValueOrDie(ComputeCalibration(pred.probabilities, test.labels(),
                                                 spec.num_classes, 10));
      table.AddRow({spec.name, folds == 0 ? "train-values (paper)" : "5-fold CV",
                    Sec(report.sim_seconds), StrPrintf("%.2f%%", 100 * err),
                    StrPrintf("%.3f", ll), StrPrintf("%.3f", brier),
                    StrPrintf("%.3f", calib.ece)});
    }
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
