// Section 4.1's hyper-parameter sweep: vary C in [0.01, 100] and gamma in
// [0.03, 10] and confirm LibSVM and GMP-SVM keep producing the same
// classifier (bias and error agreement). A sweep over a representative
// dataset subset.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "Connect-4"};
  }
  // Sweep at reduced cardinality: identity must hold everywhere, and the
  // grid has 9 cells per dataset.
  args.scale *= 0.25;
  std::printf("HYPER-PARAMETER IDENTITY SWEEP: LibSVM vs GMP-SVM "
              "(C in {0.01,1,100}, gamma in {0.03,0.5,10})\n\n");

  const double cs[] = {0.01, 1.0, 100.0};
  const double gammas[] = {0.03, 0.5, 10.0};
  TablePrinter table({"Dataset", "C", "gamma", "bias diff", "train err diff",
                      "pred err diff", "identical"});
  int same_count = 0, total = 0;
  for (auto spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    for (double c : cs) {
      for (double gamma : gammas) {
        spec.c = c;
        spec.gamma = gamma;
        std::fprintf(stderr, "[hyper] %s C=%g gamma=%g ...\n", spec.name.c_str(),
                     c, gamma);
        RunResult libsvm =
            ValueOrDie(RunImpl(Impl::kLibsvmSingle, spec, train, test));
        RunResult gmp = ValueOrDie(RunImpl(Impl::kGmpSvm, spec, train, test));
        const double bias_diff = std::abs(libsvm.last_bias - gmp.last_bias);
        const double terr_diff = std::abs(libsvm.train_error - gmp.train_error);
        const double perr_diff = std::abs(libsvm.predict_error - gmp.predict_error);
        const bool same = bias_diff < 5e-2 && terr_diff < 1e-2 && perr_diff < 1e-2;
        same_count += same ? 1 : 0;
        ++total;
        table.AddRow({spec.name, StrPrintf("%g", c), StrPrintf("%g", gamma),
                      StrPrintf("%.4f", bias_diff), StrPrintf("%.4f", terr_diff),
                      StrPrintf("%.4f", perr_diff), same ? "yes" : "NO"});
      }
    }
  }
  table.Print();
  std::printf("\n%d / %d settings produce matching classifiers\n", same_count,
              total);
  DumpObservability(args);
  return 0;
}
