// Figure 12: percentage of GMP-SVM prediction time per component —
// decision values (Equation 11), sigmoid evaluation (Equation 12), and
// multi-class coupling (Equation 14/15). Paper shape: decision values
// dominate; coupling is negligible.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"CIFAR-10", "Connect-4", "MNIST", "News20"};
  }
  std::printf("FIGURE 12: %% of GMP-SVM prediction time per component "
              "(scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "decision values", "sigmoid", "coupling"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[fig12] %s ...\n", spec.name.c_str());
    RunResult r = ValueOrDie(RunImpl(Impl::kGmpSvm, spec, train, test));
    const double total = r.predict_phases.Total();
    auto pct = [&](const char* phase) {
      return StrPrintf("%.1f%%", 100.0 * r.predict_phases.Get(phase) / total);
    };
    table.AddRow({spec.name, pct("decision_values"), pct("sigmoid"),
                  pct("coupling")});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
