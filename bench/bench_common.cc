#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "metrics/metrics.h"

namespace gmpsvm::bench {

obs::MetricsRegistry* BenchRegistry() {
  static obs::MetricsRegistry* registry = new obs::MetricsRegistry();
  return registry;
}

obs::TraceRecorder* BenchTrace() {
  static obs::TraceRecorder* trace = new obs::TraceRecorder();
  return trace;
}

void DumpObservability(const Args& args) {
  if (!args.metrics_out.empty()) {
    std::ofstream out(args.metrics_out);
    out << BenchRegistry()->ToPrometheusText();
    std::printf("metrics written to %s\n", args.metrics_out.c_str());
  }
  if (!args.trace_out.empty()) {
    std::ofstream out(args.trace_out);
    out << BenchTrace()->ToChromeJson();
    std::printf("trace written to %s (%zu spans)\n", args.trace_out.c_str(),
                BenchTrace()->size());
  }
}

bool Args::Selected(const std::string& name) const {
  if (datasets.empty()) return true;
  return std::find(datasets.begin(), datasets.end(), name) != datasets.end();
}

namespace {
// Applied to every executor the factories below create; set from
// --host-threads so bench binaries opt into real host parallelism without
// threading the value through each table loop.
int g_host_threads = 1;
}  // namespace

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--scale=")) {
      args.scale = std::atof(arg.c_str() + 8);
    } else if (StartsWith(arg, "--datasets=")) {
      const std::string list = arg.substr(11);  // keep alive for the views
      for (auto token : SplitTokens(list, ",")) {
        args.datasets.emplace_back(token);
      }
    } else if (StartsWith(arg, "--metrics-out=")) {
      args.metrics_out = arg.substr(14);
    } else if (StartsWith(arg, "--trace-out=")) {
      args.trace_out = arg.substr(12);
    } else if (StartsWith(arg, "--json=")) {
      args.json_out = arg.substr(7);
    } else if (StartsWith(arg, "--host-threads=")) {
      args.host_threads = std::max(1, std::atoi(arg.c_str() + 15));
    } else if (StartsWith(arg, "--devices=")) {
      args.devices = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (StartsWith(arg, "--benchmark")) {
      // Ignore google-benchmark flags when mixed binaries share a runner.
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    }
  }
  g_host_threads = args.host_threads;
  return args;
}

void WriteBenchJson(const Args& args, const std::string& bench_name,
                    const std::vector<JsonRow>& rows) {
  if (args.json_out.empty()) return;
  std::ofstream out(args.json_out);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", args.json_out.c_str());
    return;
  }
  out << "{\n"
      << "  \"bench\": \"" << bench_name << "\",\n"
      << "  \"scale\": " << StrPrintf("%.17g", args.scale) << ",\n"
      << "  \"host_threads\": " << args.host_threads << ",\n"
      << "  \"devices\": " << args.devices << ",\n"
      << "  \"rows\": [";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& row = rows[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"dataset\": \"" << row.dataset << "\", \"impl\": \""
        << row.impl << "\", \"model\": \"" << row.model << "\", "
        << StrPrintf("\"train_sim_seconds\": %.17g, "
                     "\"train_wall_seconds\": %.17g, "
                     "\"predict_sim_seconds\": %.17g, "
                     "\"predict_wall_seconds\": %.17g}",
                     row.train_sim, row.train_wall, row.predict_sim,
                     row.predict_wall);
  }
  out << "\n  ]\n}\n";
  std::printf("json written to %s (%zu rows)\n", args.json_out.c_str(),
              rows.size());
}

std::vector<SyntheticSpec> SelectSpecs(const Args& args, DatasetFilter filter) {
  std::vector<SyntheticSpec> selected;
  for (auto& spec : PaperDatasetSpecs(args.scale)) {
    if (!args.Selected(spec.name)) continue;
    if (filter == DatasetFilter::kBinaryOnly && !spec.IsBinary()) continue;
    if (filter == DatasetFilter::kMulticlassOnly && spec.IsBinary()) continue;
    selected.push_back(spec);
  }
  return selected;
}

const char* ImplName(Impl impl) {
  switch (impl) {
    case Impl::kLibsvmSingle:
      return "LibSVM w/o OpenMP";
    case Impl::kLibsvmOmp:
      return "LibSVM w/ OpenMP";
    case Impl::kGpuBaseline:
      return "GPU baseline";
    case Impl::kCmpSvm:
      return "CMP-SVM";
    case Impl::kGmpSvm:
      return "GMP-SVM";
  }
  return "?";
}

double WorldScale(const SyntheticSpec& spec) {
  if (spec.paper_cardinality <= 0) return 1.0;
  const double sigma = static_cast<double>(spec.cardinality) /
                       static_cast<double>(spec.paper_cardinality);
  // Floor: scaled row-capacities clamp at 64 of 1024 rows (1/16), so every
  // other scaled resource is floored consistently. Extreme proxies (the
  // MNIST8M 1/675 scale-down) therefore run in a 1/16 world; their ratios
  // compress but their orderings hold (documented in EXPERIMENTS.md).
  return std::max(sigma, 1.0 / 16.0);
}

ExecutorModel ScaleModel(ExecutorModel model, double sigma) {
  model.launch_overhead_sec *= sigma;
  model.memory_budget_bytes = static_cast<size_t>(
      std::max(1.0, static_cast<double>(model.memory_budget_bytes) * sigma * sigma));
  // Thread-block granularity: at paper scale a pairwise problem fills the
  // device (n / 256 blocks >> #SMs); the proxy's smaller n must fill the
  // scaled device the same way or occupancy effects are distorted.
  model.block_size = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(model.block_size) * sigma + 0.5));
  return model;
}

SimExecutor MakeGpuExecutor(const SyntheticSpec& spec) {
  ExecutorModel model = ScaleModel(ExecutorModel::TeslaP100(), WorldScale(spec));
  model.host_threads = g_host_threads;
  return SimExecutor(model);
}

SimExecutor MakeCpuExecutor(const SyntheticSpec& spec, int num_threads) {
  ExecutorModel model =
      ScaleModel(ExecutorModel::XeonCpu(num_threads), WorldScale(spec));
  model.host_threads = g_host_threads;
  return SimExecutor(model);
}

namespace {

size_t ScaleBytes(size_t bytes, double sigma) {
  return static_cast<size_t>(
      std::max(4096.0, static_cast<double>(bytes) * sigma * sigma));
}

int ScaleRows(int rows, double sigma) {
  return std::clamp(static_cast<int>(rows * sigma + 0.5), 64, rows);
}

}  // namespace

MpTrainOptions GmpOptionsFor(const SyntheticSpec& spec) {
  const double sigma = WorldScale(spec);
  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.type = KernelType::kGaussian;
  options.kernel.gamma = spec.gamma;
  // Paper: buffer of 1024 rows, q = 512; scaled to the proxy world.
  options.batch.working_set.ws_size = ScaleRows(1024, sigma);
  options.batch.working_set.q = options.batch.working_set.ws_size / 2;
  options.shared_cache_bytes = ScaleBytes(2ull << 30, sigma);
  options.platt_parallel_candidates = 8;
  return options;
}

MpTrainOptions BaselineOptionsFor(const SyntheticSpec& spec) {
  const double sigma = WorldScale(spec);
  MpTrainOptions options;
  options.c = spec.c;
  options.kernel.type = KernelType::kGaussian;
  options.kernel.gamma = spec.gamma;
  // Paper: 4 GB of device memory for kernel caching.
  options.smo.cache_bytes = ScaleBytes(4ull << 30, sigma);
  options.smo.cache_on_device = true;
  options.platt_parallel_candidates = 1;
  return options;
}

namespace {

struct ImplSetup {
  SimExecutor executor;
  bool gmp_algorithm;
  PredictOptions predict;
};

ImplSetup MakeSetup(Impl impl, const SyntheticSpec& spec) {
  switch (impl) {
    case Impl::kLibsvmSingle: {
      ImplSetup s{MakeCpuExecutor(spec, 1), false, LibsvmPredictOptions()};
      return s;
    }
    case Impl::kLibsvmOmp: {
      ImplSetup s{MakeCpuExecutor(spec, 40), false, LibsvmPredictOptions()};
      return s;
    }
    case Impl::kGpuBaseline: {
      PredictOptions predict;
      predict.share_kernel_values = false;  // one SVM at a time
      predict.concurrent_svms = false;
      return ImplSetup{MakeGpuExecutor(spec), false, predict};
    }
    case Impl::kCmpSvm: {
      return ImplSetup{MakeCpuExecutor(spec, 40), true, PredictOptions{}};
    }
    case Impl::kGmpSvm:
      break;
  }
  return ImplSetup{MakeGpuExecutor(spec), true, PredictOptions{}};
}

}  // namespace

Result<RunResult> RunImpl(Impl impl, const SyntheticSpec& spec,
                          const Dataset& train, const Dataset& test) {
  ImplSetup setup = MakeSetup(impl, spec);
  setup.executor.SetSpanRecorder(BenchTrace());
  RunResult result;
  result.model_name = setup.executor.model().name;

  MpSvmModel model;
  if (setup.gmp_algorithm) {
    GmpSvmTrainer trainer(GmpOptionsFor(spec));
    GMP_ASSIGN_OR_RETURN(model,
                         trainer.Train(train, &setup.executor, &result.train_report));
  } else {
    MpTrainOptions options = BaselineOptionsFor(spec);
    if (impl == Impl::kLibsvmSingle || impl == Impl::kLibsvmOmp) {
      options = LibsvmTrainOptions(spec.c, options.kernel);
      // LibSVM's 100 MB host cache, scaled to the proxy world.
      options.smo.cache_bytes = static_cast<size_t>(std::max(
          4096.0, static_cast<double>(100ull << 20) * WorldScale(spec) *
                      WorldScale(spec)));
    }
    SequentialMpTrainer trainer(options);
    GMP_ASSIGN_OR_RETURN(model,
                         trainer.Train(train, &setup.executor, &result.train_report));
  }
  result.train_sim = result.train_report.sim_seconds;
  result.train_wall = result.train_report.wall_seconds;
  result.last_bias = model.svms.back().bias;

  MpSvmPredictor predictor(&model);
  // Training error.
  GMP_ASSIGN_OR_RETURN(
      PredictResult train_pred,
      predictor.Predict(train.features(), &setup.executor, setup.predict));
  GMP_ASSIGN_OR_RETURN(result.train_error,
                       ErrorRate(train_pred.labels, train.labels()));
  // Test-set prediction: this is the timed "prediction" column.
  GMP_ASSIGN_OR_RETURN(
      PredictResult test_pred,
      predictor.Predict(test.features(), &setup.executor, setup.predict));
  GMP_ASSIGN_OR_RETURN(result.predict_error,
                       ErrorRate(test_pred.labels, test.labels()));
  result.predict_sim = test_pred.sim_seconds;
  result.predict_wall = test_pred.wall_seconds;
  result.predict_phases = test_pred.phases;

  setup.executor.counters().PublishTo(
      BenchRegistry(), {{"impl", ImplName(impl)}, {"dataset", spec.name}});
  result.train_report.PublishTo(BenchRegistry());
  return result;
}

std::string Sec(double seconds) {
  if (seconds >= 1000) return StrPrintf("%.0f", seconds);
  if (seconds >= 10) return StrPrintf("%.1f", seconds);
  if (seconds >= 0.1) return StrPrintf("%.2f", seconds);
  return StrPrintf("%.4f", seconds);
}

std::string Speedup(double ratio) { return StrPrintf("%.1fx", ratio); }

}  // namespace gmpsvm::bench
