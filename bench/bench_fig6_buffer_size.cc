// Figure 6: effect of the GPU buffer size (== working-set size) on GMP-SVM
// training time, with q fixed at bs/2. Paper shape: a U — medium buffers
// (bs ~ 512-1024) win; tiny buffers recompute kernel rows constantly; huge
// buffers drag barely-violating instances into the working set.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"Adult", "RCV1", "MNIST", "News20"};  // paper's 4 picks
  }
  std::printf("FIGURE 6: GMP-SVM training time (sim-sec) vs GPU buffer size "
              "(q = bs/2, scale %.2f)\n\n", args.scale);

  // The paper sweeps bs in {128...2048}; in the scaled proxy world we sweep
  // the same multiples of the sigma-scaled default buffer (the "1024"
  // equivalent printed per dataset).
  const double multipliers[] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<std::string> headers = {"Dataset", "bs0 (rows)"};
  for (double m : multipliers) headers.push_back(StrPrintf("%gx bs0", m));
  TablePrinter table(headers);

  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    const int bs0 = GmpOptionsFor(spec).batch.working_set.ws_size;
    std::vector<std::string> row = {spec.name, StrPrintf("%d", bs0)};
    for (double m : multipliers) {
      const int bs = std::max(8, static_cast<int>(bs0 * m + 0.5));
      std::fprintf(stderr, "[fig6] %s bs=%d ...\n", spec.name.c_str(), bs);
      MpTrainOptions options = GmpOptionsFor(spec);
      options.batch.working_set.ws_size = bs;
      options.batch.working_set.q = std::max(4, bs / 2);
      SimExecutor gpu = MakeGpuExecutor(spec);
      MpTrainReport report;
      ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
      row.push_back(Sec(report.sim_seconds));
    }
    table.AddRow(row);
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
