// Ablation of every GMP-SVM technique DESIGN.md calls out: starting from
// the full configuration, disable one technique at a time and report
// training time, kernel values computed, and peak device memory.
//
// Rows:
//   full            — everything on (paper configuration)
//   no-concurrency  — one binary SVM at a time (max_concurrent_svms = 1)
//   no-block-share  — per-pair kernel computation (share_kernel_blocks off)
//   no-keep-half    — q = ws (wholesale working-set refresh)
//   no-delta-rule   — fixed inner budget (InnerPolicy::kFixed)
//   drop-lru        — least-violating drop instead of FIFO
//   no-sv-share     — duplicate SVs in the model pool
//   tiny-buffer     — ws = 64 (buffer starvation)

#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (args.datasets.empty()) {
    args.datasets = {"MNIST", "Connect-4"};
  }

  struct Variant {
    const char* name;
    std::function<void(MpTrainOptions*)> tweak;
  };
  const Variant variants[] = {
      {"full", [](MpTrainOptions*) {}},
      {"no-concurrency",
       [](MpTrainOptions* o) { o->max_concurrent_svms = 1; }},
      {"no-block-share",
       [](MpTrainOptions* o) { o->share_kernel_blocks = false; }},
      {"no-keep-half",
       [](MpTrainOptions* o) {
         o->batch.working_set.q = o->batch.working_set.ws_size;
       }},
      {"no-delta-rule",
       [](MpTrainOptions* o) {
         o->batch.inner_policy = BatchSmoOptions::InnerPolicy::kFixed;
       }},
      {"drop-lru",
       [](MpTrainOptions* o) {
         o->batch.working_set.drop_policy =
             WorkingSetConfig::DropPolicy::kLeastViolating;
       }},
      {"no-sv-share",
       [](MpTrainOptions* o) { o->share_support_vectors = false; }},
      {"tiny-buffer",
       [](MpTrainOptions* o) {
         o->batch.working_set.ws_size = 64;
         o->batch.working_set.q = 32;
       }},
  };

  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::printf("ABLATION on %s (scale %.2f)\n\n", spec.name.c_str(), args.scale);
    TablePrinter table({"variant", "train sim-sec", "kernel values", "reused",
                        "model pool", "peak device mem"});
    for (const auto& variant : variants) {
      std::fprintf(stderr, "[ablate] %s %s ...\n", spec.name.c_str(), variant.name);
      MpTrainOptions options = GmpOptionsFor(spec);
      variant.tweak(&options);
      SimExecutor gpu = MakeGpuExecutor(spec);
      MpTrainReport report;
      auto model = ValueOrDie(GmpSvmTrainer(options).Train(train, &gpu, &report));
      table.AddRow({
          variant.name,
          Sec(report.sim_seconds),
          StrPrintf("%.3e", static_cast<double>(report.kernel_values_computed)),
          StrPrintf("%.3e", static_cast<double>(report.kernel_values_reused)),
          StrPrintf("%lld", static_cast<long long>(model.pool_size())),
          HumanBytes(static_cast<double>(report.peak_device_bytes)),
      });
    }
    table.Print();
    std::printf("\n");
  }
  DumpObservability(args);
  return 0;
}
