// Figure 8: training time of GMP-SVM vs GTSVM on all nine datasets.
// Paper shape: GMP-SVM consistently wins, often by ~5x.

#include <cstdio>

#include "baselines/gtsvm_like.h"
#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("FIGURE 8: training time (sim-sec), GMP-SVM vs GTSVM-like "
              "(scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "GTSVM", "GMP-SVM", "speedup"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    std::fprintf(stderr, "[fig8] %s ...\n", spec.name.c_str());

    GtsvmLikeOptions gt;
    gt.c = spec.c;
    gt.kernel.gamma = spec.gamma;
    // Scaled-world working set (the comparator's ~128-row default).
    gt.working_set_size = std::max(16, static_cast<int>(128 * WorldScale(spec) + 0.5));
    SimExecutor e1 = MakeGpuExecutor(spec);
    MpTrainReport rg;
    ValueOrDie(GtsvmLikeTrainer(gt).Train(train, &e1, &rg));

    SimExecutor e2 = MakeGpuExecutor(spec);
    MpTrainReport rm;
    ValueOrDie(GmpSvmTrainer(GmpOptionsFor(spec)).Train(train, &e2, &rm));

    table.AddRow({spec.name, Sec(rg.sim_seconds), Sec(rm.sim_seconds),
                  Speedup(rg.sim_seconds / rm.sim_seconds)});
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
