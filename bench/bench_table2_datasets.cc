// Table 2: the evaluation datasets. Prints the proxy datasets actually
// generated (cardinality at the bench scale) next to the originals'
// statistics, plus the measured sparsity of each generated set.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;        // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("TABLE 2: datasets (proxies at scale %.2f; paper values in brackets)\n\n",
              args.scale);
  TablePrinter table({"Dataset", "#classes", "cardinality", "dimension",
                      "nnz/row", "C", "gamma"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset data = ValueOrDie(GenerateSynthetic(spec));
    const double nnz_per_row = static_cast<double>(data.features().nnz()) /
                               static_cast<double>(data.size());
    table.AddRow({
        spec.name,
        StrPrintf("%d", spec.num_classes),
        StrPrintf("%lld [%lld]", static_cast<long long>(data.size()),
                  static_cast<long long>(spec.paper_cardinality)),
        StrPrintf("%lld [%lld]", static_cast<long long>(data.dim()),
                  static_cast<long long>(spec.paper_dim)),
        StrPrintf("%.1f", nnz_per_row),
        StrPrintf("%g", spec.c),
        StrPrintf("%g", spec.gamma),
    });
  }
  table.Print();
  DumpObservability(args);
  return 0;
}
