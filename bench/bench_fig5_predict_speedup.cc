// Figure 5: prediction-time speedup of GMP-SVM over the other MP-SVM
// implementations. Paper shape: ~100x over LibSVM w/o OpenMP, >10x over
// LibSVM w/ OpenMP, 1x over the GPU baseline on the 4 binary datasets
// (GMP degenerates to the baseline with a single SVM) and 3-30x on the
// multi-class datasets, 2-8x over CMP-SVM.

#include <cstdio>

#include "bench_common.h"
#include "common/string_util.h"

using namespace gmpsvm;         // NOLINT
using namespace gmpsvm::bench;  // NOLINT

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::printf("FIGURE 5: prediction speedup of GMP-SVM over other implementations "
              "(scale %.2f)\n\n", args.scale);

  TablePrinter table({"Dataset", "vs LibSVM w/o OMP", "vs LibSVM w/ OMP",
                      "vs GPU baseline", "vs CMP-SVM"});
  for (const auto& spec : SelectSpecs(args)) {
    Dataset train = ValueOrDie(GenerateSynthetic(spec));
    Dataset test = ValueOrDie(GenerateSyntheticTest(spec));
    std::fprintf(stderr, "[fig5] %s ...\n", spec.name.c_str());
    const double gmp =
        ValueOrDie(RunImpl(Impl::kGmpSvm, spec, train, test)).predict_sim;
    const double libsvm1 =
        ValueOrDie(RunImpl(Impl::kLibsvmSingle, spec, train, test)).predict_sim;
    const double libsvm40 =
        ValueOrDie(RunImpl(Impl::kLibsvmOmp, spec, train, test)).predict_sim;
    const double baseline =
        ValueOrDie(RunImpl(Impl::kGpuBaseline, spec, train, test)).predict_sim;
    const double cmp =
        ValueOrDie(RunImpl(Impl::kCmpSvm, spec, train, test)).predict_sim;
    table.AddRow({spec.name, Speedup(libsvm1 / gmp), Speedup(libsvm40 / gmp),
                  Speedup(baseline / gmp), Speedup(cmp / gmp)});
  }
  table.Print();
  std::printf("\nNote: on the four binary datasets GMP-SVM is the same algorithm\n"
              "as the GPU baseline for prediction, so ~1x there is the expected\n"
              "result (Section 4.1).\n");
  DumpObservability(args);
  return 0;
}
