// check_metrics: validates a Prometheus text-exposition file such as the ones
// svm_tool / the benches write via --metrics-out.
//
//   check_metrics <file.prom> [required_family...]
//
// Checks performed:
//   * every sample line parses as  name[{labels}] value
//   * every sample's family has a preceding # TYPE line, and the type is one
//     of counter | gauge | histogram
//   * label blocks are well-formed key="value" lists (escapes allowed)
//   * histogram families expose _bucket/_sum/_count series; per label set the
//     buckets are cumulative (non-decreasing in file order), end at le="+Inf",
//     and the +Inf bucket equals the _count sample
//   * each `required_family` argument names a family present in the file
//
// Exits 0 with a one-line summary, 1 with a diagnostic on the first failure.
// Standalone on purpose: CI can build and run it without the gmpsvm library.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Failure {
  int line = 0;
  std::string message;
};

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

// Parses `name[{labels}] value`; on success fills the out-params and returns
// true. `labels` is the raw text between the braces ("" when absent).
bool ParseSample(const std::string& line, std::string* name,
                 std::string* labels, std::string* value, std::string* error) {
  size_t i = 0;
  while (i < line.size() && IsMetricNameChar(line[i], i == 0)) ++i;
  if (i == 0) {
    *error = "expected a metric name";
    return false;
  }
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    const size_t open = i;
    bool in_string = false;
    for (++i; i < line.size(); ++i) {
      if (in_string) {
        if (line[i] == '\\') ++i;
        else if (line[i] == '"') in_string = false;
      } else if (line[i] == '"') {
        in_string = true;
      } else if (line[i] == '}') {
        break;
      }
    }
    if (i >= line.size()) {
      *error = "unterminated label block";
      return false;
    }
    *labels = line.substr(open + 1, i - open - 1);
    ++i;
  } else {
    labels->clear();
  }
  if (i >= line.size() || line[i] != ' ') {
    *error = "expected ' ' before the value";
    return false;
  }
  *value = line.substr(i + 1);
  if (value->empty()) {
    *error = "missing value";
    return false;
  }
  char* end = nullptr;
  std::strtod(value->c_str(), &end);
  if (end == value->c_str() || *end != '\0') {
    *error = "value is not a number: '" + *value + "'";
    return false;
  }
  return true;
}

// Validates the raw label text as key="value"[,key="value"]* and returns the
// labels with any `le` pair removed (so histogram children group correctly),
// plus the `le` value itself if present.
bool ParseLabels(const std::string& raw, std::string* without_le,
                 std::string* le, std::string* error) {
  without_le->clear();
  le->clear();
  size_t i = 0;
  while (i < raw.size()) {
    const size_t key_start = i;
    while (i < raw.size() && IsMetricNameChar(raw[i], i == key_start)) ++i;
    if (i == key_start) {
      *error = "empty label name";
      return false;
    }
    const std::string key = raw.substr(key_start, i - key_start);
    if (i + 1 >= raw.size() || raw[i] != '=' || raw[i + 1] != '"') {
      *error = "label '" + key + "' is not followed by =\"...\"";
      return false;
    }
    i += 2;
    std::string val;
    while (i < raw.size() && raw[i] != '"') {
      if (raw[i] == '\\' && i + 1 < raw.size()) {
        val += raw[i];
        ++i;
      }
      val += raw[i];
      ++i;
    }
    if (i >= raw.size()) {
      *error = "unterminated label value for '" + key + "'";
      return false;
    }
    ++i;  // closing quote
    if (key == "le") {
      *le = val;
    } else {
      if (!without_le->empty()) *without_le += ",";
      *without_le += key + "=\"" + val + "\"";
    }
    if (i < raw.size()) {
      if (raw[i] != ',') {
        *error = "expected ',' between labels";
        return false;
      }
      ++i;
    }
  }
  return true;
}

struct HistogramChild {
  std::vector<std::pair<std::string, double>> buckets;  // (le, count) in order
  bool has_sum = false;
  bool has_count = false;
  double count = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: check_metrics <file.prom> [required_family...]\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "check_metrics: cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<std::string, std::string> family_type;  // name -> counter|gauge|...
  std::map<std::string, std::map<std::string, HistogramChild>> histograms;
  size_t samples = 0;
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "check_metrics: %s:%d: %s\n", argv[1], line_no,
                 message.c_str());
    return 1;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, type;
      fields >> name >> type;
      if (name.empty() ||
          (type != "counter" && type != "gauge" && type != "histogram")) {
        return fail("malformed TYPE line: '" + line + "'");
      }
      if (family_type.count(name) != 0) {
        return fail("family '" + name + "' declared twice");
      }
      family_type[name] = type;
      continue;
    }
    if (line[0] == '#') continue;  // HELP or comment

    std::string name, raw_labels, value, error;
    if (!ParseSample(line, &name, &raw_labels, &value, &error)) {
      return fail(error + " in '" + line + "'");
    }
    std::string labels, le;
    if (!ParseLabels(raw_labels, &labels, &le, &error)) {
      return fail(error + " in '" + line + "'");
    }
    ++samples;

    // Resolve the family: histogram samples use the _bucket/_sum/_count
    // suffixes of a declared histogram family.
    std::string family = name;
    std::string suffix;
    for (const char* s : {"_bucket", "_sum", "_count"}) {
      if (name.size() > std::strlen(s) &&
          name.compare(name.size() - std::strlen(s), std::string::npos, s) == 0) {
        const std::string base = name.substr(0, name.size() - std::strlen(s));
        if (family_type.count(base) != 0 && family_type[base] == "histogram") {
          family = base;
          suffix = s;
          break;
        }
      }
    }
    auto type_it = family_type.find(family);
    if (type_it == family_type.end()) {
      return fail("sample '" + name + "' has no preceding # TYPE line");
    }
    if (type_it->second == "histogram") {
      if (suffix.empty()) {
        return fail("histogram family '" + family +
                    "' exposed without _bucket/_sum/_count suffix");
      }
      HistogramChild& child = histograms[family][labels];
      const double v = std::strtod(value.c_str(), nullptr);
      if (suffix == "_bucket") {
        if (le.empty()) return fail("'" + name + "' bucket is missing le=");
        child.buckets.emplace_back(le, v);
      } else if (suffix == "_sum") {
        child.has_sum = true;
      } else {
        child.has_count = true;
        child.count = v;
      }
    } else if (!le.empty()) {
      return fail("non-histogram sample '" + name + "' carries an le label");
    }
  }

  line_no = 0;  // subsequent failures are file-level, not line-level
  for (const auto& [family, children] : histograms) {
    for (const auto& [labels, child] : children) {
      const std::string where =
          "histogram '" + family + (labels.empty() ? "'" : "{" + labels + "}'");
      if (child.buckets.empty()) return fail(where + " has no buckets");
      if (!child.has_sum) return fail(where + " is missing _sum");
      if (!child.has_count) return fail(where + " is missing _count");
      double prev = -1.0;
      for (const auto& [le, count] : child.buckets) {
        if (count < prev) {
          return fail(where + " buckets are not cumulative at le=\"" + le + "\"");
        }
        prev = count;
      }
      if (child.buckets.back().first != "+Inf") {
        return fail(where + " does not end with an le=\"+Inf\" bucket");
      }
      if (child.buckets.back().second != child.count) {
        return fail(where + " +Inf bucket does not equal _count");
      }
    }
  }
  for (int i = 2; i < argc; ++i) {
    if (family_type.count(argv[i]) == 0) {
      return fail(std::string("required family '") + argv[i] + "' not found");
    }
  }

  std::printf("check_metrics: OK: %zu families, %zu samples in %s\n",
              family_type.size(), samples, argv[1]);
  return 0;
}
